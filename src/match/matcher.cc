#include "match/matcher.h"

#include <algorithm>
#include <limits>

namespace weber {
namespace match {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void SortPairs(Matching* matching) {
  std::sort(matching->pairs.begin(), matching->pairs.end(),
            [](const MatchedPair& a, const MatchedPair& b) {
              if (a.left != b.left) return a.left < b.left;
              return a.right < b.right;
            });
}

double SumScores(const std::vector<MatchedPair>& pairs) {
  double total = 0.0;
  for (const MatchedPair& p : pairs) total += p.score;
  return total;
}

Matching Finish(std::vector<MatchedPair> pairs) {
  Matching matching;
  matching.pairs = std::move(pairs);
  matching.total_score = SumScores(matching.pairs);
  SortPairs(&matching);
  return matching;
}

/// All edges at or above the threshold, as a reusable edge list.
std::vector<MatchedPair> EdgesAtThreshold(const ScoreMatrix& scores,
                                          double threshold) {
  std::vector<MatchedPair> edges;
  for (int l = 0; l < scores.rows(); ++l) {
    for (int r = 0; r < scores.cols(); ++r) {
      const double s = scores.at(l, r);
      if (s >= threshold) edges.push_back({l, r, s});
    }
  }
  return edges;
}

Matching GreedyMatch(const ScoreMatrix& scores, double threshold) {
  std::vector<MatchedPair> edges = EdgesAtThreshold(scores, threshold);
  // Best first; score ties broken by index so the result is deterministic
  // across platforms and std::sort implementations.
  std::sort(edges.begin(), edges.end(),
            [](const MatchedPair& a, const MatchedPair& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.left != b.left) return a.left < b.left;
              return a.right < b.right;
            });
  std::vector<char> left_used(scores.rows(), 0);
  std::vector<char> right_used(scores.cols(), 0);
  std::vector<MatchedPair> taken;
  for (const MatchedPair& edge : edges) {
    if (left_used[edge.left] || right_used[edge.right]) continue;
    left_used[edge.left] = 1;
    right_used[edge.right] = 1;
    taken.push_back(edge);
  }
  return Finish(std::move(taken));
}

class ThresholdMatcher : public Matcher {
 public:
  explicit ThresholdMatcher(MatcherOptions options) : options_(options) {}

  std::string_view name() const override { return "threshold"; }

  Matching Match(const ScoreMatrix& scores) const override {
    Matching matching = Finish(EdgesAtThreshold(scores, options_.threshold));
    if (options_.symmetric_best) {
      matching = FilterSymmetricBest(scores, matching);
    }
    return matching;
  }

 private:
  MatcherOptions options_;
};

class GreedyMatcher : public Matcher {
 public:
  explicit GreedyMatcher(MatcherOptions options) : options_(options) {}

  std::string_view name() const override { return "greedy"; }

  Matching Match(const ScoreMatrix& scores) const override {
    Matching matching = GreedyMatch(scores, options_.threshold);
    if (options_.symmetric_best) {
      matching = FilterSymmetricBest(scores, matching);
    }
    return matching;
  }

 private:
  MatcherOptions options_;
};

class OptimalMatcher : public Matcher {
 public:
  explicit OptimalMatcher(MatcherOptions options) : options_(options) {}

  std::string_view name() const override { return "optimal"; }

  Matching Match(const ScoreMatrix& scores) const override {
    const int dim = std::max(scores.rows(), scores.cols());
    Matching matching =
        dim > options_.optimal_size_cutoff
            ? GreedyMatch(scores, options_.threshold)
            : SolveOptimalAssignment(scores, options_.threshold);
    if (options_.symmetric_best) {
      matching = FilterSymmetricBest(scores, matching);
    }
    return matching;
  }

 private:
  MatcherOptions options_;
};

}  // namespace

std::vector<int> Matching::LeftAssignment(int rows) const {
  std::vector<int> assignment(rows, -1);
  for (const MatchedPair& p : pairs) {
    if (p.left >= 0 && p.left < rows) assignment[p.left] = p.right;
  }
  return assignment;
}

std::unique_ptr<Matcher> MakeThresholdMatcher(MatcherOptions options) {
  return std::make_unique<ThresholdMatcher>(options);
}

std::unique_ptr<Matcher> MakeGreedyMatcher(MatcherOptions options) {
  return std::make_unique<GreedyMatcher>(options);
}

std::unique_ptr<Matcher> MakeOptimalMatcher(MatcherOptions options) {
  return std::make_unique<OptimalMatcher>(options);
}

Result<std::unique_ptr<Matcher>> MakeMatcher(const std::string& kind,
                                             MatcherOptions options) {
  if (kind == "threshold") return MakeThresholdMatcher(options);
  if (kind == "greedy") return MakeGreedyMatcher(options);
  if (kind == "optimal") return MakeOptimalMatcher(options);
  return Status::InvalidArgument("unknown matcher kind '", kind,
                                 "' (threshold | greedy | optimal)");
}

Matching FilterSymmetricBest(const ScoreMatrix& scores,
                             const Matching& input) {
  // Best column per row and best row per column, ties toward the lowest
  // index (strict > keeps the first maximum).
  std::vector<int> row_best(scores.rows(), -1);
  for (int l = 0; l < scores.rows(); ++l) {
    double best = -kInf;
    for (int r = 0; r < scores.cols(); ++r) {
      if (scores.at(l, r) > best) {
        best = scores.at(l, r);
        row_best[l] = r;
      }
    }
  }
  std::vector<int> col_best(scores.cols(), -1);
  for (int r = 0; r < scores.cols(); ++r) {
    double best = -kInf;
    for (int l = 0; l < scores.rows(); ++l) {
      if (scores.at(l, r) > best) {
        best = scores.at(l, r);
        col_best[r] = l;
      }
    }
  }
  std::vector<MatchedPair> kept;
  for (const MatchedPair& p : input.pairs) {
    if (row_best[p.left] == p.right && col_best[p.right] == p.left) {
      kept.push_back(p);
    }
  }
  return Finish(std::move(kept));
}

Matching SolveOptimalAssignment(const ScoreMatrix& scores, double threshold) {
  // Reduced weights w = max(0, score - threshold): maximizing their sum is
  // exactly "pick the one-to-one pairing with the best total margin over
  // the operating point", and a zero-weight assignment slot is equivalent
  // to leaving both documents unmatched — so the partial-matching problem
  // becomes a complete assignment on a square matrix padded with zeros.
  const int rows = scores.rows();
  const int cols = scores.cols();
  const int n = std::max(rows, cols);
  if (n == 0) return Matching();
  std::vector<std::vector<double>> cost(n, std::vector<double>(n, 0.0));
  for (int l = 0; l < rows; ++l) {
    for (int r = 0; r < cols; ++r) {
      // Minimization form: cost = -weight.
      cost[l][r] = -std::max(0.0, scores.at(l, r) - threshold);
    }
  }

  // Hungarian algorithm with row/column potentials: for each row, grow an
  // alternating tree of tight edges (Dijkstra over reduced costs) until a
  // free column is reached, then augment along it. O(n^3) overall.
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<int> p(n + 1, 0), way(n + 1, 0);
  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<char> used(n + 1, 0);
    do {
      used[j0] = 1;
      const int i0 = p[j0];
      int j1 = 0;
      double delta = kInf;
      for (int j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<MatchedPair> taken;
  for (int j = 1; j <= n; ++j) {
    const int i = p[j];
    if (i == 0) continue;
    const int l = i - 1;
    const int r = j - 1;
    // Padding slots and below-threshold assignments carry zero weight:
    // their documents are unmatched, not linked.
    if (l >= rows || r >= cols) continue;
    if (scores.at(l, r) < threshold) continue;
    taken.push_back({l, r, scores.at(l, r)});
  }
  return Finish(std::move(taken));
}

}  // namespace match
}  // namespace weber

// Matcher race: generates a clean-clean corpus, scores every cross-
// collection pair with the standard similarity functions, calibrates one
// paper-style operating threshold, and runs every matcher on the same
// score matrices — the clean-clean analogue of the experiment runner's
// Table II sweep. Produces the comparison table behind EXPERIMENTS.md and
// the `weber matchrace` subcommand.

#ifndef WEBER_MATCH_RACE_H_
#define WEBER_MATCH_RACE_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/result.h"
#include "corpus/generator.h"
#include "eval/metrics.h"
#include "match/matcher.h"

namespace weber {
namespace match {

struct RaceConfig {
  /// Corpus to generate; NameSpec::num_documents is ignored (clean-clean
  /// collections carry one page per persona).
  corpus::GeneratorConfig corpus;

  /// Fraction of each block's left personas that also appear on the right.
  double overlap_fraction = 0.6;

  /// Negative training pairs sampled per ground-truth (positive) pair when
  /// calibrating the operating threshold.
  int negatives_per_positive = 3;

  /// Passed through to MatcherOptions.
  int optimal_size_cutoff = 512;
};

/// One matcher's line in the comparison table.
struct RaceEntry {
  std::string matcher;
  /// Micro-averaged over all blocks.
  eval::MatchingReport report;
  /// Total matching time across blocks, milliseconds (excludes corpus
  /// generation and scoring, which are shared by all entrants).
  double match_ms = 0.0;
};

struct RaceResult {
  /// Operating point shared by every matcher, fitted on the labeled sample.
  double threshold = 0.0;
  double train_accuracy = 0.0;

  int blocks = 0;
  int left_documents = 0;
  int right_documents = 0;
  long long truth_pairs = 0;

  /// threshold, greedy, greedy+sbm, optimal — in that order.
  std::vector<RaceEntry> entries;
};

/// Runs the race. Deterministic for a fixed config (generation, scoring,
/// threshold calibration and every matcher are seed-driven).
Result<RaceResult> RaceMatchers(const RaceConfig& config);

/// Writes the result as a JSON document (for BENCH-style artifacts).
void WriteRaceJson(const RaceResult& result, std::ostream& os);

}  // namespace match
}  // namespace weber

#endif  // WEBER_MATCH_RACE_H_

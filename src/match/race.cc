#include "match/race.h"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>

#include "common/json_writer.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/similarity_function.h"
#include "extract/feature_extractor.h"
#include "ml/threshold.h"

namespace weber {
namespace match {

namespace {

/// Scores every (left, right) document pair of one block as the mean of the
/// standard similarity functions — the same aggregate the serving path uses
/// for uncalibrated pair scoring.
ScoreMatrix ScoreBlock(
    const std::vector<std::unique_ptr<core::SimilarityFunction>>& functions,
    const std::vector<extract::FeatureBundle>& left,
    const std::vector<extract::FeatureBundle>& right) {
  ScoreMatrix scores(static_cast<int>(left.size()),
                     static_cast<int>(right.size()));
  for (int l = 0; l < scores.rows(); ++l) {
    for (int r = 0; r < scores.cols(); ++r) {
      double sum = 0.0;
      for (const auto& fn : functions) {
        sum += fn->Compute(left[l], right[r]);
      }
      scores.set(l, r, sum / static_cast<double>(functions.size()));
    }
  }
  return scores;
}

}  // namespace

Result<RaceResult> RaceMatchers(const RaceConfig& config) {
  if (config.negatives_per_positive < 1) {
    return Status::InvalidArgument("race: negatives_per_positive must be >= 1");
  }

  corpus::SyntheticWebGenerator generator(config.corpus);
  WEBER_ASSIGN_OR_RETURN(corpus::CleanCleanData data,
                         generator.GenerateCleanClean(config.overlap_fraction));

  extract::FeatureExtractor extractor(&data.gazetteer);
  const auto functions = core::MakeStandardFunctions();

  RaceResult result;
  result.blocks = static_cast<int>(data.left.blocks.size());

  // ---- Score every block. Left and right pages are extracted as ONE
  // block so TF-IDF statistics and boilerplate suppression are shared —
  // cross-collection similarities would otherwise compare incompatible
  // vector spaces. ----
  std::vector<ScoreMatrix> block_scores;
  for (size_t b = 0; b < data.left.blocks.size(); ++b) {
    const corpus::Block& left = data.left.blocks[b];
    const corpus::Block& right = data.right.blocks[b];
    std::vector<extract::PageInput> pages;
    for (const corpus::Document& doc : left.documents) {
      pages.push_back({doc.url, doc.text});
    }
    for (const corpus::Document& doc : right.documents) {
      pages.push_back({doc.url, doc.text});
    }
    WEBER_ASSIGN_OR_RETURN(std::vector<extract::FeatureBundle> bundles,
                           extractor.ExtractBlock(pages, left.query));
    std::vector<extract::FeatureBundle> left_bundles(
        std::make_move_iterator(bundles.begin()),
        std::make_move_iterator(bundles.begin() + left.documents.size()));
    std::vector<extract::FeatureBundle> right_bundles(
        std::make_move_iterator(bundles.begin() + left.documents.size()),
        std::make_move_iterator(bundles.end()));
    result.left_documents += static_cast<int>(left_bundles.size());
    result.right_documents += static_cast<int>(right_bundles.size());
    result.truth_pairs += static_cast<long long>(data.truth[b].size());
    block_scores.push_back(
        ScoreBlock(functions, left_bundles, right_bundles));
  }

  // ---- Calibrate the shared operating point: every ground-truth pair is
  // a positive; a seeded sample of non-truth pairs provides the
  // negatives. ----
  std::vector<ml::LabeledSimilarity> training;
  Rng sample_rng(config.corpus.seed ^ 0x9E3779B97F4A7C15ULL);
  for (size_t b = 0; b < block_scores.size(); ++b) {
    const ScoreMatrix& scores = block_scores[b];
    std::set<std::pair<int, int>> truth_set(data.truth[b].begin(),
                                            data.truth[b].end());
    for (const auto& [l, r] : data.truth[b]) {
      training.push_back({scores.at(l, r), true});
    }
    const long long want =
        static_cast<long long>(truth_set.size()) * config.negatives_per_positive;
    const long long candidates =
        static_cast<long long>(scores.rows()) * scores.cols() -
        static_cast<long long>(truth_set.size());
    long long sampled = 0;
    // Rejection sampling; the truth set is a vanishing fraction of the
    // rectangle, so this terminates quickly.
    while (sampled < std::min(want, candidates)) {
      int l = sample_rng.UniformInt(0, scores.rows() - 1);
      int r = sample_rng.UniformInt(0, scores.cols() - 1);
      if (truth_set.count({l, r})) continue;
      training.push_back({scores.at(l, r), false});
      ++sampled;
    }
  }
  WEBER_ASSIGN_OR_RETURN(ml::ThresholdFit fit,
                         ml::FitOptimalThreshold(training));
  result.threshold = fit.threshold;
  result.train_accuracy = fit.train_accuracy;

  // ---- Race. Every entrant sees the same matrices and threshold. ----
  MatcherOptions options;
  options.threshold = fit.threshold;
  options.optimal_size_cutoff = config.optimal_size_cutoff;
  MatcherOptions sbm_options = options;
  sbm_options.symmetric_best = true;

  struct Entrant {
    std::string label;
    std::unique_ptr<Matcher> matcher;
  };
  std::vector<Entrant> entrants;
  entrants.push_back({"threshold", MakeThresholdMatcher(options)});
  entrants.push_back({"greedy", MakeGreedyMatcher(options)});
  entrants.push_back({"greedy+sbm", MakeGreedyMatcher(sbm_options)});
  entrants.push_back({"optimal", MakeOptimalMatcher(options)});

  for (Entrant& entrant : entrants) {
    RaceEntry entry;
    entry.matcher = entrant.label;
    std::vector<eval::MatchingReport> reports;
    WallTimer timer;
    for (size_t b = 0; b < block_scores.size(); ++b) {
      Matching matching = entrant.matcher->Match(block_scores[b]);
      std::vector<std::pair<int, int>> predicted;
      for (const MatchedPair& p : matching.pairs) {
        predicted.push_back({p.left, p.right});
      }
      reports.push_back(eval::EvaluateMatching(data.truth[b], predicted));
    }
    entry.match_ms = timer.ElapsedMillis();
    entry.report = eval::SumMatchingReports(reports);
    result.entries.push_back(std::move(entry));
  }
  return result;
}

void WriteRaceJson(const RaceResult& result, std::ostream& os) {
  JsonWriter json(os);
  json.BeginObject();
  json.Key("threshold").Number(result.threshold);
  json.Key("train_accuracy").Number(result.train_accuracy);
  json.Key("blocks").Number(result.blocks);
  json.Key("left_documents").Number(result.left_documents);
  json.Key("right_documents").Number(result.right_documents);
  json.Key("truth_pairs").Number(result.truth_pairs);
  json.Key("matchers").BeginArray();
  for (const RaceEntry& entry : result.entries) {
    json.BeginObject();
    json.Key("matcher").String(entry.matcher);
    json.Key("tp").Number(entry.report.true_positives);
    json.Key("fp").Number(entry.report.false_positives);
    json.Key("fn").Number(entry.report.false_negatives);
    json.Key("precision").Number(entry.report.precision);
    json.Key("recall").Number(entry.report.recall);
    json.Key("f1").Number(entry.report.f1);
    json.Key("match_ms").Number(entry.match_ms);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  os << '\n';
}

}  // namespace match
}  // namespace weber

// ResolverSnapshot: an immutable, self-contained view of one shard's
// resolved partition, published by background compaction and read lock-free
// by the query path.
//
// Concurrency protocol (RCU-style): a shard holds a
// std::shared_ptr<const ResolverSnapshot> that is swapped atomically when a
// compaction finishes. Readers atomically load the pointer once and then
// work exclusively on that immutable object — a swap during an active query
// can never tear it, and the old snapshot stays alive until its last reader
// drops the reference. A failed compaction simply never swaps, so the shard
// keeps serving the previous snapshot (degraded, never empty).

#ifndef WEBER_SERVE_SNAPSHOT_H_
#define WEBER_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <vector>

#include "extract/feature_bundle.h"
#include "graph/clustering.h"

namespace weber {
namespace serve {

/// Immutable after publication. Holds copies (not references) of everything
/// a query needs, so reads never touch mutable shard state.
struct ResolverSnapshot {
  /// Monotonically increasing per shard; 0 is the empty pre-compaction
  /// snapshot.
  uint64_t version = 0;

  /// The batch-resolved partition of `documents` (by position).
  graph::Clustering clustering;

  /// Cluster members as document positions, grouped by canonical label.
  std::vector<std::vector<int>> clusters;

  /// Extracted features per document position (copied at compaction time).
  std::vector<extract::FeatureBundle> documents;

  /// Canonical (corpus) document id per position, for cache keying and for
  /// dumping partitions in arrival-order-independent form.
  std::vector<int> canonical_ids;

  /// The calibrated match threshold the partition was resolved with; the
  /// query path reuses it as the "resolves to this person" bar.
  double threshold = 0.0;

  int num_documents() const { return static_cast<int>(documents.size()); }
};

}  // namespace serve
}  // namespace weber

#endif  // WEBER_SERVE_SNAPSHOT_H_

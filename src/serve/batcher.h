// MicroBatcher: groups individually submitted requests into small batches
// for amortized processing (one lock acquisition / one cache-warm scoring
// pass per batch instead of per request).
//
// A background flusher thread dispatches the pending batch as soon as it
// reaches `max_batch_size`, or `max_delay_ms` after the batch's first
// request arrived — the standard size-or-deadline micro-batching policy.
// Submission order is preserved within and across batches.

#ifndef WEBER_SERVE_BATCHER_H_
#define WEBER_SERVE_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace weber {
namespace serve {

struct BatcherOptions {
  size_t max_batch_size = 16;
  double max_delay_ms = 2.0;
  /// Admission cap: with a nonzero value, TrySubmit rejects once this many
  /// requests are parked waiting for a flush. 0 = unbounded (Submit
  /// semantics).
  size_t max_pending = 0;
};

/// Single-consumer micro-batcher. The flush callback runs on the batcher's
/// own thread; it must not call Submit on the same batcher.
template <typename Request>
class MicroBatcher {
 public:
  using FlushFn = std::function<void(std::vector<Request>)>;

  MicroBatcher(BatcherOptions options, FlushFn flush)
      : options_(options), flush_(std::move(flush)) {
    if (options_.max_batch_size == 0) options_.max_batch_size = 1;
    delay_ = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(options_.max_delay_ms));
    flusher_ = std::thread([this] { FlusherLoop(); });
  }

  /// Flushes whatever is pending, then stops the flusher.
  ~MicroBatcher() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutting_down_ = true;
    }
    wake_.notify_all();
    flusher_.join();
  }

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues one request (thread-safe).
  void Submit(Request request) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.empty()) batch_started_ = Clock::now();
      pending_.push_back(std::move(request));
    }
    wake_.notify_all();
  }

  /// As Submit, but bounded: returns false (request untouched, nothing
  /// enqueued) when `max_pending` requests are already parked. Callers shed
  /// the request instead of queueing without bound. Always succeeds when no
  /// cap is configured.
  bool TrySubmit(Request& request) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (options_.max_pending > 0 &&
          pending_.size() >= options_.max_pending) {
        ++rejected_;
        return false;
      }
      if (pending_.empty()) batch_started_ = Clock::now();
      pending_.push_back(std::move(request));
    }
    wake_.notify_all();
    return true;
  }

  long long batches_flushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return batches_flushed_;
  }
  long long requests_flushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return requests_flushed_;
  }
  /// Requests rejected by TrySubmit at the cap.
  long long rejected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rejected_;
  }
  /// Requests currently parked (diagnostics; racy by nature).
  size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.size();
  }

 private:
  using Clock = std::chrono::steady_clock;

  void FlusherLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      // Sleep until a batch opens (or shutdown with nothing left to do).
      wake_.wait(lock,
                 [this] { return shutting_down_ || !pending_.empty(); });
      if (pending_.empty()) {
        if (shutting_down_) return;
        continue;  // spurious wake
      }
      // A batch is open: wait until it fills, shutdown begins, or its
      // deadline — measured from the oldest pending request's arrival —
      // expires. The predicate form re-checks after every wake and
      // returns false exactly on deadline expiry, so a lone straggler
      // with no follow-up traffic still flushes on time; either return
      // value means "flush now".
      (void)wake_.wait_until(lock, batch_started_ + delay_, [this] {
        return shutting_down_ ||
               pending_.size() >= options_.max_batch_size;
      });
      std::vector<Request> batch;
      if (pending_.size() > options_.max_batch_size) {
        batch.assign(std::make_move_iterator(pending_.begin()),
                     std::make_move_iterator(pending_.begin() +
                                             options_.max_batch_size));
        pending_.erase(pending_.begin(),
                       pending_.begin() + options_.max_batch_size);
        // The leftovers have already waited out a full deadline; leaving
        // batch_started_ untouched makes the next round flush them
        // immediately instead of restarting their delay from zero.
      } else {
        batch.swap(pending_);
      }
      batches_flushed_ += 1;
      requests_flushed_ += static_cast<long long>(batch.size());
      lock.unlock();
      flush_(std::move(batch));
      lock.lock();
    }
  }

  BatcherOptions options_;
  FlushFn flush_;
  Clock::duration delay_{};

  mutable std::mutex mu_;
  std::condition_variable wake_;
  std::vector<Request> pending_;
  Clock::time_point batch_started_{};
  bool shutting_down_ = false;
  long long batches_flushed_ = 0;
  long long requests_flushed_ = 0;
  long long rejected_ = 0;

  std::thread flusher_;  // last member: started after state is ready
};

}  // namespace serve
}  // namespace weber

#endif  // WEBER_SERVE_BATCHER_H_

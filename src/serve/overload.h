// Overload-protection primitives for the serving stack (see DESIGN.md,
// "Overload & admission control").
//
//   * RequestDeadline — an absolute per-request deadline, stamped when the
//     request is parsed and threaded through batcher, service and
//     compaction so work that can no longer meet it is abandoned early.
//   * CircuitBreaker — a per-shard closed / open / half-open write gate.
//     Consecutive write failures (or deadline blowouts) trip it open; while
//     open, writes are rejected immediately with a retry hint and reads
//     keep serving the last published snapshot. After a cooldown one probe
//     write is admitted: success closes the breaker, failure re-opens it.
//
// Both are deliberately tiny and self-contained so they can be unit-tested
// without a service behind them.

#ifndef WEBER_SERVE_OVERLOAD_H_
#define WEBER_SERVE_OVERLOAD_H_

#include <chrono>
#include <mutex>

#include "common/status.h"

namespace weber {
namespace serve {

/// Absolute deadline of one request. Default-constructed = no deadline
/// (every check passes), so un-deadlined traffic costs two branch checks.
class RequestDeadline {
 public:
  using Clock = std::chrono::steady_clock;

  RequestDeadline() = default;

  /// A deadline `ms` milliseconds from now (ms <= 0 = no deadline).
  static RequestDeadline In(double ms) {
    RequestDeadline d;
    if (ms > 0.0) {
      d.has_ = true;
      d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double, std::milli>(ms));
    }
    return d;
  }

  bool has_deadline() const { return has_; }

  bool Expired() const { return has_ && Clock::now() >= at_; }

  /// Milliseconds until expiry (0 when expired; a large value when no
  /// deadline is set, so "remaining budget" comparisons stay simple).
  double RemainingMs() const {
    if (!has_) return 1e18;
    const auto left = at_ - Clock::now();
    return left.count() <= 0
               ? 0.0
               : std::chrono::duration<double, std::milli>(left).count();
  }

 private:
  bool has_ = false;
  Clock::time_point at_{};
};

/// Per-shard circuit breaker over the write path. Thread-safe; disabled
/// (always admits) when failure_threshold == 0.
///
/// State machine:
///
///   closed --[threshold consecutive failures]--> open
///   open   --[cooldown elapsed, next Admit]----> half-open (one probe)
///   half-open --[probe succeeds]--> closed   (a recovery)
///   half-open --[probe fails]----> open      (a fresh trip + cooldown)
class CircuitBreaker {
 public:
  struct Options {
    /// Consecutive failures that trip the breaker (0 disables it).
    int failure_threshold = 0;
    /// How long the breaker stays open before admitting a probe.
    double cooldown_ms = 1000.0;
  };

  enum class State : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  CircuitBreaker() = default;
  explicit CircuitBreaker(Options options) : options_(options) {}

  /// Replaces the options. Only safe before the breaker is shared across
  /// threads (no synchronization against concurrent Admit/Record calls).
  void Configure(Options options) { options_ = options; }

  /// Gate for one write. OK = proceed (and report the outcome via
  /// RecordSuccess/RecordFailure); Unavailable = shed the request. At most
  /// one caller at a time is admitted while half-open (the probe).
  Status Admit() {
    if (options_.failure_threshold <= 0) return Status::OK();
    std::lock_guard<std::mutex> lock(mu_);
    switch (state_) {
      case State::kClosed:
        return Status::OK();
      case State::kOpen: {
        if (Clock::now() < reopen_at_) {
          return Status::Unavailable("circuit breaker open");
        }
        state_ = State::kHalfOpen;
        probe_inflight_ = true;
        return Status::OK();
      }
      case State::kHalfOpen:
        if (probe_inflight_) {
          return Status::Unavailable("circuit breaker half-open (probing)");
        }
        probe_inflight_ = true;
        return Status::OK();
    }
    return Status::OK();
  }

  void RecordSuccess() {
    if (options_.failure_threshold <= 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    consecutive_failures_ = 0;
    if (state_ == State::kHalfOpen) {
      state_ = State::kClosed;
      probe_inflight_ = false;
      ++recoveries_;
    }
  }

  void RecordFailure() {
    if (options_.failure_threshold <= 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == State::kHalfOpen) {
      // The probe failed: back to a full cooldown.
      probe_inflight_ = false;
      Trip();
      return;
    }
    if (state_ == State::kOpen) return;  // failures while open change nothing
    if (++consecutive_failures_ >= options_.failure_threshold) Trip();
  }

  State state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }
  long long trips() const {
    std::lock_guard<std::mutex> lock(mu_);
    return trips_;
  }
  long long recoveries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return recoveries_;
  }
  bool enabled() const { return options_.failure_threshold > 0; }

 private:
  using Clock = std::chrono::steady_clock;

  void Trip() {  // requires mu_
    state_ = State::kOpen;
    consecutive_failures_ = 0;
    ++trips_;
    reopen_at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double, std::milli>(
                                        options_.cooldown_ms));
  }

  Options options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  bool probe_inflight_ = false;
  long long trips_ = 0;
  long long recoveries_ = 0;
  Clock::time_point reopen_at_{};
};

inline const char* BreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace serve
}  // namespace weber

#endif  // WEBER_SERVE_OVERLOAD_H_

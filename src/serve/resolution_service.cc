#include "serve/resolution_service.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/fault_injection.h"
#include "common/json_writer.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/compiled_path.h"
#include "extract/feature_extractor.h"
#include "graph/components.h"
#include "match/matcher.h"
#include "ml/splitter.h"

namespace weber {
namespace serve {

// ---------------------------------------------------------------------------
// Internal types

/// PairScoreCache adapter handed to a shard's IncrementalResolver:
/// translates arrival indices to canonical document ids and keys the shared
/// SimilarityCache. Only called under the shard lock (the resolver is
/// single-writer), so reading arrival_canonical is safe.
class ResolutionService::ShardScoreCache : public core::PairScoreCache {
 public:
  ShardScoreCache(Shard* shard, SimilarityCache* cache)
      : shard_(shard), cache_(cache) {}

  bool Lookup(int function_index, int a, int b, double* value) override;
  void Insert(int function_index, int a, int b, double value) override;

 private:
  CacheKey KeyFor(int function_index, int a, int b) const;

  Shard* shard_;
  SimilarityCache* cache_;
};

struct ResolutionService::Shard {
  std::string name;
  uint32_t id = 0;

  /// Canonical block documents (immutable after Create).
  std::vector<extract::FeatureBundle> bundles;
  std::vector<int> entity_labels;

  /// Guards the live resolver and arrival bookkeeping (the write path).
  mutable std::mutex mu;
  std::unique_ptr<core::IncrementalResolver> resolver;
  std::unique_ptr<ShardScoreCache> score_cache;
  /// Arrival index -> canonical document id.
  std::vector<int> arrival_canonical;
  /// Canonical document id -> assigned yet?
  std::vector<char> assigned;

  /// RCU-published read view; never null (starts at the empty snapshot).
  std::atomic<std::shared_ptr<const ResolverSnapshot>> snapshot;

  uint64_t next_version = 1;  // guarded by mu
  std::atomic<int> assigns_since_compact{0};
  std::atomic<bool> compaction_inflight{false};

  /// Writes admitted but not yet finished (only maintained when a
  /// max_pending_per_shard budget is configured).
  std::atomic<int> pending{0};
  /// Write-path gate; configured (or left disabled) in Create.
  CircuitBreaker breaker;

  /// Durable storage (WAL + snapshots); null when durability is disabled.
  /// Appends happen under `mu`; ShardLog is itself thread-safe, so Sync()
  /// may be called without it.
  std::unique_ptr<durability::ShardLog> log;
};

struct ResolutionService::PendingAssign {
  Shard* shard = nullptr;
  int doc = -1;
  RequestDeadline deadline;
  std::promise<Result<AssignResult>> promise;
  /// Trace context captured at submission; restored on the flush thread so
  /// spans recorded there attribute to the originating request. Both are
  /// only populated when a trace collector is configured.
  uint64_t request_id = 0;
  double submitted_at_ms = 0.0;
};

CacheKey ResolutionService::ShardScoreCache::KeyFor(int function_index, int a,
                                                    int b) const {
  const int ca = shard_->arrival_canonical[a];
  const int cb = shard_->arrival_canonical[b];
  CacheKey key;
  key.shard = shard_->id;
  key.function = static_cast<uint32_t>(function_index);
  key.a = static_cast<uint32_t>(std::min(ca, cb));
  key.b = static_cast<uint32_t>(std::max(ca, cb));
  return key;
}

bool ResolutionService::ShardScoreCache::Lookup(int function_index, int a,
                                                int b, double* value) {
  return cache_->Lookup(KeyFor(function_index, a, b), value);
}

void ResolutionService::ShardScoreCache::Insert(int function_index, int a,
                                                int b, double value) {
  cache_->Insert(KeyFor(function_index, a, b), value);
}

// ---------------------------------------------------------------------------
// Construction

ResolutionService::ResolutionService(ServiceOptions options)
    : options_(std::move(options)) {
  assigns_ = registry_.GetCounter(
      "weber_assigns_total", "Documents assigned to a live partition");
  queries_ = registry_.GetCounter(
      "weber_queries_total", "Documents resolved against a snapshot");
  compactions_ = registry_.GetCounter(
      "weber_compactions_total", "Shard compactions completed");
  failed_compactions_ = registry_.GetCounter(
      "weber_failed_compactions_total",
      "Shard compactions abandoned before publication");
  failed_assigns_ = registry_.GetCounter(
      "weber_failed_assigns_total",
      "Assignments rejected by faults or WAL append failures");
  snapshot_swaps_ = registry_.GetCounter(
      "weber_snapshot_swaps_total", "Snapshots atomically published");
  failed_publishes_ = registry_.GetCounter(
      "weber_failed_publishes_total",
      "Compactions whose durable snapshot publication failed");
  deadline_exceeded_ = registry_.GetCounter(
      "weber_deadline_exceeded_total",
      "Requests answered DEADLINE_EXCEEDED");
  const char* sheds_help = "Requests shed by overload protection, by kind";
  budget_sheds_ = registry_.GetCounter("weber_sheds_total", sheds_help,
                                       "kind", "budget");
  compaction_sheds_ = registry_.GetCounter("weber_sheds_total", sheds_help,
                                           "kind", "compaction");
  breaker_sheds_ = registry_.GetCounter("weber_sheds_total", sheds_help,
                                        "kind", "breaker");
  const char* latency_help = "Request latency by endpoint (milliseconds)";
  assign_hist_ = registry_.GetHistogram(
      "weber_request_latency_ms", latency_help,
      obs::DefaultLatencyBucketsMs(), "endpoint", "assign");
  query_hist_ = registry_.GetHistogram(
      "weber_request_latency_ms", latency_help,
      obs::DefaultLatencyBucketsMs(), "endpoint", "query");
  compact_hist_ = registry_.GetHistogram(
      "weber_request_latency_ms", latency_help,
      obs::DefaultLatencyBucketsMs(), "endpoint", "compact");
  batch_size_hist_ = registry_.GetHistogram(
      "weber_batch_size", "Assignments per micro-batch flush",
      {1, 2, 4, 8, 16, 32, 64, 128, 256});
}

void ResolutionService::RegisterPulledMetrics() {
  // Pull-style bridges to subsystems that keep their own counters; invoked
  // at export time, so the hot paths stay untouched. `this` outlives the
  // registry's callers (the registry is a member).
  auto pull = [this](const char* name, const char* help,
                     obs::MetricType type, std::function<double()> fn,
                     const char* label_key = "",
                     const char* label_value = "") {
    registry_.RegisterCallback(name, help, type, std::move(fn), label_key,
                               label_value);
  };
  pull("weber_cache_hits_total", "Similarity cache hits",
       obs::MetricType::kCounter,
       [this] { return static_cast<double>(cache_->Stats().hits); });
  pull("weber_cache_misses_total", "Similarity cache misses",
       obs::MetricType::kCounter,
       [this] { return static_cast<double>(cache_->Stats().misses); });
  pull("weber_cache_evictions_total", "Similarity cache evictions",
       obs::MetricType::kCounter,
       [this] { return static_cast<double>(cache_->Stats().evictions); });
  pull("weber_cache_entries", "Similarity cache resident entries",
       obs::MetricType::kGauge,
       [this] { return static_cast<double>(cache_->Stats().entries); });
  pull("weber_cache_hit_rate", "Similarity cache hit rate (0 when unused)",
       obs::MetricType::kGauge, [this] { return cache_->Stats().HitRate(); });
  pull("weber_batches_flushed_total", "Micro-batcher flushes",
       obs::MetricType::kCounter,
       [this] { return static_cast<double>(batcher_->batches_flushed()); });
  pull("weber_batched_requests_total",
       "Assignments that went through the micro-batcher",
       obs::MetricType::kCounter,
       [this] { return static_cast<double>(batcher_->requests_flushed()); });
  pull("weber_batcher_pending", "Assignments currently parked in the batcher",
       obs::MetricType::kGauge,
       [this] { return static_cast<double>(batcher_->pending()); });
  pull("weber_sheds_total", "Requests shed by overload protection, by kind",
       obs::MetricType::kCounter,
       [this] { return static_cast<double>(batcher_->rejected()); }, "kind",
       "batcher");
  pull("weber_breaker_trips_total", "Circuit breaker trips across shards",
       obs::MetricType::kCounter, [this] {
         double total = 0;
         for (const auto& shard : shards_) total += shard->breaker.trips();
         return total;
       });
  pull("weber_breakers_open", "Shards whose circuit breaker is open",
       obs::MetricType::kGauge, [this] {
         double open = 0;
         for (const auto& shard : shards_) {
           if (shard->breaker.state() == CircuitBreaker::State::kOpen) ++open;
         }
         return open;
       });
  pull("weber_shards", "Shards served", obs::MetricType::kGauge,
       [this] { return static_cast<double>(shards_.size()); });
  if (!options_.durability.data_dir.empty()) {
    auto sum_logs = [this](auto member) {
      double total = 0;
      for (const auto& shard : shards_) {
        if (shard->log != nullptr) total += (shard->log.get()->*member)();
      }
      return total;
    };
    pull("weber_wal_appends_total", "WAL records appended",
         obs::MetricType::kCounter,
         [sum_logs] { return sum_logs(&durability::ShardLog::wal_appends); });
    pull("weber_wal_syncs_total", "WAL fsync batches",
         obs::MetricType::kCounter,
         [sum_logs] { return sum_logs(&durability::ShardLog::wal_syncs); });
    pull("weber_snapshots_written_total", "Durable snapshots written",
         obs::MetricType::kCounter, [sum_logs] {
           return sum_logs(&durability::ShardLog::snapshots_written);
         });
  }
}

ResolutionService::~ResolutionService() {
  // The batcher's destructor flushes pending assigns (which append WAL
  // records) and the compaction pool may still publish snapshots, so both
  // must stop before the final group-commit sync makes everything durable.
  batcher_.reset();
  compaction_pool_.reset();
  (void)SyncDurable();
}

Status ResolutionService::SyncDurable() {
  Status first = Status::OK();
  for (const auto& shard : shards_) {
    if (shard->log == nullptr) continue;
    if (Status st = shard->log->Sync(); !st.ok() && first.ok()) {
      first = st;
    }
  }
  return first;
}

Result<std::unique_ptr<ResolutionService>> ResolutionService::Create(
    const corpus::Dataset& dataset, const extract::Gazetteer* gazetteer,
    ServiceOptions options) {
  if (gazetteer == nullptr) {
    return Status::InvalidArgument("ResolutionService: null gazetteer");
  }
  if (dataset.blocks.empty()) {
    return Status::InvalidArgument("ResolutionService: empty dataset");
  }
  auto service =
      std::unique_ptr<ResolutionService>(new ResolutionService(options));
  WEBER_ASSIGN_OR_RETURN(
      service->functions_,
      core::MakeFunctions(options.incremental.function_names));
  service->cache_ = std::make_unique<SimilarityCache>(options.cache);

  extract::FeatureExtractor extractor(gazetteer);
  Rng calibration_rng(options.calibration_seed);
  for (size_t b = 0; b < dataset.blocks.size(); ++b) {
    const corpus::Block& block = dataset.blocks[b];
    auto shard = std::make_unique<Shard>();
    shard->name = block.query;
    shard->id = static_cast<uint32_t>(b);
    std::vector<extract::PageInput> pages;
    pages.reserve(block.documents.size());
    for (const corpus::Document& d : block.documents) {
      pages.push_back({d.url, d.text});
    }
    WEBER_ASSIGN_OR_RETURN(shard->bundles,
                           extractor.ExtractBlock(pages, block.query));
    shard->entity_labels = block.entity_labels;
    for (int label : block.entity_labels) {
      if (label < 0) {
        return Status::InvalidArgument(
            "ResolutionService: block '", block.query,
            "' lacks ground-truth labels (needed for threshold calibration)");
      }
    }
    shard->assigned.assign(shard->bundles.size(), 0);
    shard->breaker.Configure({options.overload.breaker_failure_threshold,
                              options.overload.breaker_cooldown_ms});

    WEBER_ASSIGN_OR_RETURN(auto resolver, core::IncrementalResolver::Create(
                                              options.incremental));
    shard->resolver =
        std::make_unique<core::IncrementalResolver>(std::move(resolver));
    Rng rng = calibration_rng.Fork(b);
    auto pairs = ml::SampleTrainingPairs(block.num_documents(),
                                         options.train_fraction, &rng);
    WEBER_RETURN_NOT_OK(shard->resolver->CalibrateThreshold(
        shard->bundles, shard->entity_labels, pairs));

    shard->score_cache =
        std::make_unique<ShardScoreCache>(shard.get(), service->cache_.get());
    shard->resolver->set_score_cache(shard->score_cache.get());

    auto empty = std::make_shared<ResolverSnapshot>();
    empty->version = 0;
    empty->threshold = shard->resolver->threshold();
    shard->snapshot.store(std::move(empty));

    if (!options.durability.data_dir.empty()) {
      durability::ShardLogOptions log_options;
      log_options.fsync = options.durability.fsync;
      log_options.wal_truncate_bytes = options.durability.wal_truncate_bytes;
      durability::RecoveredShard recovered;
      WEBER_ASSIGN_OR_RETURN(
          shard->log,
          durability::ShardLog::Open(options.durability.data_dir + "/" +
                                         ShardDirName(shard->id, shard->name),
                                     log_options, &recovered));
      WEBER_RETURN_NOT_OK(
          service->RestoreShard(shard.get(), std::move(recovered)));
    }

    service->shard_index_[block.query] =
        static_cast<int>(service->shards_.size());
    service->block_names_.push_back(block.query);
    service->shards_.push_back(std::move(shard));
  }

  service->compaction_pool_ = std::make_unique<Executor>(
      options.compaction_threads, options.overload.executor_queue_cap);
  BatcherOptions batcher_options = options.batcher;
  if (options.overload.batcher_queue_cap > 0) {
    batcher_options.max_pending = options.overload.batcher_queue_cap;
  }
  ResolutionService* raw = service.get();
  service->batcher_ = std::make_unique<MicroBatcher<PendingAssign>>(
      batcher_options, [raw](std::vector<PendingAssign> batch) {
        raw->ProcessAssignBatch(std::move(batch));
      });
  service->RegisterPulledMetrics();
  return service;
}

// ---------------------------------------------------------------------------
// Crash recovery (runs inside Create, before any concurrency exists)

std::string ResolutionService::ShardDirName(uint32_t id,
                                            const std::string& name) {
  char prefix[24];
  std::snprintf(prefix, sizeof(prefix), "shard-%04u-", id);
  std::string dir = prefix;
  for (char c : name) {
    dir.push_back(
        std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return dir;
}

Status ResolutionService::VerifyRecoveredPartition(
    const Shard& shard, const durability::ShardSnapshotData& snap) const {
  // The snapshot stores a batch-computed partition, and batch resolution is
  // invariant to arrival order — so re-resolving the stored document set
  // must reproduce the stored labels exactly. Any divergence means the
  // snapshot (or the feature pipeline under it) is not to be trusted.
  const int n = static_cast<int>(snap.canonical_ids.size());
  std::vector<std::pair<int, int>> edges;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (ScorePairCached(shard, snap.canonical_ids[a],
                          snap.canonical_ids[b]) >= snap.threshold) {
        edges.push_back({a, b});
      }
    }
  }
  const graph::Clustering reference = graph::ConnectedComponents(n, edges);
  const std::vector<int> stored(snap.labels.begin(), snap.labels.end());
  if (!(graph::Clustering::FromLabels(stored) == reference)) {
    return Status::Corruption(
        "recovery: snapshot v", static_cast<long long>(snap.version),
        " of shard '", shard.name,
        "' does not match batch re-resolution of its document set");
  }
  return Status::OK();
}

Status ResolutionService::RestoreShard(Shard* shard,
                                       durability::RecoveredShard recovered) {
  const int block_size = static_cast<int>(shard->bundles.size());
  auto clusters_from_labels = [](const std::vector<int32_t>& labels) {
    const std::vector<int> as_int(labels.begin(), labels.end());
    return graph::Clustering::FromLabels(as_int).Groups();
  };

  uint64_t max_version = 0;
  if (recovered.snapshot_loaded) {
    const durability::ShardSnapshotData& snap = recovered.snapshot;
    max_version = snap.version;
    if (std::abs(snap.threshold - shard->resolver->threshold()) > 1e-9) {
      return Status::FailedPrecondition(
          "recovery: shard '", shard->name, "' was persisted at threshold ",
          snap.threshold, " but recalibrated to ",
          shard->resolver->threshold(),
          " — the dataset or calibration changed; refusing to mix them");
    }
    std::vector<extract::FeatureBundle> docs;
    docs.reserve(snap.canonical_ids.size());
    for (int32_t id : snap.canonical_ids) {
      if (id < 0 || id >= block_size || shard->assigned[id]) {
        return Status::Corruption("recovery: snapshot of shard '",
                                  shard->name,
                                  "' references invalid or repeated document ",
                                  id);
      }
      shard->assigned[id] = 1;
      shard->arrival_canonical.push_back(id);
      docs.push_back(shard->bundles[id]);
    }
    WEBER_RETURN_NOT_OK(shard->resolver->Restore(
        std::move(docs), clusters_from_labels(snap.labels)));
    if (options_.durability.verify_recovery) {
      WEBER_RETURN_NOT_OK(VerifyRecoveredPartition(*shard, snap));
    }
    ++recovered_snapshots_;
  }

  for (const durability::WalRecord& record : recovered.records) {
    switch (record.type) {
      case durability::WalRecord::Type::kAssign: {
        const int doc = record.doc;
        if (doc < 0 || doc >= block_size) {
          return Status::Corruption("recovery: WAL of shard '", shard->name,
                                    "' assigns out-of-range document ", doc);
        }
        if (shard->assigned[doc]) break;  // already inside the snapshot
        shard->assigned[doc] = 1;
        shard->arrival_canonical.push_back(doc);
        if (shard->resolver->Add(shard->bundles[doc]) < 0) {
          return Status::Internal("recovery: resolver rejected replayed ",
                                  "document ", doc);
        }
        break;
      }
      case durability::WalRecord::Type::kAdoptPartition: {
        const int n = static_cast<int>(record.labels.size());
        if (n == shard->resolver->num_documents()) {
          WEBER_RETURN_NOT_OK(shard->resolver->AdoptPartition(
              clusters_from_labels(record.labels)));
        } else if (n > shard->resolver->num_documents()) {
          // A partition over documents we failed to rebuild: some Assign
          // records were lost ahead of it. Keep the greedy replay result
          // and let the next compaction re-converge, but surface it.
          ++recovery_health_.degraded_blocks;
        }
        // n < num_documents: a stale partition superseded by later logged
        // arrivals — skipping it silently is the normal case.
        max_version = std::max(max_version, record.version);
        break;
      }
      case durability::WalRecord::Type::kSnapshotPublished: {
        if (record.version > max_version) {
          // The log says this snapshot was durable, yet no usable file or
          // partition record with that version survived.
          ++recovery_health_.corrupt_snapshots;
        }
        max_version = std::max(max_version, record.version);
        break;
      }
    }
  }

  if (recovered.stats.wal_torn_tail) ++recovery_health_.torn_wal_tails;
  if (recovered.stats.wal_corrupt) ++recovery_health_.corrupt_wal_records;
  recovery_health_.corrupt_snapshots += recovered.stats.corrupt_snapshots;
  recovered_docs_ += static_cast<long long>(shard->arrival_canonical.size());

  shard->next_version = max_version + 1;
  if (!shard->arrival_canonical.empty()) {
    // Publish the recovered live partition so recovered documents are
    // immediately queryable; the next compaction replaces it with a fresh
    // batch result (and makes that one durable).
    auto snapshot = std::make_shared<ResolverSnapshot>();
    snapshot->version = shard->next_version++;
    snapshot->threshold = shard->resolver->threshold();
    snapshot->clustering = shard->resolver->CurrentClustering();
    snapshot->clusters = snapshot->clustering.Groups();
    snapshot->canonical_ids = shard->arrival_canonical;
    snapshot->documents.reserve(shard->arrival_canonical.size());
    for (int id : shard->arrival_canonical) {
      snapshot->documents.push_back(shard->bundles[id]);
    }
    shard->snapshot.store(std::move(snapshot), std::memory_order_release);
  }
  return Status::OK();
}

Result<ResolutionService::Shard*> ResolutionService::FindShard(
    const std::string& block) const {
  auto it = shard_index_.find(block);
  if (it == shard_index_.end()) {
    return Status::NotFound("no shard for block '", block, "'");
  }
  return shards_[it->second].get();
}

Result<int> ResolutionService::BlockSize(const std::string& block) const {
  WEBER_ASSIGN_OR_RETURN(Shard * shard, FindShard(block));
  return static_cast<int>(shard->bundles.size());
}

Result<double> ResolutionService::ShardThreshold(
    const std::string& block) const {
  WEBER_ASSIGN_OR_RETURN(Shard * shard, FindShard(block));
  return shard->resolver->threshold();
}

// ---------------------------------------------------------------------------
// Overload admission (see DESIGN.md, "Overload & admission control")

RequestDeadline ResolutionService::EffectiveDeadline(
    RequestDeadline deadline) const {
  if (!deadline.has_deadline() && options_.overload.default_deadline_ms > 0) {
    return RequestDeadline::In(options_.overload.default_deadline_ms);
  }
  return deadline;
}

Status ResolutionService::AdmitWrite(Shard* shard,
                                     const RequestDeadline& deadline) {
  if (deadline.Expired()) {
    // Answered without doing the work, but still a deadline blowout the
    // breaker must see — that keeps breaker behavior identical whether the
    // budget dies before admission or after fault-injected latency.
    deadline_exceeded_->Increment();
    shard->breaker.RecordFailure();
    return Status::DeadlineExceeded("deadline expired before admission to ",
                                    "shard '", shard->name, "'");
  }
  const int cap = options_.overload.max_pending_per_shard;
  if (cap > 0) {
    int current = shard->pending.load(std::memory_order_relaxed);
    for (;;) {
      if (current >= cap) {
        budget_sheds_->Increment();
        return Status::Unavailable("shard '", shard->name, "' already has ",
                                   current, " pending writes (cap ", cap, ")");
      }
      if (shard->pending.compare_exchange_weak(current, current + 1,
                                               std::memory_order_relaxed)) {
        break;
      }
    }
  }
  if (Status st = shard->breaker.Admit(); !st.ok()) {
    if (cap > 0) shard->pending.fetch_sub(1, std::memory_order_relaxed);
    breaker_sheds_->Increment();
    return st;
  }
  return Status::OK();
}

void ResolutionService::FinishWrite(Shard* shard, const Status& outcome) {
  if (options_.overload.max_pending_per_shard > 0) {
    shard->pending.fetch_sub(1, std::memory_order_relaxed);
  }
  if (outcome.ok()) {
    shard->breaker.RecordSuccess();
    return;
  }
  if (outcome.code() == StatusCode::kDeadlineExceeded) {
    deadline_exceeded_->Increment();
  }
  // Every admitted write must resolve the breaker's bookkeeping (a
  // half-open probe in particular), so any failure — including a shed
  // between admission and parking — counts as a breaker failure.
  shard->breaker.RecordFailure();
}

bool ResolutionService::OverloadConfigured() const {
  const ServiceOptions::Overload& o = options_.overload;
  return o.executor_queue_cap > 0 || o.batcher_queue_cap > 0 ||
         o.max_pending_per_shard > 0 || o.default_deadline_ms > 0 ||
         o.breaker_failure_threshold > 0;
}

// ---------------------------------------------------------------------------
// Assignment (hot write path)

Result<AssignResult> ResolutionService::AssignLocked(
    Shard* shard, int doc, const RequestDeadline& deadline) {
  // Covers the WAL append plus the greedy resolver step, i.e. the work done
  // while holding the shard lock for this one document.
  obs::ScopedSpan span(options_.trace, "serve.resolver");
  if (doc < 0 || doc >= static_cast<int>(shard->bundles.size())) {
    return Status::InvalidArgument("Assign: document ", doc,
                                   " out of range for block '", shard->name,
                                   "'");
  }
  if (deadline.Expired()) {
    // Typically a request that expired while parked in the micro-batcher
    // or waiting on the shard lock: answer before any work or mutation.
    return Status::DeadlineExceeded("Assign: deadline expired while queued ",
                                    "for shard '", shard->name, "'");
  }
  if (Status st = faults::MaybeFail("serve.assign"); !st.ok()) {
    failed_assigns_->Increment();
    return st;
  }
  AssignResult result;
  result.snapshot_version =
      shard->snapshot.load(std::memory_order_acquire)->version;
  if (shard->assigned[doc]) {
    // Idempotent repeat: report the document's current live cluster.
    int arrival = -1;
    for (size_t i = 0; i < shard->arrival_canonical.size(); ++i) {
      if (shard->arrival_canonical[i] == doc) {
        arrival = static_cast<int>(i);
        break;
      }
    }
    const auto& clusters = shard->resolver->clusters();
    for (size_t c = 0; c < clusters.size(); ++c) {
      for (int member : clusters[c]) {
        if (member == arrival) {
          if (deadline.Expired()) {
            // Fault-injected latency (or real stall) blew the budget after
            // the lookup; the answer is stale by the client's own measure.
            return Status::DeadlineExceeded(
                "Assign: completed past the deadline on shard '", shard->name,
                "' (idempotent; retrying is safe)");
          }
          result.cluster = static_cast<int>(c);
          return result;
        }
      }
    }
    return Status::Internal("Assign: assigned document missing from partition");
  }
  // Write-ahead: the assignment is logged before any in-memory mutation, so
  // a crash after the ack can always be replayed and a failed append leaves
  // the shard exactly as it was.
  if (shard->log != nullptr) {
    if (Status st = shard->log->Append(durability::WalRecord::Assign(doc));
        !st.ok()) {
      failed_assigns_->Increment();
      return st;
    }
  }
  shard->assigned[doc] = 1;
  shard->arrival_canonical.push_back(doc);
  result.cluster = shard->resolver->Add(shard->bundles[doc]);
  if (result.cluster < 0) {
    return Status::FailedPrecondition("Assign: shard '", shard->name,
                                      "' is not calibrated");
  }
  assigns_->Increment();
  shard->assigns_since_compact.fetch_add(1, std::memory_order_relaxed);
  if (deadline.Expired()) {
    // The work ran past the client's budget (e.g. fault-injected latency).
    // The assignment stands — it is WAL-logged and idempotent — but the
    // client is told the truth so it can retry with a fresh deadline.
    return Status::DeadlineExceeded(
        "Assign: completed past the deadline on shard '", shard->name,
        "' (the assignment stands; retrying is safe)");
  }
  return result;
}

Result<AssignResult> ResolutionService::Assign(const std::string& block,
                                               int doc,
                                               RequestDeadline deadline) {
  obs::ScopedSpan span(options_.trace, "serve.assign");
  WEBER_ASSIGN_OR_RETURN(Shard * shard, FindShard(block));
  deadline = EffectiveDeadline(deadline);
  WEBER_RETURN_NOT_OK(AdmitWrite(shard, deadline));
  WallTimer timer;
  Result<AssignResult> result = Status::Internal("unset");
  {
    obs::ScopedSpan shard_span(options_.trace, "serve.shard");
    std::lock_guard<std::mutex> lock(shard->mu);
    result = AssignLocked(shard, doc, deadline);
  }
  const double elapsed = timer.ElapsedMillis();
  assign_latency_.Record(elapsed);
  assign_hist_->Observe(elapsed);
  FinishWrite(shard, result.status());
  if (result.ok() && options_.compact_every > 0 &&
      shard->assigns_since_compact.load(std::memory_order_relaxed) >=
          options_.compact_every) {
    (void)CompactInBackground(block);
  }
  return result;
}

std::future<Result<AssignResult>> ResolutionService::AssignAsync(
    const std::string& block, int doc, RequestDeadline deadline) {
  PendingAssign pending;
  pending.doc = doc;
  if (options_.trace != nullptr) {
    pending.request_id = obs::CurrentRequestId();
    pending.submitted_at_ms = options_.trace->NowMs();
  }
  std::future<Result<AssignResult>> future = pending.promise.get_future();
  auto shard = FindShard(block);
  if (!shard.ok()) {
    pending.promise.set_value(shard.status());
    return future;
  }
  pending.shard = *shard;
  pending.deadline = EffectiveDeadline(deadline);
  if (Status st = AdmitWrite(*shard, pending.deadline); !st.ok()) {
    pending.promise.set_value(st);
    return future;
  }
  if (options_.overload.batcher_queue_cap > 0) {
    if (!batcher_->TrySubmit(pending)) {
      Status shed = Status::Unavailable(
          "assign queue full (", batcher_->pending(), " parked)");
      FinishWrite(*shard, shed);
      pending.promise.set_value(shed);
      return future;
    }
  } else {
    batcher_->Submit(std::move(pending));
  }
  return future;
}

void ResolutionService::ProcessAssignBatch(std::vector<PendingAssign> batch) {
  batch_size_hist_->Observe(static_cast<double>(batch.size()));
  if (options_.trace != nullptr) {
    // Park spans: how long each request waited in the batcher before its
    // flush, attributed to the submitting request's ID.
    const double now = options_.trace->NowMs();
    for (const PendingAssign& pending : batch) {
      options_.trace->Record("serve.batcher.park", pending.request_id,
                             pending.submitted_at_ms,
                             now - pending.submitted_at_ms);
    }
  }
  // Group by shard, preserving submission order within each group, so one
  // lock acquisition covers a run of same-shard requests.
  std::vector<Shard*> maybe_compact;
  std::vector<std::pair<size_t, Result<AssignResult>>> results;
  size_t i = 0;
  while (i < batch.size()) {
    Shard* shard = batch[i].shard;
    results.clear();
    {
      obs::ScopedSpan flush_span(options_.trace, "serve.batch_flush");
      std::lock_guard<std::mutex> lock(shard->mu);
      WallTimer timer;
      for (size_t j = i; j < batch.size(); ++j) {
        if (batch[j].shard != shard) continue;
        // Restore the submitter's request ID for the spans recorded under
        // AssignLocked on this flush thread.
        obs::RequestIdScope id_scope(batch[j].request_id);
        // AssignLocked re-checks the deadline on entry, so a request that
        // expired while parked in the batcher is answered without work.
        results.emplace_back(j,
                             AssignLocked(shard, batch[j].doc,
                                          batch[j].deadline));
        batch[j].shard = nullptr;  // mark handled
      }
      const double elapsed = timer.ElapsedMillis();
      assign_latency_.Record(elapsed);
      assign_hist_->Observe(elapsed);
    }
    // Group commit: under the kBatch fsync policy the whole group becomes
    // durable with one sync before any acknowledgement leaves the service.
    // A failed sync downgrades the group's successes to that error — the
    // in-memory assignment already happened, so a client retry lands on the
    // idempotent path and re-acks once durability is restored.
    Status synced =
        shard->log != nullptr ? shard->log->Sync() : Status::OK();
    for (auto& [j, result] : results) {
      if (!synced.ok() && result.ok()) {
        failed_assigns_->Increment();
        FinishWrite(shard, synced);
        batch[j].promise.set_value(synced);
      } else {
        FinishWrite(shard, result.status());
        batch[j].promise.set_value(std::move(result));
      }
    }
    if (options_.compact_every > 0 &&
        shard->assigns_since_compact.load(std::memory_order_relaxed) >=
            options_.compact_every) {
      maybe_compact.push_back(shard);
    }
    while (i < batch.size() && batch[i].shard == nullptr) ++i;
  }
  for (Shard* shard : maybe_compact) {
    (void)CompactInBackground(shard->name);
  }
}

// ---------------------------------------------------------------------------
// Query (lock-free read path)

double ResolutionService::ScorePairCached(const Shard& shard, int canon_a,
                                          int canon_b) const {
  CacheKey key;
  key.shard = shard.id;
  key.a = static_cast<uint32_t>(std::min(canon_a, canon_b));
  key.b = static_cast<uint32_t>(std::max(canon_a, canon_b));
  double sum = 0.0;
  const extract::FeatureBundle& a = shard.bundles[key.a];
  const extract::FeatureBundle& b = shard.bundles[key.b];
  for (size_t f = 0; f < functions_.size(); ++f) {
    key.function = static_cast<uint32_t>(f);
    double value;
    if (!cache_->Lookup(key, &value)) {
      value = functions_[f]->Compute(a, b);
      cache_->Insert(key, value);
    }
    sum += value;
  }
  return sum / static_cast<double>(functions_.size());
}

Result<QueryResult> ResolutionService::Query(const std::string& block,
                                             int doc,
                                             RequestDeadline deadline) const {
  WEBER_ASSIGN_OR_RETURN(Shard * shard, FindShard(block));
  if (doc < 0 || doc >= static_cast<int>(shard->bundles.size())) {
    return Status::InvalidArgument("Query: document ", doc,
                                   " out of range for block '", block, "'");
  }
  deadline = EffectiveDeadline(deadline);
  if (deadline.Expired()) {
    // Reads skip the breaker and the budget — they are lock-free and cheap
    // — but an already-dead request is not worth even that much.
    deadline_exceeded_->Increment();
    return Status::DeadlineExceeded("Query: deadline expired before ",
                                    "execution on shard '", block, "'");
  }
  obs::ScopedSpan span(options_.trace, "serve.query");
  WallTimer timer;
  std::shared_ptr<const ResolverSnapshot> snap =
      shard->snapshot.load(std::memory_order_acquire);
  QueryResult result;
  result.snapshot_version = snap->version;
  const bool best_max = options_.incremental.assignment ==
                        core::IncrementalOptions::Assignment::kBestMax;
  // A document the snapshot already contains resolves to its published
  // label: membership can come from transitive closure, where the mean
  // similarity to the full cluster may sit below the link threshold.
  int own_cluster = -1;
  for (int pos = 0; pos < snap->num_documents(); ++pos) {
    if (snap->canonical_ids[pos] == doc) {
      own_cluster = snap->clustering.label(pos);
      break;
    }
  }
  double best_score = snap->threshold;
  for (size_t c = 0; c < snap->clusters.size(); ++c) {
    if (own_cluster >= 0 && static_cast<int>(c) != own_cluster) continue;
    const std::vector<int>& members = snap->clusters[c];
    if (members.empty()) continue;
    double agg = 0.0;
    for (int member : members) {
      double s = ScorePairCached(*shard, doc, snap->canonical_ids[member]);
      agg = best_max ? std::max(agg, s) : agg + s;
    }
    if (!best_max) agg /= static_cast<double>(members.size());
    if (own_cluster >= 0 || agg >= best_score) {
      best_score = agg;
      result.cluster = static_cast<int>(c);
      result.score = agg;
    }
  }
  queries_->Increment();
  const double elapsed = timer.ElapsedMillis();
  query_latency_.Record(elapsed);
  query_hist_->Observe(elapsed);
  return result;
}

Result<MatchResult> ResolutionService::Match(const std::string& block,
                                             const std::vector<int>& docs,
                                             RequestDeadline deadline) const {
  WEBER_ASSIGN_OR_RETURN(Shard * shard, FindShard(block));
  if (docs.empty()) {
    return Status::InvalidArgument("Match: no documents given for block '",
                                   block, "'");
  }
  std::vector<char> seen(shard->bundles.size(), 0);
  for (int doc : docs) {
    if (doc < 0 || doc >= static_cast<int>(shard->bundles.size())) {
      return Status::InvalidArgument("Match: document ", doc,
                                     " out of range for block '", block, "'");
    }
    if (seen[doc]) {
      return Status::InvalidArgument("Match: duplicate document ", doc,
                                     " (the mapping is one-to-one)");
    }
    seen[doc] = 1;
  }
  deadline = EffectiveDeadline(deadline);
  if (deadline.Expired()) {
    deadline_exceeded_->Increment();
    return Status::DeadlineExceeded("Match: deadline expired before ",
                                    "execution on shard '", block, "'");
  }
  // Lazy registration keeps the metrics exposition byte-identical for
  // deployments that never issue a match.
  std::call_once(match_metrics_once_, [this] {
    matches_.store(
        registry_.GetCounter("weber_matches_total",
                             "Match requests answered (one-to-one linkage)"),
        std::memory_order_release);
    match_hist_.store(
        registry_.GetHistogram("weber_request_latency_ms",
                               "Request latency by endpoint (milliseconds)",
                               obs::DefaultLatencyBucketsMs(), "endpoint",
                               "match"),
        std::memory_order_release);
  });
  obs::ScopedSpan span(options_.trace, "serve.match");
  WallTimer timer;
  std::shared_ptr<const ResolverSnapshot> snap =
      shard->snapshot.load(std::memory_order_acquire);
  MatchResult result;
  result.snapshot_version = snap->version;
  const bool best_max = options_.incremental.assignment ==
                        core::IncrementalOptions::Assignment::kBestMax;
  // Score every requested document against every snapshot cluster with the
  // same aggregate Query uses, then solve the bipartite matching at the
  // shard threshold: greedy best-first is one-to-one and cheap enough for
  // the read path.
  //
  // Compiled hot path: the batchable functions are scored as one strip per
  // (document, function) over the shard's bundles and looked up per member;
  // the remaining functions stay on the per-pair cache path with
  // ScorePairCached's exact key order, so every aggregate is bit-identical
  // to the interpreted walk (see core/compiled_path.h). Armed fault
  // injection forces the fully interpreted path so the `similarity.compute`
  // chaos point keeps observing every pair.
  const size_t num_functions = functions_.size();
  core::BlockScorer strip_scorer(&shard->bundles);
  std::vector<core::BatchSpec> specs(num_functions);
  std::vector<char> batchable(num_functions, 0);
  bool any_batchable = false;
  if (options_.incremental.compiled_path &&
      !faults::FaultInjector::Instance().AnyArmed()) {
    for (size_t f = 0; f < num_functions; ++f) {
      specs[f] = functions_[f]->batch_spec();
      // Pearson is excluded here (unlike the resolver paths, which always
      // score the lower index first): its covariance expression is not
      // bitwise-commutative, and the cache keys pairs lowest-id-first while
      // a strip fixes the requested document as the anchor.
      batchable[f] = specs[f].batchable() &&
                             specs[f].measure !=
                                 core::BatchSpec::Measure::kPearson &&
                             strip_scorer.CanBatch(specs[f])
                         ? 1
                         : 0;
      any_batchable = any_batchable || batchable[f];
    }
  }
  const int num_bundles = static_cast<int>(shard->bundles.size());
  std::vector<std::vector<double>> strips(num_functions);
  auto score_pair_stripped = [&](int doc, int canon) {
    CacheKey key;
    key.shard = shard->id;
    key.a = static_cast<uint32_t>(std::min(doc, canon));
    key.b = static_cast<uint32_t>(std::max(doc, canon));
    const extract::FeatureBundle& a = shard->bundles[key.a];
    const extract::FeatureBundle& b = shard->bundles[key.b];
    double sum = 0.0;
    for (size_t f = 0; f < num_functions; ++f) {
      if (batchable[f]) {
        sum += strips[f][canon];
        continue;
      }
      key.function = static_cast<uint32_t>(f);
      double value;
      if (!cache_->Lookup(key, &value)) {
        value = functions_[f]->Compute(a, b);
        cache_->Insert(key, value);
      }
      sum += value;
    }
    return sum / static_cast<double>(num_functions);
  };
  match::ScoreMatrix scores(static_cast<int>(docs.size()),
                            static_cast<int>(snap->clusters.size()));
  for (size_t i = 0; i < docs.size(); ++i) {
    if (any_batchable) {
      for (size_t f = 0; f < num_functions; ++f) {
        if (!batchable[f]) continue;
        strips[f].resize(num_bundles);
        strip_scorer.ScoreStrip(specs[f], docs[i], 0, num_bundles,
                                strips[f].data());
      }
    }
    for (size_t c = 0; c < snap->clusters.size(); ++c) {
      const std::vector<int>& members = snap->clusters[c];
      if (members.empty()) continue;
      double agg = 0.0;
      for (int member : members) {
        const int canon = snap->canonical_ids[member];
        const double s = any_batchable
                             ? score_pair_stripped(docs[i], canon)
                             : ScorePairCached(*shard, docs[i], canon);
        agg = best_max ? std::max(agg, s) : agg + s;
      }
      if (!best_max) agg /= static_cast<double>(members.size());
      scores.set(static_cast<int>(i), static_cast<int>(c), agg);
    }
  }
  match::MatcherOptions match_options;
  match_options.threshold = snap->threshold;
  const match::Matching matching =
      match::MakeGreedyMatcher(match_options)->Match(scores);
  result.clusters = matching.LeftAssignment(scores.rows());
  matches_.load(std::memory_order_acquire)->Increment();
  const double elapsed = timer.ElapsedMillis();
  match_latency_.Record(elapsed);
  match_hist_.load(std::memory_order_acquire)->Observe(elapsed);
  return result;
}

// ---------------------------------------------------------------------------
// Compaction (background batch re-resolution + snapshot swap)

Status ResolutionService::CompactShard(Shard* shard,
                                       const RequestDeadline& deadline) {
  obs::ScopedSpan span(options_.trace, "serve.compact");
  WallTimer timer;
  auto record_latency = [this, &timer] {
    const double elapsed = timer.ElapsedMillis();
    compact_latency_.Record(elapsed);
    compact_hist_->Observe(elapsed);
  };
  // Phase 1 — copy the live arrival state under the lock. Bundles are
  // immutable, so only the id mapping and threshold need the lock.
  std::vector<int> canonical;
  double threshold;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    canonical = shard->arrival_canonical;
    threshold = shard->resolver->threshold();
  }
  const int n = static_cast<int>(canonical.size());

  // Phase 2 — batch re-resolution outside any lock: score every pair
  // (cache-backed), link at the calibrated threshold, transitive closure.
  // Identical semantics to IncrementalResolver::BatchResolve, and
  // order-invariant, so any arrival interleaving converges here.
  std::vector<std::pair<int, int>> edges;
  for (int a = 0; a < n; ++a) {
    // Cooperative deadline check per row, mirroring BatchResolve: a
    // compaction that cannot finish in budget is abandoned before it
    // publishes anything, so the shard keeps its previous snapshot.
    if (deadline.Expired()) {
      failed_compactions_->Increment();
      record_latency();
      return Status::DeadlineExceeded("Compact: deadline hit after ", a,
                                      " of ", n, " rows on shard '",
                                      shard->name, "'");
    }
    for (int b = a + 1; b < n; ++b) {
      if (ScorePairCached(*shard, canonical[a], canonical[b]) >= threshold) {
        edges.push_back({a, b});
      }
    }
  }

  // The chaos hook sits after the expensive work and before publication:
  // a failing compaction has cost time but must not have changed what the
  // shard serves.
  if (Status st = faults::MaybeFail("serve.compact"); !st.ok()) {
    failed_compactions_->Increment();
    record_latency();
    return st;
  }
  if (deadline.Expired()) {
    // Injected latency (or a real stall) ran the budget out after the
    // scoring pass; publishing a result the client has given up on would
    // still be correct, but answering the truth keeps deadline semantics
    // uniform: nothing a DEADLINE_EXCEEDED response covers was published.
    failed_compactions_->Increment();
    record_latency();
    return Status::DeadlineExceeded(
        "Compact: deadline passed before publication on shard '", shard->name,
        "'");
  }

  auto snapshot = std::make_shared<ResolverSnapshot>();
  snapshot->clustering = graph::ConnectedComponents(n, edges);
  snapshot->clusters = snapshot->clustering.Groups();
  snapshot->canonical_ids = canonical;
  snapshot->threshold = threshold;
  snapshot->documents.reserve(n);
  for (int id : canonical) snapshot->documents.push_back(shard->bundles[id]);

  // Phase 3 — publish. If no new documents arrived meanwhile, the live
  // greedy partition also adopts the batch result, so subsequent greedy
  // assignments extend the compacted partition instead of the drifted one.
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    snapshot->version = shard->next_version++;
    const bool covers_all = shard->resolver->num_documents() == n;
    if (shard->log != nullptr) {
      // Durable publication happens under the shard lock so the WAL's
      // AdoptPartition record is ordered against concurrent Assign appends
      // — replay must see the partition before any later arrival.
      durability::ShardSnapshotData data;
      data.version = snapshot->version;
      data.threshold = threshold;
      data.canonical_ids.assign(canonical.begin(), canonical.end());
      const std::vector<int>& labels = snapshot->clustering.labels();
      data.labels.assign(labels.begin(), labels.end());
      if (Status st = shard->log->PublishSnapshot(data, covers_all);
          !st.ok()) {
        // Nothing acked is lost: every Assign is still in the WAL, so the
        // shard serves the new partition from memory and the next
        // compaction retries durable publication.
        failed_publishes_->Increment();
      }
    }
    if (covers_all) {
      (void)shard->resolver->AdoptPartition(snapshot->clusters);
      shard->assigns_since_compact.store(0, std::memory_order_relaxed);
    }
    shard->snapshot.store(snapshot, std::memory_order_release);
  }
  snapshot_swaps_->Increment();
  compactions_->Increment();
  record_latency();
  return Status::OK();
}

Status ResolutionService::Compact(const std::string& block,
                                  RequestDeadline deadline) {
  WEBER_ASSIGN_OR_RETURN(Shard * shard, FindShard(block));
  deadline = EffectiveDeadline(deadline);
  WEBER_RETURN_NOT_OK(AdmitWrite(shard, deadline));
  Status st = CompactShard(shard, deadline);
  FinishWrite(shard, st);
  return st;
}

Status ResolutionService::CompactAll() {
  for (const auto& shard : shards_) {
    WEBER_RETURN_NOT_OK(CompactShard(shard.get()));
  }
  return Status::OK();
}

Status ResolutionService::CompactInBackground(const std::string& block) {
  WEBER_ASSIGN_OR_RETURN(Shard * shard, FindShard(block));
  bool expected = false;
  if (!shard->compaction_inflight.compare_exchange_strong(expected, true)) {
    return Status::OK();  // already scheduled or running
  }
  auto task = [this, shard] {
    (void)CompactShard(shard);
    shard->compaction_inflight.store(false);
  };
  if (options_.overload.executor_queue_cap > 0) {
    // Bounded scheduling: a full compaction queue sheds this round rather
    // than queueing without bound. The inflight flag is released so the
    // next trigger (more assigns) retries once the pool drains.
    Result<std::future<void>> submitted = compaction_pool_->TrySubmit(task);
    if (!submitted.ok()) {
      shard->compaction_inflight.store(false);
      compaction_sheds_->Increment();
      return submitted.status();
    }
  } else {
    compaction_pool_->Submit(std::move(task));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Introspection

Result<std::shared_ptr<const ResolverSnapshot>> ResolutionService::Snapshot(
    const std::string& block) const {
  WEBER_ASSIGN_OR_RETURN(Shard * shard, FindShard(block));
  return shard->snapshot.load(std::memory_order_acquire);
}

Result<std::vector<int>> ResolutionService::DumpPartition(
    const std::string& block) const {
  WEBER_ASSIGN_OR_RETURN(Shard * shard, FindShard(block));
  std::shared_ptr<const ResolverSnapshot> snap =
      shard->snapshot.load(std::memory_order_acquire);
  std::vector<int> labels(shard->bundles.size(), -1);
  for (int pos = 0; pos < snap->num_documents(); ++pos) {
    labels[snap->canonical_ids[pos]] = snap->clustering.label(pos);
  }
  return labels;
}

// ---------------------------------------------------------------------------
// Shard migration (export / import)

void ResolutionService::RegisterMigrateMetrics() const {
  // Lazy registration keeps the metrics exposition byte-identical for
  // deployments that never migrate a shard (same pattern as `match`).
  std::call_once(migrate_metrics_once_, [this] {
    exports_.store(
        registry_.GetCounter("weber_shard_exports_total",
                             "Shard states streamed out for migration"),
        std::memory_order_release);
    imports_.store(
        registry_.GetCounter("weber_shard_imports_total",
                             "Shard states installed from a migration"),
        std::memory_order_release);
    rejected_imports_.store(
        registry_.GetCounter(
            "weber_rejected_shard_imports_total",
            "Imports refused by validation (shard state unchanged)"),
        std::memory_order_release);
  });
}

Result<ShardExport> ResolutionService::ExportShard(
    const std::string& block) const {
  WEBER_ASSIGN_OR_RETURN(Shard * shard, FindShard(block));
  WEBER_RETURN_NOT_OK(faults::MaybeFail("migrate.export"));
  RegisterMigrateMetrics();
  ShardExport out;
  // The shard lock makes (published snapshot, arrival tail) a consistent
  // cut: no assign can slip between reading the two.
  std::lock_guard<std::mutex> lock(shard->mu);
  std::shared_ptr<const ResolverSnapshot> snap =
      shard->snapshot.load(std::memory_order_acquire);
  out.snapshot.version = snap->version;
  out.snapshot.threshold = snap->threshold;
  out.snapshot.canonical_ids.assign(snap->canonical_ids.begin(),
                                    snap->canonical_ids.end());
  const std::vector<int>& labels = snap->clustering.labels();
  out.snapshot.labels.assign(labels.begin(), labels.end());
  std::vector<char> in_snapshot(shard->bundles.size(), 0);
  for (int id : snap->canonical_ids) in_snapshot[id] = 1;
  for (int id : shard->arrival_canonical) {
    if (!in_snapshot[id]) out.tail.push_back(id);
  }
  exports_.load(std::memory_order_acquire)->Increment();
  return out;
}

Result<ImportOutcome> ResolutionService::ImportShard(
    const std::string& block, const ShardExport& exported) {
  WEBER_ASSIGN_OR_RETURN(Shard * shard, FindShard(block));
  RegisterMigrateMetrics();
  auto reject = [this](Status st) -> Status {
    rejected_imports_.load(std::memory_order_acquire)->Increment();
    return st;
  };
  if (Status st = faults::MaybeFail("migrate.import"); !st.ok()) {
    return reject(st);
  }
  const durability::ShardSnapshotData& snap = exported.snapshot;
  const int block_size = static_cast<int>(shard->bundles.size());
  // Validate everything before touching any state: a refused import must
  // leave the shard exactly as it was.
  if (snap.canonical_ids.size() != snap.labels.size()) {
    return reject(Status::Corruption(
        "import: snapshot has ", snap.canonical_ids.size(),
        " canonical ids but ", snap.labels.size(), " labels"));
  }
  if (std::abs(snap.threshold - shard->resolver->threshold()) > 1e-9) {
    return reject(Status::FailedPrecondition(
        "import: shard '", shard->name, "' is calibrated at threshold ",
        shard->resolver->threshold(), " but the exported state carries ",
        snap.threshold, " — refusing to mix calibrations"));
  }
  std::vector<char> seen(static_cast<size_t>(block_size), 0);
  for (int32_t id : snap.canonical_ids) {
    if (id < 0 || id >= block_size || seen[id]) {
      return reject(Status::Corruption(
          "import: snapshot of shard '", shard->name,
          "' references invalid or repeated document ", id));
    }
    seen[id] = 1;
  }
  for (int32_t doc : exported.tail) {
    if (doc < 0 || doc >= block_size || seen[doc]) {
      return reject(Status::Corruption(
          "import: tail of shard '", shard->name,
          "' references invalid or repeated document ", doc));
    }
    seen[doc] = 1;
  }
  const std::vector<int> label_ints(snap.labels.begin(), snap.labels.end());
  const graph::Clustering clustering =
      graph::Clustering::FromLabels(label_ints);

  std::lock_guard<std::mutex> lock(shard->mu);
  // Mutation starts here. Reset keeps the calibrated threshold, so the
  // rebuilt resolver scores exactly as before.
  shard->resolver->Reset();
  shard->assigned.assign(static_cast<size_t>(block_size), 0);
  shard->arrival_canonical.clear();
  std::vector<extract::FeatureBundle> docs;
  docs.reserve(snap.canonical_ids.size());
  for (int32_t id : snap.canonical_ids) {
    shard->assigned[id] = 1;
    shard->arrival_canonical.push_back(id);
    docs.push_back(shard->bundles[id]);
  }
  WEBER_RETURN_NOT_OK(
      shard->resolver->Restore(std::move(docs), clustering.Groups()));
  for (int32_t doc : exported.tail) {
    shard->assigned[doc] = 1;
    shard->arrival_canonical.push_back(doc);
    if (shard->resolver->Add(shard->bundles[doc]) < 0) {
      return Status::Internal("import: resolver rejected tail document ",
                              doc, " on shard '", shard->name, "'");
    }
  }

  // Publish the imported snapshot at its ORIGINAL version (unlike crash
  // recovery, which mints a new one): assigns never touch a published
  // snapshot, so the destination's dump is byte-identical to the dump the
  // source would have produced before the migration.
  auto published = std::make_shared<ResolverSnapshot>();
  published->version = snap.version;
  published->threshold = snap.threshold;
  published->clustering = clustering;
  published->clusters = clustering.Groups();
  published->canonical_ids.assign(snap.canonical_ids.begin(),
                                  snap.canonical_ids.end());
  published->documents.reserve(snap.canonical_ids.size());
  for (int32_t id : snap.canonical_ids) {
    published->documents.push_back(shard->bundles[id]);
  }
  shard->snapshot.store(std::move(published), std::memory_order_release);
  shard->next_version = std::max(shard->next_version, snap.version + 1);
  shard->assigns_since_compact.store(0, std::memory_order_relaxed);

  if (shard->log != nullptr) {
    std::vector<durability::WalRecord> tail_records;
    tail_records.reserve(exported.tail.size());
    for (int32_t doc : exported.tail) {
      tail_records.push_back(durability::WalRecord::Assign(doc));
    }
    if (Status st = shard->log->ResetToImport(snap, tail_records); !st.ok()) {
      // The in-memory import stands (it is what the router will flip to);
      // surface the durability failure so the caller can decide whether a
      // non-durable destination is acceptable.
      return Status::IOError("import: shard '", shard->name,
                             "' installed in memory but durable reset ",
                             "failed: ", st.message());
    }
  }
  imports_.load(std::memory_order_acquire)->Increment();
  ImportOutcome outcome;
  outcome.version = snap.version;
  outcome.documents = static_cast<int>(shard->arrival_canonical.size());
  return outcome;
}

ServiceStats ResolutionService::Stats() const {
  ServiceStats stats;
  stats.assign = assign_latency_.Summary();
  stats.query = query_latency_.Summary();
  stats.compact = compact_latency_.Summary();
  stats.match = match_latency_.Summary();
  stats.cache = cache_->Stats();
  stats.assigns = assigns_->Value();
  stats.queries = queries_->Value();
  if (obs::Counter* matches = matches_.load(std::memory_order_acquire)) {
    stats.matches = matches->Value();
  }
  stats.compactions = compactions_->Value();
  stats.failed_compactions = failed_compactions_->Value();
  stats.failed_assigns = failed_assigns_->Value();
  stats.snapshot_swaps = snapshot_swaps_->Value();
  stats.batches_flushed = batcher_->batches_flushed();
  stats.batched_requests = batcher_->requests_flushed();
  stats.durability.enabled = !options_.durability.data_dir.empty();
  for (const auto& shard : shards_) {
    if (shard->log == nullptr) continue;
    stats.durability.wal_appends += shard->log->wal_appends();
    stats.durability.wal_syncs += shard->log->wal_syncs();
    stats.durability.wal_bytes +=
        static_cast<long long>(shard->log->wal_bytes());
    stats.durability.snapshots_written += shard->log->snapshots_written();
    stats.durability.wal_truncations += shard->log->wal_truncations();
  }
  stats.durability.failed_publishes = failed_publishes_->Value();
  stats.durability.recovered_docs = recovered_docs_;
  stats.durability.recovered_snapshots = recovered_snapshots_;
  stats.overload.configured = OverloadConfigured();
  stats.overload.batcher_sheds = batcher_->rejected();
  stats.overload.budget_sheds = budget_sheds_->Value();
  stats.overload.compaction_sheds = compaction_sheds_->Value();
  stats.overload.breaker_sheds = breaker_sheds_->Value();
  stats.overload.deadline_exceeded = deadline_exceeded_->Value();
  for (const auto& shard : shards_) {
    stats.overload.breaker_trips += shard->breaker.trips();
    stats.overload.breaker_recoveries += shard->breaker.recoveries();
    if (shard->breaker.state() == CircuitBreaker::State::kOpen) {
      ++stats.overload.breakers_open;
    }
  }
  // Degradation ledger: keep the serialized RunHealth shape stable (no new
  // fields) by folding overload events into the existing counters —
  // deadline blowouts are deadline hits; a breaker trip means the shard
  // serves stale snapshots, i.e. degraded, just like a failed compaction.
  stats.health.degraded_blocks =
      stats.failed_compactions + stats.overload.breaker_trips;
  stats.health.deadline_hits = stats.overload.deadline_exceeded;
  stats.health.Merge(recovery_health_);
  return stats;
}

void ResolutionService::WriteStatsJson(std::ostream& os) const {
  WriteStatsJson(os, nullptr);
}

void ResolutionService::WriteStatsJson(
    std::ostream& os, const std::function<void(JsonWriter&)>& extra) const {
  WriteStatsJson(os, extra, /*shard_detail=*/false);
}

void ResolutionService::WriteStatsJson(
    std::ostream& os, const std::function<void(JsonWriter&)>& extra,
    bool shard_detail) const {
  const ServiceStats stats = Stats();
  JsonWriter json(os);
  json.BeginObject();
  auto endpoint = [&json](const char* name, const EndpointLatency& e) {
    json.Key(name).BeginObject();
    json.Key("count").Number(e.count);
    json.Key("mean_ms").Number(e.mean_ms);
    json.Key("p50_ms").Number(e.p50_ms);
    json.Key("p95_ms").Number(e.p95_ms);
    json.Key("p99_ms").Number(e.p99_ms);
    json.EndObject();
  };
  json.Key("endpoints").BeginObject();
  endpoint("assign", stats.assign);
  endpoint("query", stats.query);
  endpoint("compact", stats.compact);
  // Gated on use so the stats line is byte-identical for deployments that
  // never issue a match (mirrors the overload section below).
  if (stats.matches > 0) endpoint("match", stats.match);
  json.EndObject();
  json.Key("cache").BeginObject();
  json.Key("hits").Number(stats.cache.hits);
  json.Key("misses").Number(stats.cache.misses);
  json.Key("evictions").Number(stats.cache.evictions);
  json.Key("entries").Number(stats.cache.entries);
  json.Key("hit_rate").Number(stats.cache.HitRate());
  json.EndObject();
  json.Key("counters").BeginObject();
  json.Key("assigns").Number(stats.assigns);
  json.Key("queries").Number(stats.queries);
  if (stats.matches > 0) json.Key("matches").Number(stats.matches);
  json.Key("compactions").Number(stats.compactions);
  json.Key("failed_compactions").Number(stats.failed_compactions);
  json.Key("failed_assigns").Number(stats.failed_assigns);
  json.Key("snapshot_swaps").Number(stats.snapshot_swaps);
  json.Key("batches_flushed").Number(stats.batches_flushed);
  json.Key("batched_requests").Number(stats.batched_requests);
  json.EndObject();
  json.Key("durability").BeginObject();
  json.Key("enabled").Bool(stats.durability.enabled);
  json.Key("fsync").String(
      durability::FsyncPolicyName(options_.durability.fsync));
  json.Key("wal_appends").Number(stats.durability.wal_appends);
  json.Key("wal_syncs").Number(stats.durability.wal_syncs);
  json.Key("wal_bytes").Number(stats.durability.wal_bytes);
  json.Key("snapshots_written").Number(stats.durability.snapshots_written);
  json.Key("wal_truncations").Number(stats.durability.wal_truncations);
  json.Key("failed_publishes").Number(stats.durability.failed_publishes);
  json.Key("recovered_docs").Number(stats.durability.recovered_docs);
  json.Key("recovered_snapshots")
      .Number(stats.durability.recovered_snapshots);
  json.EndObject();
  // Gated so the stats line stays byte-identical to an overload-free build
  // when no overload feature is configured and none has fired.
  if (stats.overload.configured || stats.overload.Any()) {
    json.Key("overload").BeginObject();
    json.Key("batcher_sheds").Number(stats.overload.batcher_sheds);
    json.Key("budget_sheds").Number(stats.overload.budget_sheds);
    json.Key("compaction_sheds").Number(stats.overload.compaction_sheds);
    json.Key("breaker_sheds").Number(stats.overload.breaker_sheds);
    json.Key("total_sheds").Number(stats.overload.TotalSheds());
    json.Key("deadline_exceeded").Number(stats.overload.deadline_exceeded);
    json.Key("breaker_trips").Number(stats.overload.breaker_trips);
    json.Key("breaker_recoveries").Number(stats.overload.breaker_recoveries);
    json.Key("breakers_open").Number(stats.overload.breakers_open);
    json.EndObject();
  }
  json.Key("shards").BeginArray();
  const bool breakers_enabled =
      options_.overload.breaker_failure_threshold > 0;
  for (const auto& shard : shards_) {
    std::shared_ptr<const ResolverSnapshot> snap =
        shard->snapshot.load(std::memory_order_acquire);
    json.BeginObject();
    json.Key("name").String(shard->name);
    json.Key("documents").Number(static_cast<int>(shard->bundles.size()));
    json.Key("served").Number(snap->num_documents());
    json.Key("clusters").Number(snap->clustering.num_clusters());
    json.Key("snapshot_version").Number(
        static_cast<long long>(snap->version));
    // Planner input, emitted only on request (`stats shards`) so the plain
    // stats line stays byte-identical.
    if (shard_detail) {
      json.Key("wal_bytes").Number(static_cast<long long>(
          shard->log ? shard->log->wal_bytes() : 0));
    }
    if (breakers_enabled) {
      json.Key("breaker").String(BreakerStateName(shard->breaker.state()));
    }
    json.EndObject();
  }
  json.EndArray();
  if (extra) extra(json);
  json.Key("health");
  core::WriteRunHealthJson(json, stats.health);
  json.EndObject();
}

}  // namespace serve
}  // namespace weber

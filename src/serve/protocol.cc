#include "serve/protocol.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>

#include "common/crc32c.h"
#include "common/string_util.h"

namespace weber {
namespace serve {

namespace {

Result<int> ParseDoc(const std::string& token) {
  int value = 0;
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size() || value < 0) {
    return Status::InvalidArgument("bad document id '", token, "'");
  }
  return value;
}

bool IsDeadlineToken(const std::string& token) {
  if (token.size() != 8) return false;
  const char* expect = "deadline";
  for (size_t i = 0; i < 8; ++i) {
    const char c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(token[i])));
    if (c != expect[i]) return false;
  }
  return true;
}

}  // namespace

Result<Request> ParseRequest(const std::string& line) {
  // `import` is the one verb that legitimately carries bulk data (a
  // hex-encoded shard) and gets a larger budget; everything else keeps
  // the tight cap.
  const size_t cap = line.rfind("import ", 0) == 0 ? kMaxImportLineBytes
                                                   : kMaxRequestLineBytes;
  if (line.size() > cap) {
    return Status::InvalidArgument("request line of ", line.size(),
                                   " bytes exceeds the ", cap, "-byte cap");
  }
  if (line.find('\0') != std::string::npos) {
    return Status::InvalidArgument("request line contains a NUL byte");
  }
  std::vector<std::string> tokens = SplitWhitespace(line);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty request");
  }
  Request request;
  // Peel an optional trailing "deadline <ms>" pair off before the verb
  // arity checks, so every deadline-capable verb gets it for free.
  if (tokens.size() >= 2 && IsDeadlineToken(tokens[tokens.size() - 2])) {
    double ms = 0.0;
    if (!ParseDouble(tokens.back(), &ms) || ms <= 0.0) {
      return Status::InvalidArgument("bad deadline '", tokens.back(),
                                     "' (want a positive millisecond count)");
    }
    request.deadline_ms = ms;
    tokens.resize(tokens.size() - 2);
    if (tokens.empty()) {
      return Status::InvalidArgument("deadline without a request");
    }
  }
  const std::string& verb = tokens[0];
  auto need = [&](size_t n) -> Status {
    if (tokens.size() != n) {
      return Status::InvalidArgument("'", verb, "' expects ", n - 1,
                                     " argument(s), got ", tokens.size() - 1);
    }
    return Status::OK();
  };
  // Only verbs that do work accept a deadline; control verbs reject it so
  // a typo'd request fails loudly instead of silently dropping the token.
  auto no_deadline = [&]() -> Status {
    if (request.deadline_ms > 0.0) {
      return Status::InvalidArgument("'", verb, "' does not take a deadline");
    }
    return Status::OK();
  };
  if (verb == "assign" || verb == "query") {
    WEBER_RETURN_NOT_OK(need(3));
    request.op =
        verb == "assign" ? Request::Op::kAssign : Request::Op::kQuery;
    request.block = tokens[1];
    WEBER_ASSIGN_OR_RETURN(request.doc, ParseDoc(tokens[2]));
    return request;
  }
  if (verb == "match") {
    if (tokens.size() < 3) {
      return Status::InvalidArgument(
          "'match' expects a block and at least one document id");
    }
    request.op = Request::Op::kMatch;
    request.block = tokens[1];
    for (size_t i = 2; i < tokens.size(); ++i) {
      WEBER_ASSIGN_OR_RETURN(int doc, ParseDoc(tokens[i]));
      request.docs.push_back(doc);
    }
    return request;
  }
  if (verb == "compact") {
    if (tokens.size() == 1) {
      request.op = Request::Op::kCompactAll;
      return request;
    }
    WEBER_RETURN_NOT_OK(need(2));
    request.op = Request::Op::kCompact;
    request.block = tokens[1];
    return request;
  }
  if (verb == "dump") {
    WEBER_RETURN_NOT_OK(no_deadline());
    WEBER_RETURN_NOT_OK(need(2));
    request.op = Request::Op::kDump;
    request.block = tokens[1];
    return request;
  }
  if (verb == "stats") {
    WEBER_RETURN_NOT_OK(no_deadline());
    if (tokens.size() == 2 && tokens[1] == "shards") {
      request.shard_detail = true;
    } else {
      WEBER_RETURN_NOT_OK(need(1));
    }
    request.op = Request::Op::kStats;
    return request;
  }
  if (verb == "metrics") {
    WEBER_RETURN_NOT_OK(no_deadline());
    WEBER_RETURN_NOT_OK(need(1));
    request.op = Request::Op::kMetrics;
    return request;
  }
  if (verb == "export") {
    WEBER_RETURN_NOT_OK(no_deadline());
    WEBER_RETURN_NOT_OK(need(2));
    request.op = Request::Op::kExport;
    request.block = tokens[1];
    return request;
  }
  if (verb == "import") {
    WEBER_RETURN_NOT_OK(no_deadline());
    WEBER_RETURN_NOT_OK(need(4));
    request.op = Request::Op::kImport;
    request.block = tokens[1];
    long long bytes = 0;
    auto [ptr, ec] = std::from_chars(
        tokens[2].data(), tokens[2].data() + tokens[2].size(), bytes);
    if (ec != std::errc() || ptr != tokens[2].data() + tokens[2].size() ||
        bytes <= 0) {
      return Status::InvalidArgument("bad import byte count '", tokens[2],
                                     "'");
    }
    WEBER_ASSIGN_OR_RETURN(request.blob, HexDecode(tokens[3]));
    if (request.blob.size() != static_cast<size_t>(bytes)) {
      return Status::InvalidArgument(
          "import declares ", bytes, " bytes but the blob decodes to ",
          request.blob.size());
    }
    return request;
  }
  if (verb == "migrate") {
    WEBER_RETURN_NOT_OK(no_deadline());
    WEBER_RETURN_NOT_OK(need(3));
    request.op = Request::Op::kMigrate;
    request.block = tokens[1];
    request.endpoint = tokens[2];
    return request;
  }
  if (verb == "rebalance") {
    WEBER_RETURN_NOT_OK(no_deadline());
    if (tokens.size() < 2) {
      return Status::InvalidArgument(
          "'rebalance' expects a backend list, 'status', or 'abort'");
    }
    request.op = Request::Op::kRebalance;
    if (tokens.size() == 2 &&
        (tokens[1] == "status" || tokens[1] == "abort")) {
      request.subcommand = tokens[1];
      return request;
    }
    for (size_t i = 1; i < tokens.size(); ++i) {
      // Real endpoints always carry a port; a colon-free token here is a
      // typo'd subcommand, not a backend.
      if (tokens[i].find(':') == std::string::npos) {
        return Status::InvalidArgument("'", tokens[i],
                                       "' is not a host:port endpoint");
      }
      request.endpoints.push_back(tokens[i]);
    }
    return request;
  }
  if (verb == "drain") {
    WEBER_RETURN_NOT_OK(no_deadline());
    WEBER_RETURN_NOT_OK(need(2));
    request.op = Request::Op::kDrain;
    request.endpoint = tokens[1];
    return request;
  }
  if (verb == "ping") {
    WEBER_RETURN_NOT_OK(no_deadline());
    WEBER_RETURN_NOT_OK(need(1));
    request.op = Request::Op::kPing;
    return request;
  }
  if (verb == "quit") {
    WEBER_RETURN_NOT_OK(no_deadline());
    WEBER_RETURN_NOT_OK(need(1));
    request.op = Request::Op::kQuit;
    return request;
  }
  return Status::InvalidArgument("unknown request '", verb, "'");
}

std::string FormatRequest(const Request& request) {
  std::string line;
  switch (request.op) {
    case Request::Op::kAssign:
      line = "assign " + request.block + ' ' + std::to_string(request.doc);
      break;
    case Request::Op::kQuery:
      line = "query " + request.block + ' ' + std::to_string(request.doc);
      break;
    case Request::Op::kMatch:
      line = "match " + request.block;
      for (int doc : request.docs) {
        line += ' ';
        line += std::to_string(doc);
      }
      break;
    case Request::Op::kCompact:
      line = "compact " + request.block;
      break;
    case Request::Op::kCompactAll:
      line = "compact";
      break;
    case Request::Op::kDump:
      line = "dump " + request.block;
      break;
    case Request::Op::kStats:
      line = request.shard_detail ? "stats shards" : "stats";
      break;
    case Request::Op::kMetrics:
      line = "metrics";
      break;
    case Request::Op::kExport:
      line = "export " + request.block;
      break;
    case Request::Op::kImport:
      line = "import " + request.block + ' ' +
             std::to_string(request.blob.size()) + ' ' +
             HexEncode(request.blob);
      break;
    case Request::Op::kMigrate:
      line = "migrate " + request.block + ' ' + request.endpoint;
      break;
    case Request::Op::kRebalance:
      line = "rebalance";
      if (!request.subcommand.empty()) {
        line += ' ';
        line += request.subcommand;
      }
      for (const std::string& endpoint : request.endpoints) {
        line += ' ';
        line += endpoint;
      }
      break;
    case Request::Op::kDrain:
      line = "drain " + request.endpoint;
      break;
    case Request::Op::kPing:
      line = "ping";
      break;
    case Request::Op::kQuit:
      line = "quit";
      break;
  }
  if (request.deadline_ms > 0.0) {
    line += " deadline ";
    line += FormatDouble(request.deadline_ms, 3);
  }
  return line;
}

Result<Response> ParseResponse(const std::string& line) {
  if (line.empty()) {
    return Status::Corruption("empty response line");
  }
  if (line.size() > kMaxResponseLineBytes) {
    return Status::Corruption("response line of ", line.size(),
                              " bytes exceeds the ", kMaxResponseLineBytes,
                              "-byte cap");
  }
  Response response;
  if (line == "ok") {
    response.kind = Response::Kind::kOk;
    return response;
  }
  if (line.rfind("ok ", 0) == 0) {
    response.kind = Response::Kind::kOk;
    response.body = line.substr(3);
    return response;
  }
  if (line == "DEADLINE_EXCEEDED") {
    response.kind = Response::Kind::kDeadlineExceeded;
    response.code = StatusCode::kDeadlineExceeded;
    return response;
  }
  if (line.rfind("OVERLOADED", 0) == 0) {
    double hint = 0.0;
    const std::vector<std::string> tokens = SplitWhitespace(line);
    if (tokens.size() != 2 || !ParseDouble(tokens[1], &hint) || hint <= 0.0) {
      return Status::Corruption("malformed OVERLOADED response '", line, "'");
    }
    response.kind = Response::Kind::kOverloaded;
    response.code = StatusCode::kUnavailable;
    response.retry_after_ms = std::max(1.0, hint);
    return response;
  }
  if (line.rfind("err ", 0) == 0) {
    const std::string rest = line.substr(4);
    const size_t space = rest.find(' ');
    const std::string code_word =
        space == std::string::npos ? rest : rest.substr(0, space);
    if (code_word.empty()) {
      return Status::Corruption("err response without a status code: '", line,
                                "'");
    }
    response.kind = Response::Kind::kError;
    // Map the code word back through the StatusCode names; an unknown word
    // still parses (the server may be newer) but lands on kInternal.
    response.code = StatusCode::kInternal;
    for (int c = 0; c <= static_cast<int>(StatusCode::kUnavailable); ++c) {
      if (StatusCodeToString(static_cast<StatusCode>(c)) == code_word) {
        response.code = static_cast<StatusCode>(c);
        break;
      }
    }
    response.message =
        space == std::string::npos ? std::string() : rest.substr(space + 1);
    return response;
  }
  return Status::Corruption("unknown response status word in '",
                            line.substr(0, 64), "'");
}

Result<long long> ParseMetricsHeader(const std::string& header) {
  WEBER_ASSIGN_OR_RETURN(Response response, ParseResponse(header));
  if (!response.ok()) {
    return Status::Corruption("metrics request failed: ", header);
  }
  long long n = 0;
  auto [ptr, ec] = std::from_chars(
      response.body.data(), response.body.data() + response.body.size(), n);
  if (ec != std::errc() || ptr != response.body.data() + response.body.size() ||
      n < 0) {
    return Status::Corruption("bad metrics line count '", response.body, "'");
  }
  if (n > kMaxMetricsPayloadLines) {
    return Status::Corruption("metrics header announces ", n,
                              " lines, over the ", kMaxMetricsPayloadLines,
                              "-line cap");
  }
  return n;
}

Result<std::vector<std::string>> ReadMetricsPayload(
    long long n, const std::function<Result<std::string>()>& read_line) {
  if (n < 0 || n > kMaxMetricsPayloadLines) {
    return Status::Corruption("metrics payload of ", n,
                              " lines out of range");
  }
  std::vector<std::string> lines;
  lines.reserve(static_cast<size_t>(n));
  for (long long i = 0; i < n; ++i) {
    Result<std::string> line = read_line();
    if (!line.ok()) {
      return Status::Corruption("truncated metrics payload: got ", i, " of ",
                                n, " lines (", line.status().message(), ")");
    }
    lines.push_back(std::move(line).ValueOrDie());
  }
  return lines;
}

Result<long long> ParseExportHeader(const std::string& header) {
  WEBER_ASSIGN_OR_RETURN(Response response, ParseResponse(header));
  if (!response.ok()) {
    return Status::Corruption("export request failed: ", header);
  }
  long long n = 0;
  auto [ptr, ec] = std::from_chars(
      response.body.data(), response.body.data() + response.body.size(), n);
  if (ec != std::errc() || ptr != response.body.data() + response.body.size() ||
      n < 0) {
    return Status::Corruption("bad export frame count '", response.body, "'");
  }
  if (n > kMaxExportFrames) {
    return Status::Corruption("export header announces ", n,
                              " frames, over the ", kMaxExportFrames,
                              "-frame cap");
  }
  return n;
}

std::string HexEncode(const std::string& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out += kDigits[c >> 4];
    out += kDigits[c & 0xF];
  }
  return out;
}

namespace {

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Result<std::string> HexDecode(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex blob has odd length ", hex.size());
  }
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = HexNibble(hex[i]);
    const int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex digit at offset ", i);
    }
    out += static_cast<char>((hi << 4) | lo);
  }
  return out;
}

std::string FormatExportFrame(const std::string& payload) {
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  std::string line = std::to_string(payload.size());
  line += ' ';
  line += std::to_string(crc);
  line += ' ';
  line += HexEncode(payload);
  return line;
}

Result<std::string> ParseExportFrame(const std::string& line) {
  std::vector<std::string> tokens = SplitWhitespace(line);
  // An empty payload hex-encodes to nothing, so its frame carries only the
  // two numeric tokens; re-append the empty hex token explicitly.
  if (tokens.size() == 2 && tokens[0] == "0") tokens.emplace_back();
  if (tokens.size() != 3) {
    return Status::Corruption("export frame wants 3 tokens, got ",
                              tokens.size());
  }
  unsigned long long len = 0;
  auto [lp, lec] = std::from_chars(
      tokens[0].data(), tokens[0].data() + tokens[0].size(), len);
  if (lec != std::errc() || lp != tokens[0].data() + tokens[0].size() ||
      len > kMaxExportFrameBytes) {
    return Status::Corruption("bad export frame length '", tokens[0], "'");
  }
  unsigned long long declared_crc = 0;
  auto [cp, cec] = std::from_chars(
      tokens[1].data(), tokens[1].data() + tokens[1].size(), declared_crc);
  if (cec != std::errc() || cp != tokens[1].data() + tokens[1].size() ||
      declared_crc > 0xFFFFFFFFull) {
    return Status::Corruption("bad export frame checksum '", tokens[1], "'");
  }
  WEBER_ASSIGN_OR_RETURN(std::string payload, HexDecode(tokens[2]));
  if (payload.size() != len) {
    return Status::Corruption("export frame declares ", len,
                              " bytes but carries ", payload.size());
  }
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  if (crc != static_cast<uint32_t>(declared_crc)) {
    return Status::Corruption("export frame checksum mismatch (declared ",
                              declared_crc, ", computed ", crc, ")");
  }
  return payload;
}

namespace {

void PutU32(std::string& out, uint32_t v) {
  out += static_cast<char>(v & 0xFF);
  out += static_cast<char>((v >> 8) & 0xFF);
  out += static_cast<char>((v >> 16) & 0xFF);
  out += static_cast<char>((v >> 24) & 0xFF);
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

void AppendImportFrame(std::string& blob, const std::string& payload) {
  PutU32(blob, static_cast<uint32_t>(payload.size()));
  PutU32(blob, Crc32c(payload.data(), payload.size()));
  blob += payload;
}

Result<std::vector<std::string>> SplitImportBlob(const std::string& blob) {
  std::vector<std::string> frames;
  size_t pos = 0;
  const auto* bytes = reinterpret_cast<const unsigned char*>(blob.data());
  while (pos < blob.size()) {
    if (blob.size() - pos < 8) {
      return Status::Corruption("torn import frame header at offset ", pos);
    }
    const uint32_t len = GetU32(bytes + pos);
    const uint32_t declared_crc = GetU32(bytes + pos + 4);
    pos += 8;
    if (len > kMaxExportFrameBytes) {
      return Status::Corruption("import frame of ", len, " bytes exceeds the ",
                                kMaxExportFrameBytes, "-byte cap");
    }
    if (blob.size() - pos < len) {
      return Status::Corruption("torn import frame payload at offset ", pos,
                                " (want ", len, " bytes, have ",
                                blob.size() - pos, ")");
    }
    const uint32_t crc = Crc32c(blob.data() + pos, len);
    if (crc != declared_crc) {
      return Status::Corruption("import frame checksum mismatch at offset ",
                                pos, " (declared ", declared_crc,
                                ", computed ", crc, ")");
    }
    frames.emplace_back(blob, pos, len);
    pos += len;
  }
  if (frames.empty()) {
    return Status::Corruption("import blob carries no frames");
  }
  return frames;
}

Result<std::vector<int>> ParseDumpResponse(const std::string& response) {
  const std::vector<std::string> tokens = SplitWhitespace(response);
  if (tokens.size() < 2 || tokens[0] != "ok") {
    return Status::Corruption("bad dump response '",
                              response.substr(0, 128), "'");
  }
  int n = 0;
  if (!ParseInt(tokens[1], &n) || n < 0 ||
      tokens.size() != static_cast<size_t>(n) + 2) {
    return Status::Corruption("dump token count mismatch");
  }
  std::vector<int> labels(static_cast<size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    const std::string& pair = tokens[static_cast<size_t>(i) + 2];
    const size_t colon = pair.find(':');
    if (colon == std::string::npos) {
      return Status::Corruption("bad dump pair '", pair, "'");
    }
    int doc = -1;
    int label = 0;
    if (!ParseInt(pair.substr(0, colon), &doc) ||
        !ParseInt(pair.substr(colon + 1), &label) || doc < 0 || doc >= n) {
      return Status::Corruption("bad dump pair '", pair, "'");
    }
    labels[static_cast<size_t>(doc)] = label;
  }
  return labels;
}

Result<std::vector<std::pair<int, int>>> ParseMatchResponse(
    const std::string& response) {
  const std::vector<std::string> tokens = SplitWhitespace(response);
  if (tokens.size() < 2 || tokens[0] != "ok") {
    return Status::Corruption("bad match response '",
                              response.substr(0, 128), "'");
  }
  int n = 0;
  if (!ParseInt(tokens[1], &n) || n < 0 ||
      tokens.size() != static_cast<size_t>(n) + 2) {
    return Status::Corruption("match token count mismatch");
  }
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::string& pair = tokens[static_cast<size_t>(i) + 2];
    const size_t colon = pair.find(':');
    if (colon == std::string::npos) {
      return Status::Corruption("bad match pair '", pair, "'");
    }
    int doc = -1;
    int cluster = 0;
    if (!ParseInt(pair.substr(0, colon), &doc) ||
        !ParseInt(pair.substr(colon + 1), &cluster) || doc < 0 ||
        cluster < -1) {
      return Status::Corruption("bad match pair '", pair, "'");
    }
    pairs.push_back({doc, cluster});
  }
  return pairs;
}

std::string FormatError(const Status& status) {
  std::string message = status.message();
  for (char& c : message) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  std::string out = "err ";
  out += StatusCodeToString(status.code());
  out += ' ';
  out += message;
  return out;
}

std::string FormatOverloaded(double retry_after_ms) {
  const long long ms = std::max(
      1ll, static_cast<long long>(std::llround(retry_after_ms)));
  return "OVERLOADED " + std::to_string(ms);
}

std::string FormatDeadlineExceeded() { return "DEADLINE_EXCEEDED"; }

std::string FormatFailure(const Status& status, double retry_after_ms) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
      return FormatOverloaded(retry_after_ms);
    case StatusCode::kDeadlineExceeded:
      return FormatDeadlineExceeded();
    default:
      return FormatError(status);
  }
}

}  // namespace serve
}  // namespace weber

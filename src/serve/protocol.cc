#include "serve/protocol.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>

#include "common/string_util.h"

namespace weber {
namespace serve {

namespace {

Result<int> ParseDoc(const std::string& token) {
  int value = 0;
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size() || value < 0) {
    return Status::InvalidArgument("bad document id '", token, "'");
  }
  return value;
}

bool IsDeadlineToken(const std::string& token) {
  if (token.size() != 8) return false;
  const char* expect = "deadline";
  for (size_t i = 0; i < 8; ++i) {
    const char c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(token[i])));
    if (c != expect[i]) return false;
  }
  return true;
}

}  // namespace

Result<Request> ParseRequest(const std::string& line) {
  if (line.size() > kMaxRequestLineBytes) {
    return Status::InvalidArgument("request line of ", line.size(),
                                   " bytes exceeds the ",
                                   kMaxRequestLineBytes, "-byte cap");
  }
  if (line.find('\0') != std::string::npos) {
    return Status::InvalidArgument("request line contains a NUL byte");
  }
  std::vector<std::string> tokens = SplitWhitespace(line);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty request");
  }
  Request request;
  // Peel an optional trailing "deadline <ms>" pair off before the verb
  // arity checks, so every deadline-capable verb gets it for free.
  if (tokens.size() >= 2 && IsDeadlineToken(tokens[tokens.size() - 2])) {
    double ms = 0.0;
    if (!ParseDouble(tokens.back(), &ms) || ms <= 0.0) {
      return Status::InvalidArgument("bad deadline '", tokens.back(),
                                     "' (want a positive millisecond count)");
    }
    request.deadline_ms = ms;
    tokens.resize(tokens.size() - 2);
    if (tokens.empty()) {
      return Status::InvalidArgument("deadline without a request");
    }
  }
  const std::string& verb = tokens[0];
  auto need = [&](size_t n) -> Status {
    if (tokens.size() != n) {
      return Status::InvalidArgument("'", verb, "' expects ", n - 1,
                                     " argument(s), got ", tokens.size() - 1);
    }
    return Status::OK();
  };
  // Only verbs that do work accept a deadline; control verbs reject it so
  // a typo'd request fails loudly instead of silently dropping the token.
  auto no_deadline = [&]() -> Status {
    if (request.deadline_ms > 0.0) {
      return Status::InvalidArgument("'", verb, "' does not take a deadline");
    }
    return Status::OK();
  };
  if (verb == "assign" || verb == "query") {
    WEBER_RETURN_NOT_OK(need(3));
    request.op =
        verb == "assign" ? Request::Op::kAssign : Request::Op::kQuery;
    request.block = tokens[1];
    WEBER_ASSIGN_OR_RETURN(request.doc, ParseDoc(tokens[2]));
    return request;
  }
  if (verb == "compact") {
    if (tokens.size() == 1) {
      request.op = Request::Op::kCompactAll;
      return request;
    }
    WEBER_RETURN_NOT_OK(need(2));
    request.op = Request::Op::kCompact;
    request.block = tokens[1];
    return request;
  }
  if (verb == "dump") {
    WEBER_RETURN_NOT_OK(no_deadline());
    WEBER_RETURN_NOT_OK(need(2));
    request.op = Request::Op::kDump;
    request.block = tokens[1];
    return request;
  }
  if (verb == "stats") {
    WEBER_RETURN_NOT_OK(no_deadline());
    WEBER_RETURN_NOT_OK(need(1));
    request.op = Request::Op::kStats;
    return request;
  }
  if (verb == "metrics") {
    WEBER_RETURN_NOT_OK(no_deadline());
    WEBER_RETURN_NOT_OK(need(1));
    request.op = Request::Op::kMetrics;
    return request;
  }
  if (verb == "ping") {
    WEBER_RETURN_NOT_OK(no_deadline());
    WEBER_RETURN_NOT_OK(need(1));
    request.op = Request::Op::kPing;
    return request;
  }
  if (verb == "quit") {
    WEBER_RETURN_NOT_OK(no_deadline());
    WEBER_RETURN_NOT_OK(need(1));
    request.op = Request::Op::kQuit;
    return request;
  }
  return Status::InvalidArgument("unknown request '", verb, "'");
}

std::string FormatError(const Status& status) {
  std::string message = status.message();
  for (char& c : message) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  std::string out = "err ";
  out += StatusCodeToString(status.code());
  out += ' ';
  out += message;
  return out;
}

std::string FormatOverloaded(double retry_after_ms) {
  const long long ms = std::max(
      1ll, static_cast<long long>(std::llround(retry_after_ms)));
  return "OVERLOADED " + std::to_string(ms);
}

std::string FormatDeadlineExceeded() { return "DEADLINE_EXCEEDED"; }

std::string FormatFailure(const Status& status, double retry_after_ms) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
      return FormatOverloaded(retry_after_ms);
    case StatusCode::kDeadlineExceeded:
      return FormatDeadlineExceeded();
    default:
      return FormatError(status);
  }
}

}  // namespace serve
}  // namespace weber

#include "serve/protocol.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>

#include "common/string_util.h"

namespace weber {
namespace serve {

namespace {

Result<int> ParseDoc(const std::string& token) {
  int value = 0;
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size() || value < 0) {
    return Status::InvalidArgument("bad document id '", token, "'");
  }
  return value;
}

bool IsDeadlineToken(const std::string& token) {
  if (token.size() != 8) return false;
  const char* expect = "deadline";
  for (size_t i = 0; i < 8; ++i) {
    const char c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(token[i])));
    if (c != expect[i]) return false;
  }
  return true;
}

}  // namespace

Result<Request> ParseRequest(const std::string& line) {
  if (line.size() > kMaxRequestLineBytes) {
    return Status::InvalidArgument("request line of ", line.size(),
                                   " bytes exceeds the ",
                                   kMaxRequestLineBytes, "-byte cap");
  }
  if (line.find('\0') != std::string::npos) {
    return Status::InvalidArgument("request line contains a NUL byte");
  }
  std::vector<std::string> tokens = SplitWhitespace(line);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty request");
  }
  Request request;
  // Peel an optional trailing "deadline <ms>" pair off before the verb
  // arity checks, so every deadline-capable verb gets it for free.
  if (tokens.size() >= 2 && IsDeadlineToken(tokens[tokens.size() - 2])) {
    double ms = 0.0;
    if (!ParseDouble(tokens.back(), &ms) || ms <= 0.0) {
      return Status::InvalidArgument("bad deadline '", tokens.back(),
                                     "' (want a positive millisecond count)");
    }
    request.deadline_ms = ms;
    tokens.resize(tokens.size() - 2);
    if (tokens.empty()) {
      return Status::InvalidArgument("deadline without a request");
    }
  }
  const std::string& verb = tokens[0];
  auto need = [&](size_t n) -> Status {
    if (tokens.size() != n) {
      return Status::InvalidArgument("'", verb, "' expects ", n - 1,
                                     " argument(s), got ", tokens.size() - 1);
    }
    return Status::OK();
  };
  // Only verbs that do work accept a deadline; control verbs reject it so
  // a typo'd request fails loudly instead of silently dropping the token.
  auto no_deadline = [&]() -> Status {
    if (request.deadline_ms > 0.0) {
      return Status::InvalidArgument("'", verb, "' does not take a deadline");
    }
    return Status::OK();
  };
  if (verb == "assign" || verb == "query") {
    WEBER_RETURN_NOT_OK(need(3));
    request.op =
        verb == "assign" ? Request::Op::kAssign : Request::Op::kQuery;
    request.block = tokens[1];
    WEBER_ASSIGN_OR_RETURN(request.doc, ParseDoc(tokens[2]));
    return request;
  }
  if (verb == "match") {
    if (tokens.size() < 3) {
      return Status::InvalidArgument(
          "'match' expects a block and at least one document id");
    }
    request.op = Request::Op::kMatch;
    request.block = tokens[1];
    for (size_t i = 2; i < tokens.size(); ++i) {
      WEBER_ASSIGN_OR_RETURN(int doc, ParseDoc(tokens[i]));
      request.docs.push_back(doc);
    }
    return request;
  }
  if (verb == "compact") {
    if (tokens.size() == 1) {
      request.op = Request::Op::kCompactAll;
      return request;
    }
    WEBER_RETURN_NOT_OK(need(2));
    request.op = Request::Op::kCompact;
    request.block = tokens[1];
    return request;
  }
  if (verb == "dump") {
    WEBER_RETURN_NOT_OK(no_deadline());
    WEBER_RETURN_NOT_OK(need(2));
    request.op = Request::Op::kDump;
    request.block = tokens[1];
    return request;
  }
  if (verb == "stats") {
    WEBER_RETURN_NOT_OK(no_deadline());
    WEBER_RETURN_NOT_OK(need(1));
    request.op = Request::Op::kStats;
    return request;
  }
  if (verb == "metrics") {
    WEBER_RETURN_NOT_OK(no_deadline());
    WEBER_RETURN_NOT_OK(need(1));
    request.op = Request::Op::kMetrics;
    return request;
  }
  if (verb == "ping") {
    WEBER_RETURN_NOT_OK(no_deadline());
    WEBER_RETURN_NOT_OK(need(1));
    request.op = Request::Op::kPing;
    return request;
  }
  if (verb == "quit") {
    WEBER_RETURN_NOT_OK(no_deadline());
    WEBER_RETURN_NOT_OK(need(1));
    request.op = Request::Op::kQuit;
    return request;
  }
  return Status::InvalidArgument("unknown request '", verb, "'");
}

std::string FormatRequest(const Request& request) {
  std::string line;
  switch (request.op) {
    case Request::Op::kAssign:
      line = "assign " + request.block + ' ' + std::to_string(request.doc);
      break;
    case Request::Op::kQuery:
      line = "query " + request.block + ' ' + std::to_string(request.doc);
      break;
    case Request::Op::kMatch:
      line = "match " + request.block;
      for (int doc : request.docs) {
        line += ' ';
        line += std::to_string(doc);
      }
      break;
    case Request::Op::kCompact:
      line = "compact " + request.block;
      break;
    case Request::Op::kCompactAll:
      line = "compact";
      break;
    case Request::Op::kDump:
      line = "dump " + request.block;
      break;
    case Request::Op::kStats:
      line = "stats";
      break;
    case Request::Op::kMetrics:
      line = "metrics";
      break;
    case Request::Op::kPing:
      line = "ping";
      break;
    case Request::Op::kQuit:
      line = "quit";
      break;
  }
  if (request.deadline_ms > 0.0) {
    line += " deadline ";
    line += FormatDouble(request.deadline_ms, 3);
  }
  return line;
}

Result<Response> ParseResponse(const std::string& line) {
  if (line.empty()) {
    return Status::Corruption("empty response line");
  }
  if (line.size() > kMaxResponseLineBytes) {
    return Status::Corruption("response line of ", line.size(),
                              " bytes exceeds the ", kMaxResponseLineBytes,
                              "-byte cap");
  }
  Response response;
  if (line == "ok") {
    response.kind = Response::Kind::kOk;
    return response;
  }
  if (line.rfind("ok ", 0) == 0) {
    response.kind = Response::Kind::kOk;
    response.body = line.substr(3);
    return response;
  }
  if (line == "DEADLINE_EXCEEDED") {
    response.kind = Response::Kind::kDeadlineExceeded;
    response.code = StatusCode::kDeadlineExceeded;
    return response;
  }
  if (line.rfind("OVERLOADED", 0) == 0) {
    double hint = 0.0;
    const std::vector<std::string> tokens = SplitWhitespace(line);
    if (tokens.size() != 2 || !ParseDouble(tokens[1], &hint) || hint <= 0.0) {
      return Status::Corruption("malformed OVERLOADED response '", line, "'");
    }
    response.kind = Response::Kind::kOverloaded;
    response.code = StatusCode::kUnavailable;
    response.retry_after_ms = std::max(1.0, hint);
    return response;
  }
  if (line.rfind("err ", 0) == 0) {
    const std::string rest = line.substr(4);
    const size_t space = rest.find(' ');
    const std::string code_word =
        space == std::string::npos ? rest : rest.substr(0, space);
    if (code_word.empty()) {
      return Status::Corruption("err response without a status code: '", line,
                                "'");
    }
    response.kind = Response::Kind::kError;
    // Map the code word back through the StatusCode names; an unknown word
    // still parses (the server may be newer) but lands on kInternal.
    response.code = StatusCode::kInternal;
    for (int c = 0; c <= static_cast<int>(StatusCode::kUnavailable); ++c) {
      if (StatusCodeToString(static_cast<StatusCode>(c)) == code_word) {
        response.code = static_cast<StatusCode>(c);
        break;
      }
    }
    response.message =
        space == std::string::npos ? std::string() : rest.substr(space + 1);
    return response;
  }
  return Status::Corruption("unknown response status word in '",
                            line.substr(0, 64), "'");
}

Result<long long> ParseMetricsHeader(const std::string& header) {
  WEBER_ASSIGN_OR_RETURN(Response response, ParseResponse(header));
  if (!response.ok()) {
    return Status::Corruption("metrics request failed: ", header);
  }
  long long n = 0;
  auto [ptr, ec] = std::from_chars(
      response.body.data(), response.body.data() + response.body.size(), n);
  if (ec != std::errc() || ptr != response.body.data() + response.body.size() ||
      n < 0) {
    return Status::Corruption("bad metrics line count '", response.body, "'");
  }
  if (n > kMaxMetricsPayloadLines) {
    return Status::Corruption("metrics header announces ", n,
                              " lines, over the ", kMaxMetricsPayloadLines,
                              "-line cap");
  }
  return n;
}

Result<std::vector<std::string>> ReadMetricsPayload(
    long long n, const std::function<Result<std::string>()>& read_line) {
  if (n < 0 || n > kMaxMetricsPayloadLines) {
    return Status::Corruption("metrics payload of ", n,
                              " lines out of range");
  }
  std::vector<std::string> lines;
  lines.reserve(static_cast<size_t>(n));
  for (long long i = 0; i < n; ++i) {
    Result<std::string> line = read_line();
    if (!line.ok()) {
      return Status::Corruption("truncated metrics payload: got ", i, " of ",
                                n, " lines (", line.status().message(), ")");
    }
    lines.push_back(std::move(line).ValueOrDie());
  }
  return lines;
}

Result<std::vector<int>> ParseDumpResponse(const std::string& response) {
  const std::vector<std::string> tokens = SplitWhitespace(response);
  if (tokens.size() < 2 || tokens[0] != "ok") {
    return Status::Corruption("bad dump response '",
                              response.substr(0, 128), "'");
  }
  int n = 0;
  if (!ParseInt(tokens[1], &n) || n < 0 ||
      tokens.size() != static_cast<size_t>(n) + 2) {
    return Status::Corruption("dump token count mismatch");
  }
  std::vector<int> labels(static_cast<size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    const std::string& pair = tokens[static_cast<size_t>(i) + 2];
    const size_t colon = pair.find(':');
    if (colon == std::string::npos) {
      return Status::Corruption("bad dump pair '", pair, "'");
    }
    int doc = -1;
    int label = 0;
    if (!ParseInt(pair.substr(0, colon), &doc) ||
        !ParseInt(pair.substr(colon + 1), &label) || doc < 0 || doc >= n) {
      return Status::Corruption("bad dump pair '", pair, "'");
    }
    labels[static_cast<size_t>(doc)] = label;
  }
  return labels;
}

Result<std::vector<std::pair<int, int>>> ParseMatchResponse(
    const std::string& response) {
  const std::vector<std::string> tokens = SplitWhitespace(response);
  if (tokens.size() < 2 || tokens[0] != "ok") {
    return Status::Corruption("bad match response '",
                              response.substr(0, 128), "'");
  }
  int n = 0;
  if (!ParseInt(tokens[1], &n) || n < 0 ||
      tokens.size() != static_cast<size_t>(n) + 2) {
    return Status::Corruption("match token count mismatch");
  }
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::string& pair = tokens[static_cast<size_t>(i) + 2];
    const size_t colon = pair.find(':');
    if (colon == std::string::npos) {
      return Status::Corruption("bad match pair '", pair, "'");
    }
    int doc = -1;
    int cluster = 0;
    if (!ParseInt(pair.substr(0, colon), &doc) ||
        !ParseInt(pair.substr(colon + 1), &cluster) || doc < 0 ||
        cluster < -1) {
      return Status::Corruption("bad match pair '", pair, "'");
    }
    pairs.push_back({doc, cluster});
  }
  return pairs;
}

std::string FormatError(const Status& status) {
  std::string message = status.message();
  for (char& c : message) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  std::string out = "err ";
  out += StatusCodeToString(status.code());
  out += ' ';
  out += message;
  return out;
}

std::string FormatOverloaded(double retry_after_ms) {
  const long long ms = std::max(
      1ll, static_cast<long long>(std::llround(retry_after_ms)));
  return "OVERLOADED " + std::to_string(ms);
}

std::string FormatDeadlineExceeded() { return "DEADLINE_EXCEEDED"; }

std::string FormatFailure(const Status& status, double retry_after_ms) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
      return FormatOverloaded(retry_after_ms);
    case StatusCode::kDeadlineExceeded:
      return FormatDeadlineExceeded();
    default:
      return FormatError(status);
  }
}

}  // namespace serve
}  // namespace weber

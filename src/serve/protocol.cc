#include "serve/protocol.h"

#include <charconv>

#include "common/string_util.h"

namespace weber {
namespace serve {

namespace {

Result<int> ParseDoc(const std::string& token) {
  int value = 0;
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size() || value < 0) {
    return Status::InvalidArgument("bad document id '", token, "'");
  }
  return value;
}

}  // namespace

Result<Request> ParseRequest(const std::string& line) {
  const std::vector<std::string> tokens = SplitWhitespace(line);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty request");
  }
  const std::string& verb = tokens[0];
  Request request;
  auto need = [&](size_t n) -> Status {
    if (tokens.size() != n) {
      return Status::InvalidArgument("'", verb, "' expects ", n - 1,
                                     " argument(s), got ", tokens.size() - 1);
    }
    return Status::OK();
  };
  if (verb == "assign" || verb == "query") {
    WEBER_RETURN_NOT_OK(need(3));
    request.op =
        verb == "assign" ? Request::Op::kAssign : Request::Op::kQuery;
    request.block = tokens[1];
    WEBER_ASSIGN_OR_RETURN(request.doc, ParseDoc(tokens[2]));
    return request;
  }
  if (verb == "compact") {
    if (tokens.size() == 1) {
      request.op = Request::Op::kCompactAll;
      return request;
    }
    WEBER_RETURN_NOT_OK(need(2));
    request.op = Request::Op::kCompact;
    request.block = tokens[1];
    return request;
  }
  if (verb == "dump") {
    WEBER_RETURN_NOT_OK(need(2));
    request.op = Request::Op::kDump;
    request.block = tokens[1];
    return request;
  }
  if (verb == "stats") {
    WEBER_RETURN_NOT_OK(need(1));
    request.op = Request::Op::kStats;
    return request;
  }
  if (verb == "ping") {
    WEBER_RETURN_NOT_OK(need(1));
    request.op = Request::Op::kPing;
    return request;
  }
  if (verb == "quit") {
    WEBER_RETURN_NOT_OK(need(1));
    request.op = Request::Op::kQuit;
    return request;
  }
  return Status::InvalidArgument("unknown request '", verb, "'");
}

std::string FormatError(const Status& status) {
  std::string message = status.message();
  for (char& c : message) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  std::string out = "err ";
  out += StatusCodeToString(status.code());
  out += ' ';
  out += message;
  return out;
}

}  // namespace serve
}  // namespace weber

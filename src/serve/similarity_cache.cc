#include "serve/similarity_cache.h"

#include <algorithm>

namespace weber {
namespace serve {

namespace {

size_t RoundUpPowerOfTwo(int n) {
  size_t p = 1;
  while (p < static_cast<size_t>(n)) p <<= 1;
  return p;
}

}  // namespace

SimilarityCache::SimilarityCache() : SimilarityCache(Options{}) {}

SimilarityCache::SimilarityCache(Options options)
    : capacity_(std::max<size_t>(1, options.capacity)) {
  const size_t stripes =
      RoundUpPowerOfTwo(std::clamp(options.num_shards, 1, 256));
  stripe_mask_ = stripes - 1;
  per_stripe_capacity_ = std::max<size_t>(1, capacity_ / stripes);
  stripes_ = std::vector<Stripe>(stripes);
}

bool SimilarityCache::Lookup(const CacheKey& key, double* value) {
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.index.find(key);
  if (it == stripe.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
  *value = it->second->value;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void SimilarityCache::Insert(const CacheKey& key, double value) {
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.index.find(key);
  if (it != stripe.index.end()) {
    it->second->value = value;
    stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
    return;
  }
  stripe.lru.push_front({key, value});
  stripe.index[key] = stripe.lru.begin();
  if (stripe.index.size() > per_stripe_capacity_) {
    stripe.index.erase(stripe.lru.back().key);
    stripe.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SimilarityCache::Clear() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.lru.clear();
    stripe.index.clear();
  }
}

CacheStats SimilarityCache::Stats() const {
  CacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stats.entries += static_cast<long long>(stripe.index.size());
  }
  return stats;
}

}  // namespace serve
}  // namespace weber

// ResolutionService: a concurrent "which person is this page?" serving
// layer over the corpus of one deployment.
//
// Architecture (see DESIGN.md, "Serving architecture"):
//   * One shard per ambiguous name (the paper's blocking key). A shard owns
//     a mutex-protected IncrementalResolver for the hot assignment path and
//     an immutable ResolverSnapshot published RCU-style for the read path.
//   * Assign adds an arriving document to its shard's live partition via
//     greedy incremental resolution (cheap, order-dependent).
//   * Compaction batch re-resolves the shard — every pair scored against
//     the calibrated threshold, transitive closure — and atomically swaps
//     the result in as the new snapshot. Batch resolution is invariant to
//     arrival order, so concurrent interleavings converge to the same
//     partition once quiesced and compacted. Compactions run on a shared
//     common/Executor pool; queries never block on them.
//   * All pair scores (assignment, query, compaction) are memoized in a
//     sharded LRU SimilarityCache keyed by (shard, function, doc pair).
//   * AssignAsync goes through a MicroBatcher (max_batch_size /
//     max_delay_ms) that groups requests per shard: one lock acquisition
//     and one cache-warm scoring pass per batch.
//
// Fault points `serve.assign` and `serve.compact` (weber::faults) let chaos
// tests fail either path deterministically; a failed compaction never
// swaps, so the shard keeps serving the previous snapshot.
//
// Overload protection (see DESIGN.md, "Overload & admission control"):
// every write is admitted through a per-shard pending budget and a per-shard
// CircuitBreaker before it may queue; async assigns additionally respect the
// micro-batcher's cap and background compactions the pool's queue cap. Each
// request may carry a RequestDeadline — checked at admission, while parked,
// and after fault-injected latency — and deadline blowouts both answer
// DEADLINE_EXCEEDED and count toward tripping the shard's breaker. An open
// breaker keeps serving reads from the last published snapshot and rejects
// writes with Unavailable until a cooldown admits a probe. All overload
// features default off, in which case behavior is unchanged.
//
// Durability (see DESIGN.md, "Durability & recovery"): with a data_dir
// configured, every shard owns a durability::ShardLog. An acknowledged
// Assign is appended to the shard's WAL before the in-memory mutation;
// compactions publish checksummed snapshot files. Create() recovers each
// shard on startup — newest valid snapshot + idempotent WAL replay — and
// optionally cross-checks the recovered partition against a fresh batch
// re-resolution. With data_dir empty the service is fully in-memory and
// behaves exactly as before.

#ifndef WEBER_SERVE_RESOLUTION_SERVICE_H_
#define WEBER_SERVE_RESOLUTION_SERVICE_H_

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/executor.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/trace.h"
#include "core/incremental.h"
#include "core/run_health.h"
#include "corpus/document.h"
#include "durability/shard_log.h"
#include "extract/gazetteer.h"
#include "serve/batcher.h"
#include "serve/overload.h"
#include "serve/similarity_cache.h"
#include "serve/snapshot.h"

namespace weber {
namespace serve {

struct ServiceOptions {
  /// Functions + linkage for the per-shard incremental resolvers.
  core::IncrementalOptions incremental;

  /// Workers of the background compaction pool.
  int compaction_threads = 1;

  SimilarityCache::Options cache;
  BatcherOptions batcher;

  /// Auto-compact a shard after this many assignments since its last
  /// compaction (0 = compact only on request).
  int compact_every = 0;

  /// Seed for the per-shard threshold calibration sample.
  uint64_t calibration_seed = 0x5E21EULL;

  /// Fraction of each block's pairs labeled for calibration.
  double train_fraction = 0.10;

  /// Admission control and overload shedding; everything defaults off, in
  /// which case the service queues without bound exactly as before.
  struct Overload {
    /// Cap on the background compaction pool's queue; a scheduled
    /// compaction that finds the queue full is shed (0 = unbounded).
    size_t executor_queue_cap = 0;
    /// Cap on assigns parked in the micro-batcher; AssignAsync sheds with
    /// Unavailable once this many are waiting (0 = unbounded).
    size_t batcher_queue_cap = 0;
    /// Cap on writes admitted but not yet finished per shard; further
    /// writes are shed with Unavailable (0 = unbounded).
    int max_pending_per_shard = 0;
    /// Deadline applied to requests that carry none (0 = none). Measured
    /// from service entry.
    double default_deadline_ms = 0.0;
    /// Consecutive write failures (including deadline blowouts) that trip
    /// a shard's circuit breaker (0 disables breakers).
    int breaker_failure_threshold = 0;
    /// How long a tripped breaker rejects writes before probing.
    double breaker_cooldown_ms = 1000.0;
  };
  Overload overload;

  /// Optional span sink (weber::obs). When set, the service records scoped
  /// trace spans along the assign/query/compact paths (including the
  /// batcher's flush thread, where the submitting request's ID is
  /// restored). Null (the default) makes every span a no-op. The collector
  /// must outlive the service.
  obs::TraceCollector* trace = nullptr;

  /// Crash durability; data_dir empty = fully in-memory (default).
  struct Durability {
    /// Root directory holding one subdirectory (WAL + snapshots) per
    /// shard. Empty disables durability entirely.
    std::string data_dir;
    durability::FsyncPolicy fsync = durability::FsyncPolicy::kBatch;
    /// Restart the WAL at a fully-covering snapshot once it exceeds this.
    uint64_t wal_truncate_bytes = 1ull << 20;
    /// Cross-check every recovered partition against a fresh batch
    /// re-resolution of the recovered document set (cheap insurance
    /// against undetected snapshot corruption).
    bool verify_recovery = true;
  };
  Durability durability;
};

struct AssignResult {
  /// Live-partition cluster index the document joined.
  int cluster = -1;
  /// Version of the shard's published snapshot at assignment time.
  uint64_t snapshot_version = 0;
};

/// Full transferable state of one shard (wire form of the `export` verb):
/// the published snapshot plus the documents assigned since it was taken.
struct ShardExport {
  durability::ShardSnapshotData snapshot;
  /// Canonical ids assigned after the snapshot, in arrival order; the
  /// importer replays them through the live resolver exactly like a WAL
  /// tail.
  std::vector<int32_t> tail;
};

/// What an `import` acked with: the installed snapshot version and the
/// total documents now in the shard (snapshot + tail).
struct ImportOutcome {
  uint64_t version = 0;
  int documents = 0;
};

struct QueryResult {
  /// Snapshot cluster label the page resolves to, or -1 when no cluster
  /// reaches the threshold (unknown person / empty snapshot).
  int cluster = -1;
  double score = 0.0;
  uint64_t snapshot_version = 0;
};

struct MatchResult {
  /// One snapshot cluster per requested document (request order), -1 for
  /// unmatched. One-to-one: no cluster appears twice.
  std::vector<int> clusters;
  uint64_t snapshot_version = 0;
};

/// Latency summary of one endpoint, computed from a reservoir of samples
/// (shared weber::obs math: exact count/mean, interpolated percentiles).
using EndpointLatency = obs::LatencySummary;

/// Aggregate write-ahead-log / snapshot counters across all shards.
struct DurabilityStats {
  bool enabled = false;
  long long wal_appends = 0;
  long long wal_syncs = 0;
  long long wal_bytes = 0;
  long long snapshots_written = 0;
  long long wal_truncations = 0;
  /// Compactions whose durable publication failed (the shard kept serving
  /// the new partition from memory; the WAL still covers it).
  long long failed_publishes = 0;
  /// Documents reconstructed at startup (snapshot + WAL replay).
  long long recovered_docs = 0;
  /// Shards restored from a snapshot file (vs WAL-only or empty).
  long long recovered_snapshots = 0;
};

/// Shed/deadline/breaker counters. All-zero (and unconfigured) means no
/// overload machinery touched any request.
struct OverloadStats {
  /// Whether any ServiceOptions::Overload knob is set.
  bool configured = false;
  /// Async assigns rejected at the micro-batcher cap.
  long long batcher_sheds = 0;
  /// Writes rejected by a shard's pending budget.
  long long budget_sheds = 0;
  /// Background compactions rejected at the pool's queue cap.
  long long compaction_sheds = 0;
  /// Writes rejected by an open (or probing) circuit breaker.
  long long breaker_sheds = 0;
  /// Requests answered DEADLINE_EXCEEDED (admission, parked, or post-work).
  long long deadline_exceeded = 0;
  long long breaker_trips = 0;
  long long breaker_recoveries = 0;
  /// Shards whose breaker is currently open.
  int breakers_open = 0;

  long long TotalSheds() const {
    return batcher_sheds + budget_sheds + compaction_sheds + breaker_sheds;
  }
  bool Any() const {
    return TotalSheds() + deadline_exceeded + breaker_trips +
                   breaker_recoveries >
               0 ||
           breakers_open > 0;
  }
};

struct ServiceStats {
  EndpointLatency assign;
  EndpointLatency query;
  EndpointLatency compact;
  /// Populated (and serialized) only once a `match` request has been
  /// served; all-zero otherwise.
  EndpointLatency match;
  CacheStats cache;
  DurabilityStats durability;
  OverloadStats overload;

  long long assigns = 0;
  long long queries = 0;
  long long matches = 0;
  long long compactions = 0;
  long long failed_compactions = 0;
  long long failed_assigns = 0;
  long long snapshot_swaps = 0;
  long long batches_flushed = 0;
  long long batched_requests = 0;

  /// Degradation ledger in the library's standard shape; failed
  /// compactions and breaker trips count as degraded blocks (the shard
  /// serves stale data) and deadline blowouts as deadline hits.
  core::RunHealth health;
};

/// Thread-safe resolution service over a labeled corpus. Create extracts
/// features for every block and calibrates one match threshold per shard
/// from the block's labeled pairs; afterwards Assign/Query/Compact may be
/// called concurrently from any number of threads.
class ResolutionService {
 public:
  static Result<std::unique_ptr<ResolutionService>> Create(
      const corpus::Dataset& dataset, const extract::Gazetteer* gazetteer,
      ServiceOptions options);

  ~ResolutionService();

  ResolutionService(const ResolutionService&) = delete;
  ResolutionService& operator=(const ResolutionService&) = delete;

  /// Adds block document `doc` to its shard's live partition (hot path).
  /// Idempotent: re-assigning a document returns its current cluster.
  /// Admission (budget + breaker) may shed with Unavailable; an expired
  /// deadline — at entry or after fault-injected latency — answers
  /// DeadlineExceeded (the assignment, if made, stands; a retry is safe).
  Result<AssignResult> Assign(const std::string& block, int doc,
                              RequestDeadline deadline = {});

  /// As Assign, but micro-batched: requests are grouped per shard and
  /// processed under one lock acquisition per group. The deadline is also
  /// checked when the batch flushes, so requests that expired while parked
  /// are answered DeadlineExceeded without doing the work.
  std::future<Result<AssignResult>> AssignAsync(const std::string& block,
                                                int doc,
                                                RequestDeadline deadline = {});

  /// Resolves the page against the shard's published snapshot. Lock-free
  /// with respect to writers and compactions, and never gated by the
  /// breaker — reads keep working while a shard's write path is open.
  Result<QueryResult> Query(const std::string& block, int doc,
                            RequestDeadline deadline = {}) const;

  /// Resolves a batch of documents against the shard's snapshot under a
  /// one-to-one constraint (clean-clean linkage): each document gets its
  /// best cluster at or above the shard threshold, but no two documents of
  /// one request may land on the same cluster (greedy best-first
  /// tie-breaking). Like Query this is a lock-free snapshot read; it is
  /// never gated by the breaker. Documents must be distinct and in range.
  Result<MatchResult> Match(const std::string& block,
                            const std::vector<int>& docs,
                            RequestDeadline deadline = {}) const;

  /// Synchronously batch re-resolves the shard and publishes the result as
  /// a new snapshot. On failure (including a blown deadline) the previous
  /// snapshot remains published. Goes through write admission like Assign.
  Status Compact(const std::string& block, RequestDeadline deadline = {});

  /// Compacts every shard (synchronously, on the calling thread).
  Status CompactAll();

  /// Schedules a background compaction on the pool (no-op when one is
  /// already in flight for the shard).
  Status CompactInBackground(const std::string& block);

  /// The shard's current snapshot (never null; version 0 = empty).
  Result<std::shared_ptr<const ResolverSnapshot>> Snapshot(
      const std::string& block) const;

  /// Snapshot partition as a label per canonical block document;
  /// -1 for documents not in the snapshot.
  Result<std::vector<int>> DumpPartition(const std::string& block) const;

  /// Captures the shard's full state for migration: the published snapshot
  /// plus the tail of documents assigned since it. Taken under the shard
  /// mutex, so the pair is a consistent cut. Fault point: migrate.export.
  Result<ShardExport> ExportShard(const std::string& block) const;

  /// Replaces the shard's state wholesale with an exported snapshot +
  /// tail. Everything is validated (threshold, ranges, duplicates) before
  /// any mutation — a refused import leaves the shard untouched. The
  /// imported snapshot is published at its original version so a dump of
  /// the destination is byte-identical to the source's. With durability
  /// on, the shard's directory is reset to the imported state. Fault
  /// point: migrate.import.
  Result<ImportOutcome> ImportShard(const std::string& block,
                                    const ShardExport& exported);

  /// Forces every shard's WAL to disk (group-commit barrier); used by the
  /// server's graceful-shutdown path. No-op when durability is disabled or
  /// the policy is kNever. Returns the first failure but syncs all shards.
  Status SyncDurable();

  ServiceStats Stats() const;

  /// The service's metrics registry: every counter, histogram, and pulled
  /// gauge backing Stats(), exportable as Prometheus text. Callers may
  /// register additional metrics (the server adds its connection counters).
  obs::MetricsRegistry& metrics() const { return registry_; }

  /// Renders the registry as Prometheus text exposition (the `metrics`
  /// wire verb's payload).
  void WriteMetricsText(std::ostream& os) const {
    registry_.WritePrometheusText(os);
  }

  /// The span sink configured at Create time (null when tracing is off).
  obs::TraceCollector* trace_collector() const { return options_.trace; }

  /// Emits the stats as a single-line JSON object (RunHealth fields
  /// included, same shape as the experiment JSON's "health"). The overload
  /// section is emitted only when overload features are configured or have
  /// fired, keeping the output byte-identical to an overload-free build
  /// otherwise. `extra`, when given, is invoked at top level so a caller
  /// (the server) can append its own keyed sections.
  /// `shard_detail` adds the rebalance planner's per-shard inputs (WAL
  /// byte size) to each shard entry; it defaults off so plain `stats`
  /// output stays byte-identical for clients that never ask.
  void WriteStatsJson(std::ostream& os) const;
  void WriteStatsJson(std::ostream& os,
                      const std::function<void(JsonWriter&)>& extra) const;
  void WriteStatsJson(std::ostream& os,
                      const std::function<void(JsonWriter&)>& extra,
                      bool shard_detail) const;

  const std::vector<std::string>& block_names() const { return block_names_; }
  Result<int> BlockSize(const std::string& block) const;
  Result<double> ShardThreshold(const std::string& block) const;

 private:
  struct Shard;
  struct PendingAssign;
  class ShardScoreCache;

  ResolutionService(ServiceOptions options);

  /// Registers the pull-style metrics (cache, batcher, breakers,
  /// durability) once `cache_` and `batcher_` exist; called from Create.
  void RegisterPulledMetrics();

  /// Lazily registers the migration counters (see migrate_metrics_once_).
  void RegisterMigrateMetrics() const;

  Result<Shard*> FindShard(const std::string& block) const;
  Result<AssignResult> AssignLocked(Shard* shard, int doc,
                                    const RequestDeadline& deadline);
  Status CompactShard(Shard* shard,
                      const RequestDeadline& deadline = RequestDeadline());
  void ProcessAssignBatch(std::vector<PendingAssign> batch);

  /// Applies the configured default deadline to requests carrying none.
  RequestDeadline EffectiveDeadline(RequestDeadline deadline) const;
  /// Write admission: expired deadline, then the shard's pending budget,
  /// then its breaker. On OK the caller owns one budget slot (and possibly
  /// the breaker's half-open probe) and must call FinishWrite exactly once.
  Status AdmitWrite(Shard* shard, const RequestDeadline& deadline);
  /// Releases the budget slot and reports the outcome to the breaker;
  /// counts deadline blowouts.
  void FinishWrite(Shard* shard, const Status& outcome);
  bool OverloadConfigured() const;
  double ScorePairCached(const Shard& shard, int canon_a, int canon_b) const;

  /// Rebuilds a shard's in-memory state from what recovery salvaged:
  /// restores the snapshot partition, replays the WAL tail idempotently,
  /// and publishes the recovered partition as the shard's read snapshot.
  Status RestoreShard(Shard* shard, durability::RecoveredShard recovered);
  Status VerifyRecoveredPartition(
      const Shard& shard, const durability::ShardSnapshotData& snap) const;
  static std::string ShardDirName(uint32_t id, const std::string& name);

  ServiceOptions options_;
  std::vector<std::unique_ptr<core::SimilarityFunction>> functions_;
  std::vector<std::string> block_names_;
  std::unordered_map<std::string, int> shard_index_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<SimilarityCache> cache_;

  /// Owns every metric below; destroyed after the batcher and pool (they
  /// are declared later), so worker threads never outlive their counters.
  /// Mutable: the read path (Query) increments counters and the stats /
  /// metrics exporters are const.
  mutable obs::MetricsRegistry registry_;

  /// Registry-backed counters (stable pointers; incrementing is the
  /// lock-free striped hot path). Same totals as the former raw atomics.
  obs::Counter* assigns_ = nullptr;
  obs::Counter* queries_ = nullptr;
  /// Match metrics are registered lazily on the first Match call so the
  /// `metrics` exposition (and stats JSON) stay byte-identical for
  /// deployments that never use the verb. Atomic: Stats()/Match() race.
  mutable std::once_flag match_metrics_once_;
  mutable std::atomic<obs::Counter*> matches_{nullptr};
  mutable std::atomic<obs::Histogram*> match_hist_{nullptr};
  /// Migration metrics follow the same lazy pattern: deployments that
  /// never export/import a shard keep a byte-identical exposition.
  mutable std::once_flag migrate_metrics_once_;
  mutable std::atomic<obs::Counter*> exports_{nullptr};
  mutable std::atomic<obs::Counter*> imports_{nullptr};
  mutable std::atomic<obs::Counter*> rejected_imports_{nullptr};
  obs::Counter* compactions_ = nullptr;
  obs::Counter* failed_compactions_ = nullptr;
  obs::Counter* failed_assigns_ = nullptr;
  obs::Counter* snapshot_swaps_ = nullptr;
  obs::Counter* failed_publishes_ = nullptr;
  obs::Counter* budget_sheds_ = nullptr;
  obs::Counter* compaction_sheds_ = nullptr;
  obs::Counter* breaker_sheds_ = nullptr;
  obs::Counter* deadline_exceeded_ = nullptr;

  /// Registry-backed latency histograms (Prometheus export); the
  /// reservoirs below keep the exact mean/percentile summaries for the
  /// stats JSON.
  obs::Histogram* assign_hist_ = nullptr;
  obs::Histogram* query_hist_ = nullptr;
  obs::Histogram* compact_hist_ = nullptr;
  obs::Histogram* batch_size_hist_ = nullptr;

  long long recovered_docs_ = 0;       // written once, in Create
  long long recovered_snapshots_ = 0;  // written once, in Create

  /// Degradation observed during startup recovery (torn WAL tails, corrupt
  /// records/snapshots). Written only by Create; merged into Stats().
  core::RunHealth recovery_health_;

  mutable obs::LatencyReservoir assign_latency_;
  mutable obs::LatencyReservoir query_latency_;
  mutable obs::LatencyReservoir compact_latency_;
  mutable obs::LatencyReservoir match_latency_;

  // Declared after the state they operate on so they stop first.
  std::unique_ptr<Executor> compaction_pool_;
  std::unique_ptr<MicroBatcher<PendingAssign>> batcher_;
};

}  // namespace serve
}  // namespace weber

#endif  // WEBER_SERVE_RESOLUTION_SERVICE_H_

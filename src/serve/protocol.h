// Newline-delimited request/response protocol of weber_serve.
//
// Requests (one per line, space-separated tokens; block names contain no
// whitespace by construction):
//
//   assign <block> <doc>    add block document <doc> to the live partition
//   query <block> <doc>     resolve the document against the snapshot
//   compact <block>         batch re-resolve the shard, swap the snapshot
//   compact                 compact every shard
//   dump <block>            snapshot partition as doc:label pairs
//   stats                   service stats as one-line JSON
//   ping                    liveness check
//   quit                    close the connection / stop the stdio loop
//
// Responses (one line per request):
//
//   ok [fields...]          assign/query: "ok <cluster> <version>";
//                           compact: "ok <version>"; dump: "ok <n>
//                           <doc>:<label> ..."; stats: "ok <json>"
//   err <code> <message>    <code> is the StatusCode name; message has
//                           newlines stripped
//
// The grammar is line-oriented on purpose: it works identically over
// stdin/stdout and a TCP byte stream, and a load generator can pipeline
// requests without framing logic.

#ifndef WEBER_SERVE_PROTOCOL_H_
#define WEBER_SERVE_PROTOCOL_H_

#include <string>

#include "common/result.h"

namespace weber {
namespace serve {

struct Request {
  enum class Op {
    kAssign,
    kQuery,
    kCompact,
    kCompactAll,
    kDump,
    kStats,
    kPing,
    kQuit,
  };

  Op op = Op::kPing;
  std::string block;
  int doc = -1;
};

/// Parses one request line. Returns InvalidArgument for unknown verbs,
/// missing arguments, or a non-numeric document id.
Result<Request> ParseRequest(const std::string& line);

/// Formats an error response ("err <code> <message>", single line).
std::string FormatError(const Status& status);

}  // namespace serve
}  // namespace weber

#endif  // WEBER_SERVE_PROTOCOL_H_

// Newline-delimited request/response protocol of weber_serve.
//
// Requests (one per line, space-separated tokens; block names contain no
// whitespace by construction):
//
//   assign <block> <doc>    add block document <doc> to the live partition
//   query <block> <doc>     resolve the document against the snapshot
//   match <block> <doc...>  one-to-one match the listed documents against
//                           the snapshot's clusters (clean-clean linkage):
//                           no two documents of one request land on the
//                           same cluster
//   compact <block>         batch re-resolve the shard, swap the snapshot
//   compact                 compact every shard
//   dump <block>            snapshot partition as doc:label pairs
//   stats [shards]          service stats as one-line JSON; the optional
//                           "shards" token adds per-shard planner inputs
//                           (WAL byte size) to each shard entry — plain
//                           "stats" output is byte-identical either way
//   metrics                 Prometheus text exposition of the metrics
//                           registry: "ok <n>" followed by n payload lines
//   export <block>          stream the shard's state for migration: the
//                           published snapshot plus the WAL tail since it,
//                           as "ok <n>" followed by n length-prefixed,
//                           CRC32C-framed payload lines (the protocol's
//                           second multi-line response, after metrics)
//   import <block> <bytes> <hex>
//                           replace the shard's state wholesale with an
//                           exported snapshot + tail. The single-line blob
//                           is hex of concatenated binary frames
//                           ([len u32 LE][crc32c u32 LE][payload]); <bytes>
//                           is the decoded blob length. Checksums are
//                           validated before any state changes; corruption
//                           refuses the import with the shard untouched
//   migrate <block> <endpoint>
//                           admin verb handled by weber_router only: move
//                           the block's ownership to <endpoint> (copy,
//                           tail catch-up under a brief write pause, then
//                           an atomic route-override flip)
//   rebalance <endpoint...> admin verb handled by weber_router only: diff
//                           current block ownership against the proposed
//                           backend list (each endpoint must be a
//                           configured backend) and migrate every block
//                           whose owner changes, largest shards first
//   rebalance status        one-line JSON progress of the running (or most
//                           recent) rebalance/drain plan
//   rebalance abort         stop a running plan between moves (the move in
//                           flight completes or rolls back on its own)
//   drain <endpoint>        admin verb handled by weber_router only:
//                           migrate every block off <endpoint>, then mark
//                           it drained — new writes to it are refused —
//                           so it can be decommissioned safely
//   ping                    liveness check
//   quit                    close the connection / stop the stdio loop
//
// assign/query/match/compact accept an optional trailing "deadline <ms>"
// pair
// (the token is case-insensitive, so "DEADLINE 50" also parses): the
// client's per-request latency budget, measured from parse time. Work
// that cannot finish inside the budget is abandoned and answered with
// DEADLINE_EXCEEDED.
//
// Responses (one line per request):
//
//   ok [fields...]          assign/query: "ok <cluster> <version>";
//                           compact: "ok <version>"; dump: "ok <n>
//                           <doc>:<label> ..."; match: "ok <n>
//                           <doc>:<cluster> ..." in request order, -1 for
//                           unmatched; stats: "ok <json>";
//                           metrics/export: "ok <n>" plus n further lines
//                           (the protocol's only multi-line responses)
//   OVERLOADED <ms>         the request was shed before any state changed
//                           (queue cap, connection cap, or open breaker);
//                           retrying after <ms> milliseconds is safe
//   DEADLINE_EXCEEDED       the request's deadline passed; assigns are
//                           idempotent, so a re-send with a fresh deadline
//                           is safe
//   err <code> <message>    <code> is the StatusCode name; message has
//                           newlines stripped
//
// The grammar is line-oriented on purpose: it works identically over
// stdin/stdout and a TCP byte stream, and a load generator can pipeline
// requests without framing logic. Request lines are capped at
// kMaxRequestLineBytes — longer (or NUL-carrying) lines are rejected with
// InvalidArgument instead of growing an unbounded buffer for a malicious
// or broken client.

#ifndef WEBER_SERVE_PROTOCOL_H_
#define WEBER_SERVE_PROTOCOL_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace weber {
namespace serve {

/// Hard cap on one request line. Every legal request fits in a fraction of
/// this; anything longer is an attack or a framing bug, not traffic.
inline constexpr size_t kMaxRequestLineBytes = 4096;

/// Cap on one `import` request line — the only request that legitimately
/// carries bulk data (a hex-encoded snapshot + WAL tail). 4 MiB of line is
/// ~2 MiB of state, far above any realistic per-name block.
inline constexpr size_t kMaxImportLineBytes = 1 << 22;

/// Cap on one decoded export frame (snapshot payload or WAL tail record).
inline constexpr size_t kMaxExportFrameBytes = 1 << 20;

/// Cap on the payload lines an `export` response may announce (one
/// snapshot frame plus at most this many tail records).
inline constexpr long long kMaxExportFrames = 1 << 16;

struct Request {
  enum class Op {
    kAssign,
    kQuery,
    kMatch,
    kCompact,
    kCompactAll,
    kDump,
    kStats,
    kMetrics,
    kExport,
    kImport,
    kMigrate,
    kRebalance,
    kDrain,
    kPing,
    kQuit,
  };

  Op op = Op::kPing;
  std::string block;
  int doc = -1;
  /// The documents of a `match` request, in wire order (unused otherwise).
  std::vector<int> docs;
  /// The decoded binary blob of an `import` request (concatenated frames).
  std::string blob;
  /// The target backend of a `migrate` or `drain` request ("host:port").
  std::string endpoint;
  /// The proposed backend list of a `rebalance` request, in wire order.
  std::vector<std::string> endpoints;
  /// The control word of a `rebalance status` / `rebalance abort` request
  /// ("" when the request starts a plan).
  std::string subcommand;
  /// True for `stats shards`: emit per-shard planner inputs (WAL bytes).
  bool shard_detail = false;
  /// Client latency budget from the optional "deadline <ms>" suffix
  /// (0 = none given).
  double deadline_ms = 0.0;
};

/// Parses one request line. Returns InvalidArgument for unknown verbs,
/// missing arguments, a non-numeric document id, an oversized line, an
/// embedded NUL, or a malformed deadline suffix.
Result<Request> ParseRequest(const std::string& line);

/// Re-serializes a request to its canonical wire line (the inverse of
/// ParseRequest; a positive deadline_ms is appended as "deadline <ms>").
/// The router uses this to forward a request with its remaining budget.
std::string FormatRequest(const Request& request);

/// Cap on one response line accepted by clients. dump/stats on realistic
/// shards stay far below this; anything longer means a framing bug or a
/// corrupted stream, not data.
inline constexpr size_t kMaxResponseLineBytes = 1 << 20;

/// Cap on the payload lines a `metrics` response may announce. The real
/// registry emits a few hundred; a header claiming more than this is a
/// corrupt or hostile stream, and honoring it would make the client loop
/// (and buffer) on the peer's say-so.
inline constexpr long long kMaxMetricsPayloadLines = 1 << 18;

/// One parsed response line. The four status words of the protocol map to
/// the four kinds; everything after "ok" (if anything) lands in `body`.
struct Response {
  enum class Kind {
    kOk,
    kOverloaded,
    kDeadlineExceeded,
    kError,
  };

  Kind kind = Kind::kError;
  /// For kOk: the rest of the line after "ok " ("" for a bare "ok").
  std::string body;
  /// For kOverloaded: the server's retry hint (always >= 1).
  double retry_after_ms = 0.0;
  /// For kError: the parsed StatusCode (kInternal when the code word is
  /// not a known StatusCode name) and the remainder of the line.
  StatusCode code = StatusCode::kOk;
  std::string message;

  bool ok() const { return kind == Kind::kOk; }
};

/// Parses one response line shared by every protocol client (router,
/// loadgen, crashtest), so their notions of ok/shed/deadline/error cannot
/// drift. Returns Corruption for an empty line, an oversized line
/// (kMaxResponseLineBytes), an unknown status word, a malformed OVERLOADED
/// hint, or an "err" line without a code.
Result<Response> ParseResponse(const std::string& line);

/// Parses the "ok <n>" header of a `metrics` response into n. Corruption
/// when the header is not ok, n is missing/non-numeric/negative, or n
/// exceeds kMaxMetricsPayloadLines.
Result<long long> ParseMetricsHeader(const std::string& header);

/// Reads the n payload lines of a `metrics` response through `read_line`
/// (one call per line). A reader failure mid-payload is reported as
/// Corruption("truncated metrics payload ...") so callers can tell a torn
/// multi-line response from an ordinary transport error.
Result<std::vector<std::string>> ReadMetricsPayload(
    long long n, const std::function<Result<std::string>()>& read_line);

/// Parses a `dump` response ("ok <n> <doc>:<label> ...") into one label per
/// canonical document (-1 = not in the shard). Corruption on any malformed
/// token, count mismatch, or out-of-range document id.
Result<std::vector<int>> ParseDumpResponse(const std::string& response);

/// Parses a `match` response ("ok <n> <doc>:<cluster> ...") into
/// (document, cluster) pairs in response order; cluster -1 means the
/// document was left unmatched. Corruption on any malformed token or a
/// count mismatch.
Result<std::vector<std::pair<int, int>>> ParseMatchResponse(
    const std::string& response);

/// Parses the "ok <n>" header of an `export` response into the frame
/// count n. Corruption when the header is not ok, n is missing,
/// non-numeric, negative, or exceeds kMaxExportFrames.
Result<long long> ParseExportHeader(const std::string& header);

/// Formats one export payload line: "<len> <crc32c> <hex-payload>". The
/// CRC covers the raw payload bytes, the length is the decoded byte count.
std::string FormatExportFrame(const std::string& payload);

/// Parses one export payload line back into its raw bytes, verifying the
/// declared length and CRC32C against the decoded hex. Corruption on any
/// mismatch, malformed token, or a frame above kMaxExportFrameBytes.
Result<std::string> ParseExportFrame(const std::string& line);

/// Appends one frame to an import blob as [len u32 LE][crc32c u32 LE]
/// [payload] — the binary twin of FormatExportFrame, used to repack
/// exported frames into a single `import` line.
void AppendImportFrame(std::string& blob, const std::string& payload);

/// Splits an import blob back into its frames, verifying each length
/// prefix and CRC32C. Corruption on a torn frame, trailing garbage, a
/// checksum mismatch, or a frame above kMaxExportFrameBytes.
Result<std::vector<std::string>> SplitImportBlob(const std::string& blob);

/// Lowercase hex of arbitrary bytes (two characters per byte).
std::string HexEncode(const std::string& bytes);

/// Inverse of HexEncode. InvalidArgument on odd length or a non-hex digit.
Result<std::string> HexDecode(const std::string& hex);

/// Formats an error response ("err <code> <message>", single line).
std::string FormatError(const Status& status);

/// Shed response: "OVERLOADED <retry-after-ms>".
std::string FormatOverloaded(double retry_after_ms);

/// Expired response: "DEADLINE_EXCEEDED".
std::string FormatDeadlineExceeded();

/// Maps a failure Status to its wire line: kUnavailable becomes
/// "OVERLOADED <retry_after_ms>", kDeadlineExceeded becomes
/// "DEADLINE_EXCEEDED", everything else "err <code> <message>".
std::string FormatFailure(const Status& status, double retry_after_ms);

}  // namespace serve
}  // namespace weber

#endif  // WEBER_SERVE_PROTOCOL_H_

// Newline-delimited request/response protocol of weber_serve.
//
// Requests (one per line, space-separated tokens; block names contain no
// whitespace by construction):
//
//   assign <block> <doc>    add block document <doc> to the live partition
//   query <block> <doc>     resolve the document against the snapshot
//   compact <block>         batch re-resolve the shard, swap the snapshot
//   compact                 compact every shard
//   dump <block>            snapshot partition as doc:label pairs
//   stats                   service stats as one-line JSON
//   metrics                 Prometheus text exposition of the metrics
//                           registry: "ok <n>" followed by n payload lines
//   ping                    liveness check
//   quit                    close the connection / stop the stdio loop
//
// assign/query/compact accept an optional trailing "deadline <ms>" pair
// (the token is case-insensitive, so "DEADLINE 50" also parses): the
// client's per-request latency budget, measured from parse time. Work
// that cannot finish inside the budget is abandoned and answered with
// DEADLINE_EXCEEDED.
//
// Responses (one line per request):
//
//   ok [fields...]          assign/query: "ok <cluster> <version>";
//                           compact: "ok <version>"; dump: "ok <n>
//                           <doc>:<label> ..."; stats: "ok <json>";
//                           metrics: "ok <n>" plus n further lines (the
//                           only multi-line response in the protocol)
//   OVERLOADED <ms>         the request was shed before any state changed
//                           (queue cap, connection cap, or open breaker);
//                           retrying after <ms> milliseconds is safe
//   DEADLINE_EXCEEDED       the request's deadline passed; assigns are
//                           idempotent, so a re-send with a fresh deadline
//                           is safe
//   err <code> <message>    <code> is the StatusCode name; message has
//                           newlines stripped
//
// The grammar is line-oriented on purpose: it works identically over
// stdin/stdout and a TCP byte stream, and a load generator can pipeline
// requests without framing logic. Request lines are capped at
// kMaxRequestLineBytes — longer (or NUL-carrying) lines are rejected with
// InvalidArgument instead of growing an unbounded buffer for a malicious
// or broken client.

#ifndef WEBER_SERVE_PROTOCOL_H_
#define WEBER_SERVE_PROTOCOL_H_

#include <string>

#include "common/result.h"

namespace weber {
namespace serve {

/// Hard cap on one request line. Every legal request fits in a fraction of
/// this; anything longer is an attack or a framing bug, not traffic.
inline constexpr size_t kMaxRequestLineBytes = 4096;

struct Request {
  enum class Op {
    kAssign,
    kQuery,
    kCompact,
    kCompactAll,
    kDump,
    kStats,
    kMetrics,
    kPing,
    kQuit,
  };

  Op op = Op::kPing;
  std::string block;
  int doc = -1;
  /// Client latency budget from the optional "deadline <ms>" suffix
  /// (0 = none given).
  double deadline_ms = 0.0;
};

/// Parses one request line. Returns InvalidArgument for unknown verbs,
/// missing arguments, a non-numeric document id, an oversized line, an
/// embedded NUL, or a malformed deadline suffix.
Result<Request> ParseRequest(const std::string& line);

/// Formats an error response ("err <code> <message>", single line).
std::string FormatError(const Status& status);

/// Shed response: "OVERLOADED <retry-after-ms>".
std::string FormatOverloaded(double retry_after_ms);

/// Expired response: "DEADLINE_EXCEEDED".
std::string FormatDeadlineExceeded();

/// Maps a failure Status to its wire line: kUnavailable becomes
/// "OVERLOADED <retry_after_ms>", kDeadlineExceeded becomes
/// "DEADLINE_EXCEEDED", everything else "err <code> <message>".
std::string FormatFailure(const Status& status, double retry_after_ms);

}  // namespace serve
}  // namespace weber

#endif  // WEBER_SERVE_PROTOCOL_H_

// SimilarityCache: a sharded LRU memo of per-function pair similarities.
//
// The serving layer scores the same document pairs again and again — the
// greedy assignment path when a shard grows, queries against snapshot
// clusters, and every background batch re-resolution recomputes the full
// pairwise matrix. All of them key their scores here as
// (shard, function, unordered doc pair), so one computation serves every
// consumer. Shard count bounds lock contention; capacity bounds memory via
// per-shard LRU eviction. Hit/miss/eviction counters feed the service's
// exported stats.

#ifndef WEBER_SERVE_SIMILARITY_CACHE_H_
#define WEBER_SERVE_SIMILARITY_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace weber {
namespace serve {

/// Identifies one cached similarity value. `a` and `b` are canonical
/// document ids within `shard` with a <= b (callers normalize; similarity
/// functions are symmetric).
struct CacheKey {
  uint32_t shard = 0;
  uint32_t function = 0;
  uint32_t a = 0;
  uint32_t b = 0;

  bool operator==(const CacheKey& other) const = default;
};

struct CacheStats {
  long long hits = 0;
  long long misses = 0;
  long long evictions = 0;
  long long entries = 0;

  double HitRate() const {
    const long long total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Thread-safe sharded LRU cache. Keys hash to a fixed lock-striped shard;
/// each shard maintains its own recency list, so eviction is LRU per stripe
/// (the standard sharded-cache approximation of global LRU).
class SimilarityCache {
 public:
  struct Options {
    /// Total entries across all stripes (floor of 1 per stripe).
    size_t capacity = 1 << 20;
    /// Lock stripes; rounded up to a power of two, clamped to [1, 256].
    int num_shards = 16;
  };

  SimilarityCache();
  explicit SimilarityCache(Options options);

  /// Returns true and fills `*value` on a hit; records a miss otherwise.
  bool Lookup(const CacheKey& key, double* value);

  /// Inserts or refreshes the value, evicting the stripe's LRU entry when
  /// over capacity.
  void Insert(const CacheKey& key, double value);

  /// Drops every entry (counters are preserved).
  void Clear();

  CacheStats Stats() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    CacheKey key;
    double value;
  };

  struct KeyHash {
    size_t operator()(const CacheKey& k) const {
      // SplitMix64 finalizer over the packed key: cheap and well mixed.
      uint64_t x = (static_cast<uint64_t>(k.shard) << 32) ^ k.function;
      x ^= (static_cast<uint64_t>(k.a) << 32) | k.b;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
      return static_cast<size_t>(x ^ (x >> 31));
    }
  };

  struct Stripe {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<CacheKey, std::list<Entry>::iterator, KeyHash> index;
  };

  Stripe& StripeFor(const CacheKey& key) {
    return stripes_[KeyHash{}(key)&stripe_mask_];
  }

  size_t capacity_;
  size_t per_stripe_capacity_;
  size_t stripe_mask_;
  std::vector<Stripe> stripes_;

  std::atomic<long long> hits_{0};
  std::atomic<long long> misses_{0};
  std::atomic<long long> evictions_{0};
};

}  // namespace serve
}  // namespace weber

#endif  // WEBER_SERVE_SIMILARITY_CACHE_H_

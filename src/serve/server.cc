#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <utility>

#include "common/string_util.h"
#include "serve/protocol.h"

namespace weber {
namespace serve {

namespace {

std::string FormatOk(uint64_t version, int cluster) {
  std::string out = "ok ";
  out += std::to_string(cluster);
  out += ' ';
  out += std::to_string(version);
  return out;
}

}  // namespace

LineServer::~LineServer() { StopTcp(); }

std::string LineServer::HandleLine(const std::string& line, bool* quit) {
  *quit = false;
  Result<Request> parsed = ParseRequest(line);
  if (!parsed.ok()) return FormatError(parsed.status());
  const Request& request = parsed.ValueOrDie();
  switch (request.op) {
    case Request::Op::kAssign: {
      Result<AssignResult> result = service_->Assign(request.block,
                                                     request.doc);
      if (!result.ok()) return FormatError(result.status());
      return FormatOk(result.ValueOrDie().snapshot_version, result.ValueOrDie().cluster);
    }
    case Request::Op::kQuery: {
      Result<QueryResult> result = service_->Query(request.block, request.doc);
      if (!result.ok()) return FormatError(result.status());
      return FormatOk(result.ValueOrDie().snapshot_version, result.ValueOrDie().cluster);
    }
    case Request::Op::kCompact: {
      Status status = service_->Compact(request.block);
      if (!status.ok()) return FormatError(status);
      auto snapshot = service_->Snapshot(request.block);
      if (!snapshot.ok()) return FormatError(snapshot.status());
      return "ok " + std::to_string(snapshot.ValueOrDie()->version);
    }
    case Request::Op::kCompactAll: {
      Status status = service_->CompactAll();
      if (!status.ok()) return FormatError(status);
      return "ok " + std::to_string(service_->block_names().size());
    }
    case Request::Op::kDump: {
      Result<std::vector<int>> labels = service_->DumpPartition(request.block);
      if (!labels.ok()) return FormatError(labels.status());
      std::string out = "ok ";
      out += std::to_string(labels.ValueOrDie().size());
      for (size_t i = 0; i < labels.ValueOrDie().size(); ++i) {
        out += ' ';
        out += std::to_string(i);
        out += ':';
        out += std::to_string(labels.ValueOrDie()[i]);
      }
      return out;
    }
    case Request::Op::kStats: {
      std::ostringstream os;
      service_->WriteStatsJson(os);
      return "ok " + os.str();
    }
    case Request::Op::kPing:
      return "ok";
    case Request::Op::kQuit:
      *quit = true;
      return "ok";
  }
  return FormatError(Status::Internal("unhandled request op"));
}

Status LineServer::ServeStdio(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (TrimWhitespace(line).empty()) continue;
    bool quit = false;
    out << HandleLine(line, &quit) << '\n';
    out.flush();
    if (quit) break;
  }
  return Status::OK();
}

Status LineServer::ServeFd(int in_fd, std::ostream& out, int stop_fd) {
  std::string buffer;
  char chunk[4096];
  bool quit = false;
  while (!quit) {
    size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      // All buffered complete requests are answered; wait for more input
      // or a stop byte. Checking stop only here means a request that has
      // fully arrived is never dropped by shutdown.
      pollfd fds[2];
      fds[0] = {in_fd, POLLIN, 0};
      fds[1] = {stop_fd, POLLIN, 0};
      const nfds_t nfds = stop_fd >= 0 ? 2 : 1;
      if (::poll(fds, nfds, -1) < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("poll(): ", std::strerror(errno));
      }
      if (stop_fd >= 0 && (fds[1].revents & (POLLIN | POLLHUP))) break;
      if (!(fds[0].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      ssize_t n = ::read(in_fd, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("read(fd ", in_fd,
                               "): ", std::strerror(errno));
      }
      if (n == 0) break;  // EOF
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (TrimWhitespace(line).empty()) continue;
    out << HandleLine(line, &quit) << '\n';
    out.flush();
  }
  return Status::OK();
}

Status LineServer::StartTcp(int port) {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("TCP server already started");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket(): ", std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("bind(127.0.0.1:", port, "): ", error);
  }
  if (::listen(fd, 64) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("listen(): ", error);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("getsockname(): ", error);
  }
  listen_fd_ = fd;
  tcp_port_ = ntohs(addr.sin_port);
  stopping_.store(false, std::memory_order_relaxed);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void LineServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;  // Listener closed or broken; nothing sensible to retry.
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(conn);
      break;
    }
    conn_fds_.push_back(conn);
    conn_threads_.emplace_back([this, conn] { HandleConnection(conn); });
  }
}

void LineServer::HandleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool quit = false;
  while (!quit && !stopping_.load(std::memory_order_acquire)) {
    size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (TrimWhitespace(line).empty()) continue;
    std::string response = HandleLine(line, &quit);
    response += '\n';
    size_t sent = 0;
    while (sent < response.size()) {
      ssize_t n = ::send(fd, response.data() + sent, response.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) {
        quit = true;
        break;
      }
      sent += static_cast<size_t>(n);
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

void LineServer::StopTcp() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  // Closing the listener unblocks accept(); shutting the connections down
  // unblocks recv() in the handler threads.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    // SHUT_RD, not RDWR: recv() in the handler unblocks (drain begins) but
    // the write side stays open, so a response in flight still reaches its
    // client before the handler closes the socket.
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
    conn_fds_.clear();
    handlers.swap(conn_threads_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  listen_fd_ = -1;
  tcp_port_ = -1;
}

void LineServer::WaitTcp() {
  if (acceptor_.joinable()) acceptor_.join();
}

Status LineConnection::Connect(const std::string& host, int port) {
  Close();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket(): ", std::string(std::strerror(errno)));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad IPv4 address '", host, "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("connect(", host, ":", port, "): ", error);
  }
  fd_ = fd;
  buffer_.clear();
  return Status::OK();
}

Status LineConnection::SendLine(const std::string& line) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string payload = line;
  payload += '\n';
  size_t sent = 0;
  while (sent < payload.size()) {
    ssize_t n = ::send(fd_, payload.data() + sent, payload.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      return Status::IOError("send(): ", std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> LineConnection::ReadLine() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  char chunk[4096];
  while (true) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      return Status::IOError("connection closed");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

void LineConnection::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace serve
}  // namespace weber

#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/json_writer.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "durability/snapshot_file.h"
#include "durability/wal.h"
#include "serve/protocol.h"

namespace weber {
namespace serve {

namespace {

std::string FormatOk(uint64_t version, int cluster) {
  std::string out = "ok ";
  out += std::to_string(cluster);
  out += ' ';
  out += std::to_string(version);
  return out;
}

int PollTimeoutMs(double ms) {
  return std::max(1, static_cast<int>(std::ceil(ms)));
}

/// The byte budget of the partial line in `buffer`: `import` lines carry a
/// hex-encoded shard and get the larger cap, everything else the tight one.
/// By the time either cap can trip, the verb prefix has long since arrived.
size_t LineCapFor(const std::string& buffer) {
  return buffer.rfind("import ", 0) == 0 ? kMaxImportLineBytes
                                         : kMaxRequestLineBytes;
}

}  // namespace

LineServer::~LineServer() { StopTcp(); }

std::string LineServer::HandleLine(const std::string& line, bool* quit) {
  // Generic front-end mode: the handler owns the whole protocol surface
  // (the router answers stats/metrics itself, with its own registry).
  if (handler_) return handler_(line, quit);
  // With a trace collector configured each request line gets a fresh
  // request ID (ambient for every span recorded below this frame) and a
  // whole-request span — which is also the slow-request log trigger when
  // the collector carries a slow threshold. Without one, all of this is
  // free of clock reads.
  obs::TraceCollector* trace = service_->trace_collector();
  obs::RequestIdScope id_scope(trace != nullptr ? trace->NextRequestId() : 0);
  obs::ScopedSpan request_span(trace, "serve.request");
  *quit = false;
  Result<Request> parsed = [&] {
    obs::ScopedSpan parse_span(trace, "serve.parse");
    return ParseRequest(line);
  }();
  if (!parsed.ok()) return FormatError(parsed.status());
  const Request& request = parsed.ValueOrDie();
  // The deadline clock starts at parse time; FormatFailure maps service
  // Unavailable / DeadlineExceeded statuses to the OVERLOADED /
  // DEADLINE_EXCEEDED wire responses.
  const RequestDeadline deadline = RequestDeadline::In(request.deadline_ms);
  const double retry = options_.retry_after_ms;
  switch (request.op) {
    case Request::Op::kAssign: {
      Result<AssignResult> result =
          service_->Assign(request.block, request.doc, deadline);
      if (!result.ok()) return FormatFailure(result.status(), retry);
      return FormatOk(result.ValueOrDie().snapshot_version, result.ValueOrDie().cluster);
    }
    case Request::Op::kQuery: {
      Result<QueryResult> result =
          service_->Query(request.block, request.doc, deadline);
      if (!result.ok()) return FormatFailure(result.status(), retry);
      return FormatOk(result.ValueOrDie().snapshot_version, result.ValueOrDie().cluster);
    }
    case Request::Op::kMatch: {
      Result<MatchResult> result =
          service_->Match(request.block, request.docs, deadline);
      if (!result.ok()) return FormatFailure(result.status(), retry);
      const MatchResult& match = result.ValueOrDie();
      std::string out = "ok ";
      out += std::to_string(match.clusters.size());
      for (size_t i = 0; i < match.clusters.size(); ++i) {
        out += ' ';
        out += std::to_string(request.docs[i]);
        out += ':';
        out += std::to_string(match.clusters[i]);
      }
      return out;
    }
    case Request::Op::kCompact: {
      Status status = service_->Compact(request.block, deadline);
      if (!status.ok()) return FormatFailure(status, retry);
      auto snapshot = service_->Snapshot(request.block);
      if (!snapshot.ok()) return FormatError(snapshot.status());
      return "ok " + std::to_string(snapshot.ValueOrDie()->version);
    }
    case Request::Op::kCompactAll: {
      Status status = service_->CompactAll();
      if (!status.ok()) return FormatFailure(status, retry);
      return "ok " + std::to_string(service_->block_names().size());
    }
    case Request::Op::kDump: {
      Result<std::vector<int>> labels = service_->DumpPartition(request.block);
      if (!labels.ok()) return FormatError(labels.status());
      std::string out = "ok ";
      out += std::to_string(labels.ValueOrDie().size());
      for (size_t i = 0; i < labels.ValueOrDie().size(); ++i) {
        out += ' ';
        out += std::to_string(i);
        out += ':';
        out += std::to_string(labels.ValueOrDie()[i]);
      }
      return out;
    }
    case Request::Op::kStats:
      return StatsResponse(request.shard_detail);
    case Request::Op::kMetrics:
      return MetricsResponse();
    case Request::Op::kExport: {
      Result<ShardExport> result = service_->ExportShard(request.block);
      if (!result.ok()) return FormatFailure(result.status(), retry);
      const ShardExport& exported = result.ValueOrDie();
      Result<std::string> payload =
          durability::EncodeSnapshotPayload(exported.snapshot);
      if (!payload.ok()) return FormatError(payload.status());
      const long long frames = 1 + static_cast<long long>(exported.tail.size());
      if (frames > kMaxExportFrames) {
        return FormatError(Status::OutOfRange(
            "export of '", request.block, "' needs ", frames,
            " frames, over the ", kMaxExportFrames, "-frame cap"));
      }
      // Multi-line response, same framing as `metrics`: one string with
      // embedded newlines; the serving loop appends the final one.
      std::string response = "ok " + std::to_string(frames);
      response += '\n';
      response += FormatExportFrame(payload.ValueOrDie());
      for (int32_t doc : exported.tail) {
        response += '\n';
        response += FormatExportFrame(
            durability::WalRecord::Assign(doc).Encode());
      }
      return response;
    }
    case Request::Op::kImport: {
      Result<std::vector<std::string>> frames =
          SplitImportBlob(request.blob);
      if (!frames.ok()) return FormatError(frames.status());
      ShardExport exported;
      Result<durability::ShardSnapshotData> snap =
          durability::DecodeSnapshotPayload(
              frames.ValueOrDie()[0], "imported for '" + request.block + "'");
      if (!snap.ok()) return FormatError(snap.status());
      exported.snapshot = std::move(snap).ValueOrDie();
      for (size_t i = 1; i < frames.ValueOrDie().size(); ++i) {
        Result<durability::WalRecord> record =
            durability::WalRecord::Decode(frames.ValueOrDie()[i]);
        if (!record.ok()) return FormatError(record.status());
        if (record.ValueOrDie().type !=
            durability::WalRecord::Type::kAssign) {
          return FormatError(Status::Corruption(
              "import tail frame ", i, " is not an Assign record"));
        }
        exported.tail.push_back(record.ValueOrDie().doc);
      }
      Result<ImportOutcome> outcome =
          service_->ImportShard(request.block, exported);
      if (!outcome.ok()) return FormatFailure(outcome.status(), retry);
      return "ok " + std::to_string(outcome.ValueOrDie().version) + ' ' +
             std::to_string(outcome.ValueOrDie().documents);
    }
    case Request::Op::kMigrate:
      return FormatError(Status::InvalidArgument(
          "'migrate' is a router admin verb; backends serve export/import"));
    case Request::Op::kRebalance:
      return FormatError(Status::InvalidArgument(
          "'rebalance' is a router admin verb; backends serve export/import"));
    case Request::Op::kDrain:
      return FormatError(Status::InvalidArgument(
          "'drain' is a router admin verb; backends serve export/import"));
    case Request::Op::kPing:
      return "ok";
    case Request::Op::kQuit:
      *quit = true;
      return "ok";
  }
  return FormatError(Status::Internal("unhandled request op"));
}

ServerStats LineServer::stats() const {
  ServerStats s;
  s.connections_accepted = accepted_.load(std::memory_order_relaxed);
  s.accept_sheds = accept_sheds_.load(std::memory_order_relaxed);
  s.read_timeouts = read_timeouts_.load(std::memory_order_relaxed);
  s.write_timeouts = write_timeouts_.load(std::memory_order_relaxed);
  s.oversized_lines = oversized_lines_.load(std::memory_order_relaxed);
  s.active_connections = active_conns_.load(std::memory_order_relaxed);
  return s;
}

std::string LineServer::StatsResponse(bool shard_detail) const {
  const ServerStats s = stats();
  const bool configured = options_.max_connections > 0 ||
                          options_.read_timeout_ms > 0 ||
                          options_.write_timeout_ms > 0 ||
                          options_.listen_backlog != ServerOptions().listen_backlog;
  const bool fired = s.accept_sheds + s.read_timeouts + s.write_timeouts +
                         s.oversized_lines >
                     0;
  std::ostringstream os;
  if (!configured && !fired) {
    // Byte-identical to the pre-overload stats line when nothing is set.
    service_->WriteStatsJson(os, nullptr, shard_detail);
  } else {
    service_->WriteStatsJson(
        os,
        [&](JsonWriter& json) {
          json.Key("server").BeginObject();
          json.Key("connections_accepted").Number(s.connections_accepted);
          json.Key("active_connections").Number(s.active_connections);
          json.Key("accept_sheds").Number(s.accept_sheds);
          json.Key("read_timeouts").Number(s.read_timeouts);
          json.Key("write_timeouts").Number(s.write_timeouts);
          json.Key("oversized_lines").Number(s.oversized_lines);
          json.Key("max_connections").Number(options_.max_connections);
          json.Key("listen_backlog").Number(options_.listen_backlog);
          json.EndObject();
        },
        shard_detail);
  }
  return "ok " + os.str();
}

std::string LineServer::MetricsResponse() const {
  std::ostringstream os;
  service_->WriteMetricsText(os);
  // The server's counters live here, not in the service registry, because
  // the server may be destroyed while the service (and its registry) lives
  // on — so they are rendered locally instead of through callbacks.
  const ServerStats s = stats();
  auto simple = [&os](const char* name, const char* help, const char* type,
                      long long value) {
    os << "# HELP " << name << ' ' << help << '\n';
    os << "# TYPE " << name << ' ' << type << '\n';
    os << name << ' ' << value << '\n';
  };
  simple("weber_server_connections_accepted_total", "TCP connections accepted",
         "counter", s.connections_accepted);
  simple("weber_server_active_connections", "Currently open TCP connections",
         "gauge", s.active_connections);
  simple("weber_server_accept_sheds_total",
         "Connections shed at the max-connections cap", "counter",
         s.accept_sheds);
  simple("weber_server_read_timeouts_total",
         "Connections dropped for idling past the read timeout", "counter",
         s.read_timeouts);
  simple("weber_server_write_timeouts_total",
         "Connections dropped for not absorbing a response in time",
         "counter", s.write_timeouts);
  simple("weber_server_oversized_lines_total",
         "Request lines rejected at the byte cap", "counter",
         s.oversized_lines);
  if (obs::TraceCollector* trace = service_->trace_collector()) {
    simple("weber_trace_spans_total", "Trace spans recorded", "counter",
           trace->spans_recorded());
    simple("weber_trace_slow_spans_total",
           "Spans at or over the slow-request threshold", "counter",
           trace->slow_spans());
  }
  std::string payload = os.str();
  const long long lines =
      std::count(payload.begin(), payload.end(), '\n');
  std::string response = "ok " + std::to_string(lines);
  if (!payload.empty()) {
    payload.pop_back();  // the server loop appends the final newline
    response += '\n';
    response += payload;
  }
  return response;
}

Status LineServer::ServeStdio(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (TrimWhitespace(line).empty()) continue;
    bool quit = false;
    out << HandleLine(line, &quit) << '\n';
    out.flush();
    if (quit) break;
  }
  return Status::OK();
}

Status LineServer::ServeFd(int in_fd, std::ostream& out, int stop_fd) {
  std::string buffer;
  char chunk[4096];
  bool quit = false;
  bool discarding = false;  // inside an oversized line, skipping to '\n'
  while (!quit) {
    size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      // Oversized-line containment: answer once, then drop bytes until the
      // next newline instead of growing the buffer without bound.
      if (const size_t cap = LineCapFor(buffer); buffer.size() > cap) {
        if (!discarding) {
          discarding = true;
          oversized_lines_.fetch_add(1, std::memory_order_relaxed);
          out << FormatError(Status::InvalidArgument(
                     "request line exceeds the ", cap,
                     "-byte cap; discarding until newline"))
              << '\n';
          out.flush();
        }
        buffer.clear();
      }
      // All buffered complete requests are answered; wait for more input
      // or a stop byte. Checking stop only here means a request that has
      // fully arrived is never dropped by shutdown.
      pollfd fds[2];
      fds[0] = {in_fd, POLLIN, 0};
      fds[1] = {stop_fd, POLLIN, 0};
      const nfds_t nfds = stop_fd >= 0 ? 2 : 1;
      if (::poll(fds, nfds, -1) < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("poll(): ", std::strerror(errno));
      }
      if (stop_fd >= 0 && (fds[1].revents & (POLLIN | POLLHUP))) break;
      if (!(fds[0].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      ssize_t n = ::read(in_fd, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("read(fd ", in_fd,
                               "): ", std::strerror(errno));
      }
      if (n == 0) break;  // EOF
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (discarding) {
      discarding = false;  // the oversized line's tail; already answered
      continue;
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (TrimWhitespace(line).empty()) continue;
    out << HandleLine(line, &quit) << '\n';
    out.flush();
  }
  return Status::OK();
}

Status LineServer::StartTcp(int port) {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("TCP server already started");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket(): ", std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("bind(127.0.0.1:", port, "): ", error);
  }
  if (::listen(fd, options_.listen_backlog) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("listen(): ", error);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("getsockname(): ", error);
  }
  listen_fd_ = fd;
  tcp_port_ = ntohs(addr.sin_port);
  stopping_.store(false, std::memory_order_relaxed);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void LineServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;  // Listener closed or broken; nothing sensible to retry.
    }
    // Connection-level admission control: shedding here costs one line and
    // a close instead of a handler thread the box cannot afford. The
    // client gets an explicit retry hint rather than a silent kernel-queue
    // drop, so well-behaved load generators back off.
    if (options_.max_connections > 0 &&
        active_conns_.load(std::memory_order_acquire) >=
            options_.max_connections) {
      accept_sheds_.fetch_add(1, std::memory_order_relaxed);
      std::string shed = FormatOverloaded(options_.retry_after_ms);
      shed += '\n';
      (void)::send(conn, shed.data(), shed.size(), MSG_NOSIGNAL);
      ::close(conn);
      continue;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(conn);
      break;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_conns_.fetch_add(1, std::memory_order_acq_rel);
    conn_fds_.push_back(conn);
    conn_threads_.emplace_back([this, conn] { HandleConnection(conn); });
  }
}

void LineServer::HandleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool quit = false;
  bool discarding = false;  // inside an oversized line, skipping to '\n'

  // Bounded send: honors the write timeout (a client that stopped reading
  // must not pin a handler thread forever) and reports success.
  auto send_all = [&](const std::string& payload) -> bool {
    size_t sent = 0;
    while (sent < payload.size()) {
      if (options_.write_timeout_ms > 0) {
        pollfd pfd = {fd, POLLOUT, 0};
        int ready = ::poll(&pfd, 1, PollTimeoutMs(options_.write_timeout_ms));
        if (ready < 0 && errno == EINTR) continue;
        if (ready <= 0) {
          write_timeouts_.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
      }
      ssize_t n = ::send(fd, payload.data() + sent, payload.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  };

  while (!quit && !stopping_.load(std::memory_order_acquire)) {
    size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      if (const size_t cap = LineCapFor(buffer); buffer.size() > cap) {
        // Same containment as ServeFd: one error response, then resync at
        // the next newline instead of buffering an unbounded line.
        if (!discarding) {
          discarding = true;
          oversized_lines_.fetch_add(1, std::memory_order_relaxed);
          std::string err = FormatError(Status::InvalidArgument(
              "request line exceeds the ", cap,
              "-byte cap; discarding until newline"));
          err += '\n';
          if (!send_all(err)) break;
        }
        buffer.clear();
      }
      if (options_.read_timeout_ms > 0) {
        pollfd pfd = {fd, POLLIN, 0};
        int ready = ::poll(&pfd, 1, PollTimeoutMs(options_.read_timeout_ms));
        if (ready < 0 && errno == EINTR) continue;
        if (ready == 0) {
          // Idle past the budget: drop the connection so a stalled or
          // malicious client cannot hold a handler slot open.
          read_timeouts_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        if (ready < 0) break;
      }
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (discarding) {
      discarding = false;  // the oversized line's tail; already answered
      continue;
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (TrimWhitespace(line).empty()) continue;
    std::string response = HandleLine(line, &quit);
    response += '\n';
    if (!send_all(response)) quit = true;
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  active_conns_.fetch_sub(1, std::memory_order_acq_rel);
}

void LineServer::StopTcp() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  // Closing the listener unblocks accept(); shutting the connections down
  // unblocks recv() in the handler threads.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    // SHUT_RD, not RDWR: recv() in the handler unblocks (drain begins) but
    // the write side stays open, so a response in flight still reaches its
    // client before the handler closes the socket.
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
    conn_fds_.clear();
    handlers.swap(conn_threads_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  listen_fd_ = -1;
  tcp_port_ = -1;
}

void LineServer::WaitTcp() {
  if (acceptor_.joinable()) acceptor_.join();
}

}  // namespace serve
}  // namespace weber

// LineServer: drives a ResolutionService with the newline-delimited
// protocol (serve/protocol.h) over stdin/stdout and/or a POSIX TCP socket.
//
// The TCP listener accepts on 127.0.0.1 and spawns one handler thread per
// connection; all connections share the one ResolutionService, which is the
// point — concurrent clients exercise the service's locking, batching and
// snapshot machinery. LineConnection is the matching buffered client used
// by weber_loadgen and the tests.
//
// Overload protection (all off by default; see DESIGN.md, "Overload &
// admission control"): a configurable listen backlog, a max-connections cap
// (excess accepts are answered with one OVERLOADED line and closed), per-
// connection read/write timeouts, and oversized-line containment — a line
// that exceeds kMaxRequestLineBytes without a newline is answered with one
// error and discarded up to the next newline instead of growing the buffer
// without bound. Service-level Unavailable / DeadlineExceeded statuses are
// mapped to the OVERLOADED / DEADLINE_EXCEEDED wire responses.

#ifndef WEBER_SERVE_SERVER_H_
#define WEBER_SERVE_SERVER_H_

#include <atomic>
#include <istream>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "common/net_util.h"
#include "common/result.h"
#include "serve/resolution_service.h"

namespace weber {
namespace serve {

struct ServerOptions {
  /// listen(2) backlog of the TCP listener. Connections past it are
  /// dropped by the kernel before accept() ever sees them.
  int listen_backlog = 64;
  /// Concurrent TCP connections admitted; further accepts get one
  /// "OVERLOADED <retry-after>" line and are closed (0 = unlimited).
  int max_connections = 0;
  /// Close a connection idle longer than this between requests (0 = never).
  double read_timeout_ms = 0.0;
  /// Give up on a connection that cannot absorb a response within this
  /// (0 = block until the kernel buffer drains).
  double write_timeout_ms = 0.0;
  /// Retry hint carried by every OVERLOADED response.
  double retry_after_ms = 50.0;
};

/// Connection-level counters (TCP and fd serving combined).
struct ServerStats {
  long long connections_accepted = 0;
  /// Connections shed at the max_connections cap.
  long long accept_sheds = 0;
  long long read_timeouts = 0;
  long long write_timeouts = 0;
  /// Request lines rejected (and resynced past) at kMaxRequestLineBytes.
  long long oversized_lines = 0;
  int active_connections = 0;
};

/// A request-line handler: answers one line (no trailing newline) and sets
/// `*quit` to close the connection. Must be thread-safe — the TCP path
/// invokes it from one thread per connection.
using LineHandlerFn = std::function<std::string(const std::string& line,
                                                bool* quit)>;

class LineServer {
 public:
  /// The service must outlive the server.
  explicit LineServer(ResolutionService* service, ServerOptions options = {})
      : service_(service), options_(options) {}

  /// Generic front-end mode: every request line is answered by `handler`
  /// instead of the built-in service dispatch. This is how weber_router
  /// reuses the whole TCP layer (accept sheds, read/write timeouts,
  /// oversized-line containment, graceful drain) without a
  /// ResolutionService behind it.
  explicit LineServer(LineHandlerFn handler, ServerOptions options = {})
      : service_(nullptr), handler_(std::move(handler)), options_(options) {}

  ~LineServer();

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// Handles one request line and returns the response line (without the
  /// trailing newline). Sets `*quit` when the request asks to close.
  std::string HandleLine(const std::string& line, bool* quit);

  /// Serves until EOF or a `quit` request. Blank lines are ignored.
  Status ServeStdio(std::istream& in, std::ostream& out);

  /// As ServeStdio but reading raw file descriptor `in_fd` through poll(),
  /// so the loop can also be interrupted by a byte (or EOF) on `stop_fd` —
  /// the graceful-shutdown path (pass -1 for no stop descriptor). Fully
  /// received requests already buffered are answered before the loop
  /// returns; a partial trailing line is discarded.
  Status ServeFd(int in_fd, std::ostream& out, int stop_fd);

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port), starts the
  /// acceptor thread and returns. Serves until StopTcp().
  Status StartTcp(int port);

  /// The bound port (valid after StartTcp succeeded).
  int tcp_port() const { return tcp_port_; }

  /// Closes the listener and every open connection, then joins all handler
  /// threads. Safe to call twice; called by the destructor.
  void StopTcp();

  /// Blocks until StopTcp() is called from another thread.
  void WaitTcp();

  ServerStats stats() const;

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// Emits the service stats JSON, appending the "server" section when the
  /// server's overload features are configured or any counter is nonzero.
  /// `shard_detail` forwards the `stats shards` request for per-shard
  /// planner inputs.
  std::string StatsResponse(bool shard_detail) const;
  /// Prometheus text exposition: the service registry's families followed
  /// by the server's own connection counters (and the trace collector's
  /// span counters when tracing is on). Returns "ok <n>" plus n payload
  /// lines — the protocol's only multi-line response.
  std::string MetricsResponse() const;

  ResolutionService* service_;
  LineHandlerFn handler_;
  ServerOptions options_;

  std::atomic<long long> accepted_{0};
  std::atomic<long long> accept_sheds_{0};
  std::atomic<long long> read_timeouts_{0};
  std::atomic<long long> write_timeouts_{0};
  std::atomic<long long> oversized_lines_{0};
  std::atomic<int> active_conns_{0};

  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  int tcp_port_ = -1;
  std::thread acceptor_;

  std::mutex conn_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

/// Buffered line-oriented TCP client for the protocol. A thin veneer over
/// net::LineSocket (common/net_util.h), kept for its established API.
class LineConnection {
 public:
  LineConnection() = default;

  LineConnection(const LineConnection&) = delete;
  LineConnection& operator=(const LineConnection&) = delete;

  Status Connect(const std::string& host, int port) {
    return socket_.Connect(host, port);
  }

  /// Writes `line` plus a newline.
  Status SendLine(const std::string& line) { return socket_.SendLine(line); }

  /// Reads up to the next newline (stripped). IOError on EOF.
  Result<std::string> ReadLine() { return socket_.ReadLine(); }

  /// Round-trip helper.
  Result<std::string> Call(const std::string& line) {
    return socket_.Call(line);
  }

  /// Half-closes both directions without releasing the fd: a reader blocked
  /// in ReadLine() on another thread wakes with EOF, which Close() from a
  /// second thread does not guarantee. Used by the open-loop load generator
  /// to stop its reader thread.
  void Shutdown() { socket_.Shutdown(); }

  void Close() { socket_.Close(); }
  bool connected() const { return socket_.connected(); }

 private:
  net::LineSocket socket_;
};

}  // namespace serve
}  // namespace weber

#endif  // WEBER_SERVE_SERVER_H_

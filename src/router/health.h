// Per-backend health state machine for weber::router.
//
// Four states, driven by probe results and request transport outcomes:
//
//   healthy ---[suspect_after consecutive failures]---> suspect
//   suspect ---[down_after total consecutive failures]-> down
//   suspect ---[any success]--------------------------> healthy
//   down ------[successful probe]---------------------> probation
//   down ------[failure]------------------------------> down (stays)
//   probation -[probation_successes consecutive]------> healthy
//   probation -[any failure]--------------------------> down
//
// healthy / suspect / probation are routable; down is not. Suspect exists
// so one dropped packet does not unroute a backend (it keeps serving while
// the prober watches it more closely), and probation exists so a backend
// that just came back earns trust before it is considered fully healthy —
// a single failure during probation sends it straight back to down instead
// of costing another `down_after` failures.
//
// The machine is deliberately clock-free: callers pass `now_ms` (any
// monotonic millisecond scale) into every transition, so tests drive it
// with a manual clock and the router drives it with steady_clock. Not
// thread-safe; the router guards each backend's instance with the
// backend's mutex.

#ifndef WEBER_ROUTER_HEALTH_H_
#define WEBER_ROUTER_HEALTH_H_

namespace weber {
namespace router {

struct HealthOptions {
  /// Consecutive failures that demote healthy to suspect (>= 1).
  int suspect_after = 1;
  /// Total consecutive failures that demote suspect to down. Must be
  /// >= suspect_after; equal values skip the suspect grace period.
  int down_after = 3;
  /// Consecutive probe successes that promote probation to healthy (>= 1).
  int probation_successes = 2;
  /// Minimum gap between probes while down, so a dead backend is not
  /// dialed at the full probe cadence forever.
  double down_probe_interval_ms = 500.0;
};

enum class HealthState : int {
  kHealthy = 0,
  kSuspect = 1,
  kDown = 2,
  kProbation = 3,
};

const char* HealthStateName(HealthState state);

class BackendHealth {
 public:
  BackendHealth() = default;
  explicit BackendHealth(HealthOptions options);

  /// A successful probe or request round-trip at time `now_ms`.
  void OnSuccess(double now_ms);

  /// A transport failure (dial refused, timeout, reset, EOF) at `now_ms`.
  void OnFailure(double now_ms);

  /// Whether requests may be routed here (anything but down).
  bool Routable() const { return state_ != HealthState::kDown; }

  /// Whether the prober should dial this backend now. Routable backends
  /// are always probed on cadence; a down backend is probed at most every
  /// down_probe_interval_ms (measured from the last probe attempt).
  bool ShouldProbe(double now_ms) const;

  /// Records that a probe attempt was made (rate-limits down probes).
  void NoteProbe(double now_ms) { last_probe_ms_ = now_ms; }

  HealthState state() const { return state_; }
  int consecutive_failures() const { return consecutive_failures_; }

  /// Lifetime transition counters, for the router's stats/metrics.
  long long transitions() const { return transitions_; }
  long long times_down() const { return times_down_; }
  /// Milliseconds spent in down, summed over every down episode that has
  /// ended (a backend currently down contributes on its next recovery).
  double down_ms_total() const { return down_ms_total_; }
  /// When the current state was entered (the caller's now_ms scale).
  double state_since_ms() const { return state_since_ms_; }

 private:
  void Transition(HealthState next, double now_ms);

  HealthOptions options_;
  HealthState state_ = HealthState::kHealthy;
  int consecutive_failures_ = 0;
  int probation_successes_ = 0;
  double state_since_ms_ = 0.0;
  double last_probe_ms_ = -1e18;
  long long transitions_ = 0;
  long long times_down_ = 0;
  double down_ms_total_ = 0.0;
};

}  // namespace router
}  // namespace weber

#endif  // WEBER_ROUTER_HEALTH_H_

#include "router/health.h"

#include <algorithm>

namespace weber {
namespace router {

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kSuspect:
      return "suspect";
    case HealthState::kDown:
      return "down";
    case HealthState::kProbation:
      return "probation";
  }
  return "unknown";
}

BackendHealth::BackendHealth(HealthOptions options) : options_(options) {
  options_.suspect_after = std::max(1, options_.suspect_after);
  options_.down_after = std::max(options_.suspect_after, options_.down_after);
  options_.probation_successes = std::max(1, options_.probation_successes);
}

void BackendHealth::OnSuccess(double now_ms) {
  consecutive_failures_ = 0;
  switch (state_) {
    case HealthState::kHealthy:
      break;
    case HealthState::kSuspect:
      Transition(HealthState::kHealthy, now_ms);
      break;
    case HealthState::kDown:
      // The backend answered a probe: it earns probation, not health.
      probation_successes_ = 1;
      if (probation_successes_ >= options_.probation_successes) {
        Transition(HealthState::kHealthy, now_ms);
      } else {
        Transition(HealthState::kProbation, now_ms);
      }
      break;
    case HealthState::kProbation:
      if (++probation_successes_ >= options_.probation_successes) {
        Transition(HealthState::kHealthy, now_ms);
      }
      break;
  }
}

void BackendHealth::OnFailure(double now_ms) {
  ++consecutive_failures_;
  switch (state_) {
    case HealthState::kHealthy:
      if (consecutive_failures_ >= options_.down_after) {
        Transition(HealthState::kDown, now_ms);
      } else if (consecutive_failures_ >= options_.suspect_after) {
        Transition(HealthState::kSuspect, now_ms);
      }
      break;
    case HealthState::kSuspect:
      if (consecutive_failures_ >= options_.down_after) {
        Transition(HealthState::kDown, now_ms);
      }
      break;
    case HealthState::kDown:
      break;  // still down; nothing new to learn
    case HealthState::kProbation:
      // Trust not yet earned: one failure ends probation immediately.
      Transition(HealthState::kDown, now_ms);
      break;
  }
}

bool BackendHealth::ShouldProbe(double now_ms) const {
  if (state_ != HealthState::kDown) return true;
  return now_ms - last_probe_ms_ >= options_.down_probe_interval_ms;
}

void BackendHealth::Transition(HealthState next, double now_ms) {
  if (next == state_) return;
  if (state_ == HealthState::kDown) {
    down_ms_total_ += std::max(0.0, now_ms - state_since_ms_);
  }
  if (next == HealthState::kDown) {
    ++times_down_;
    probation_successes_ = 0;
  }
  if (next == HealthState::kHealthy || next == HealthState::kSuspect) {
    probation_successes_ = 0;
  }
  // consecutive_failures_ is managed by OnSuccess/OnFailure: it must carry
  // across healthy -> suspect so the suspect -> down threshold counts total
  // consecutive failures, not failures since the demotion.
  state_ = next;
  state_since_ms_ = now_ms;
  ++transitions_;
}

}  // namespace router
}  // namespace weber

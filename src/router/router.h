// weber::router — a fault-tolerant front-end for a fleet of weber_serve
// backends (see DESIGN.md, "Routing & fleet failover").
//
// The router speaks the same newline-delimited protocol as weber_serve on
// both sides: clients talk to it exactly as they would to a single server,
// and it forwards each request over TCP to the backend that owns the
// request's block. Ownership is rendezvous (highest-random-weight) hashing
// of the block name across the configured backends — stable under fleet
// membership the way modulo hashing is not, and it yields a full preference
// order per block for free, which is the read-failover order.
//
// Fault tolerance, in layers:
//   * A prober thread pings every backend on a fixed cadence and feeds the
//     per-backend health state machine (router/health.h). Down backends
//     are unrouted; recovered ones pass through probation first.
//   * Writes (assign/compact) go to the block's owner only — the owner's
//     store is the authority — behind a per-backend circuit breaker
//     (serve/overload.h) and a bounded retry loop with exponential backoff
//     and full jitter. A write that was never sent (owner down, breaker
//     open, dial refused) is answered `OVERLOADED <retry-ms>`, which
//     promises the fleet state did not change; a write that may have been
//     delivered but whose response was lost is answered `err Unavailable`
//     instead, because the promise would be a lie (assign is idempotent,
//     so clients retry safely either way).
//   * Reads (query) try the owner first and fail over down the block's
//     preference order to any live backend; a non-owner answer may be
//     stale by design (the paper's resolution state is convergent).
//   * Client deadlines propagate: each forwarded hop carries the remaining
//     budget, re-encoded as the protocol's `deadline <ms>` suffix.
//   * The `migrate <block> <endpoint>` admin verb re-homes one block
//     live: copy the shard (export/import) while the source keeps
//     serving, pause the block's writes (bounded by migrate_pause_ms) to
//     catch up the tail, then flip a per-block route override that every
//     forwarding path consults before the rendezvous order. Any failure
//     before the flip rolls back to the source; writes during the pause
//     get `OVERLOADED <remaining-ms>`, never silent loss.
//   * With --replicas=N (N > 1), acked writes are forwarded
//     asynchronously to the next N-1 backends in the block's route order
//     through a bounded queue, so a failover lands on a warm standby.
//   * The `rebalance <endpoint...>` admin verb turns fleet growth/shrink
//     into one supervised operation: it diffs current ownership against
//     the proposed backend list (rendezvous makes the diff pure — each
//     block stays or moves to one named new owner), orders the moves by
//     shard size / WAL bytes scraped from backend `stats shards`, and
//     executes them with bounded parallelism, per-move rollback, and a
//     `rebalance status` / `rebalance abort` progress surface.
//     `drain <endpoint>` migrates everything off one backend and then
//     marks it drained, so it can be decommissioned safely: new writes
//     that would land on it are durably re-homed to the next non-drained
//     backend in the block's preference order. The drained mark is only
//     set once the victim itself confirms (via `stats shards`) that it no
//     longer owns anything — an unreachable victim refuses the drain
//     rather than reporting a hollow success.
//     Admin verbs (migrate/rebalance/drain) serialize: a second one
//     arriving mid-plan is refused with FailedPrecondition, never
//     interleaved — the override table cannot tear.
//   * With --state-file, route overrides and drained marks are persisted
//     (CRC32C-trailed, atomic replace) on every flip and replayed on
//     restart, so a router crash cannot silently forget who owns what;
//     restored overrides are cross-checked against backend `stats shards`
//     and divergence is surfaced in stats rather than papered over.
//   * With --promote-after-ms, a backend that stays `down` past the
//     hard-loss deadline has its blocks promoted to the first routable
//     standby via an override flip (once per down episode), with the
//     possibly-lost unreplicated write count reported honestly.
//
// The router keeps its own obs::MetricsRegistry (per-backend counters and
// state gauges plus router totals) and answers `stats` / `metrics` itself
// rather than forwarding them — those verbs describe the router.
//
// Thread-safety: HandleLine is called concurrently (one thread per client
// connection under serve::LineServer's handler mode). Each backend's
// health, connection pool and probe bookkeeping are guarded by that
// backend's mutex; the breaker locks itself; counters are lock-free.

#ifndef WEBER_ROUTER_ROUTER_H_
#define WEBER_ROUTER_ROUTER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/net_util.h"
#include "common/random.h"
#include "common/result.h"
#include "router/health.h"
#include "serve/overload.h"
#include "serve/protocol.h"

namespace weber {
namespace router {

struct RouterOptions {
  /// Per-backend health thresholds (router/health.h).
  HealthOptions health;
  /// Per-backend write breaker; failure_threshold 0 disables breakers.
  serve::CircuitBreaker::Options breaker{3, 500.0};
  /// Prober cadence. Down backends are additionally rate-limited by
  /// health.down_probe_interval_ms.
  double probe_interval_ms = 250.0;
  /// Every Nth probe cycle sends `stats` instead of `ping`, so a backend
  /// that accepts connections but cannot serve is still caught (0 = ping
  /// only).
  int deep_probe_every = 8;
  /// Budget for one probe round trip (dial + call).
  double probe_timeout_ms = 250.0;
  /// Budget for dialing a backend on the request path.
  double dial_timeout_ms = 250.0;
  /// Per-hop budget for a forwarded call when the client's remaining
  /// deadline does not impose a tighter one.
  double call_timeout_ms = 2000.0;
  /// Transport retries after the first attempt (writes and owner dumps).
  int max_retries = 2;
  /// Base of the exponential backoff between retries; the actual sleep is
  /// uniform in [0, base * 2^attempt] (full jitter).
  double retry_backoff_ms = 10.0;
  /// Retry hint carried by every OVERLOADED the router originates.
  double retry_after_ms = 50.0;
  /// Seed for the backoff jitter (deterministic drills).
  uint64_t seed = 0x5EED;
  /// Idle connections kept per backend (excess are closed on release).
  int pool_size = 4;
  /// Upper bound on the write pause a live migration may impose on the
  /// moving block while it catches up the source's tail. Writes arriving
  /// during the pause are answered `OVERLOADED <remaining-ms>` — honest
  /// degradation, never silent loss.
  double migrate_pause_ms = 500.0;
  /// Copies of each block's acked writes (1 = owner only, the default).
  /// With 2+, the router asynchronously forwards every acked write to the
  /// next replicas-1 backends in the block's route order, so a failover
  /// promotes a warm standby instead of an empty one.
  int replicas = 1;
  /// Bound on writes parked in the async replication queue; overflow drops
  /// the write (counted) rather than stalling the ack path.
  size_t replication_queue_cap = 1024;
  /// Concurrent moves a rebalance/drain plan executes at once. Distinct
  /// blocks pause independently, so parallel moves never stall each other.
  int rebalance_parallelism = 2;
  /// Hard-loss deadline: a backend continuously `down` for longer than
  /// this has its blocks promoted to the first routable standby via an
  /// override flip (0 = never promote, the default).
  double promote_after_ms = 0.0;
  /// When non-empty, route overrides and drained marks are persisted here
  /// (CRC32C-trailed, written via atomic replace) and replayed on restart.
  std::string state_file;
};

/// Point-in-time view of one backend, for stats and tests.
struct BackendSnapshot {
  std::string endpoint;
  HealthState state = HealthState::kHealthy;
  serve::CircuitBreaker::State breaker = serve::CircuitBreaker::State::kClosed;
  int consecutive_failures = 0;
  long long requests = 0;
  long long transport_failures = 0;
  long long transitions = 0;
  long long times_down = 0;
  double down_ms_total = 0.0;
};

class Router {
 public:
  /// `endpoints` are "host:port" strings (IPv4 literals). At least one.
  Router(std::vector<std::string> endpoints, RouterOptions options = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Starts the prober thread (idempotent). The router answers requests
  /// before Start(), but health then only learns from request traffic.
  void Start();

  /// Stops the prober and closes every pooled connection.
  void Stop();

  /// Answers one request line; plugs into serve::LineServer handler mode
  /// and ServeStdio alike. Thread-safe.
  std::string HandleLine(const std::string& line, bool* quit);

  /// The block's backend preference order: owner first, then failover
  /// candidates. Pure function of (block, backend count) — deterministic
  /// across routers, which is what makes a restarted router agree with its
  /// predecessor about ownership.
  static std::vector<size_t> RouteOrder(const std::string& block, size_t n);

  /// RouteOrder with the per-block override table applied: a migrated
  /// block's target moves to the front, everything else keeps its
  /// rendezvous rank as failover. This — not RouteOrder — is what every
  /// forwarding path consults.
  std::vector<size_t> EffectiveOrder(const std::string& block) const;

  /// Installs (or, with `backends_.size()` or larger, clears) a route
  /// override for `block`. The migration driver flips ownership through
  /// this; exposed so tests can exercise override precedence directly.
  /// Persisted to the state file when one is configured.
  void SetRouteOverride(const std::string& block, size_t backend_index);

  /// Snapshot of the override table (block -> backend index), for tests
  /// and drills.
  std::unordered_map<std::string, size_t> RouteOverrides() const;

  /// Arms (or with ms <= 0 clears) a write pause on `block`, exactly as a
  /// migration's catch-up phase would. Test hook for the pause-aware
  /// OVERLOADED retry hints.
  void SetWritePause(const std::string& block, double ms);

  /// Endpoints currently marked drained (writes refused), for tests.
  std::vector<std::string> DrainedEndpoints() const;

  /// Progress of the running (or most recent) rebalance/drain plan.
  struct PlanProgress {
    bool started = false;
    bool active = false;
    bool aborted = false;
    std::string kind;  // "rebalance" or "drain"
    long long total = 0;
    long long completed = 0;
    long long failed = 0;
    /// Blocks already owned by a backend in the proposed list (no move).
    long long stayed = 0;
    std::string last_error;
  };
  PlanProgress plan_progress() const;

  /// Completed probe cycles (drills use this to bound health-convergence
  /// waits instead of sleeping a guessed duration).
  long long probe_cycles() const {
    return probe_cycle_.load(std::memory_order_relaxed);
  }

  /// Runs one probe cycle synchronously (the prober thread's body); public
  /// so tests and drills can drive health deterministically without
  /// waiting out the cadence.
  void ProbeOnce();

  size_t backend_count() const { return backends_.size(); }
  BackendSnapshot backend(size_t index) const;

  /// The router's own registry (per-backend and router-total metrics).
  obs::MetricsRegistry& registry() { return registry_; }

 private:
  struct Backend {
    std::string endpoint;  // "host:port"
    std::string host;
    int port = 0;

    mutable std::mutex mu;
    BackendHealth health;               // guarded by mu
    std::vector<net::LineSocket> pool;  // guarded by mu
    serve::CircuitBreaker breaker;      // self-locking

    obs::Counter* requests = nullptr;
    obs::Counter* transport_failures = nullptr;
    obs::Gauge* state_gauge = nullptr;
  };

  /// Milliseconds since router construction (the health machine's clock).
  double NowMs() const;

  /// One round trip to `backend`. Acquires a pooled connection (or dials),
  /// sends `line`, reads one response line within `timeout_ms`, and on
  /// success returns the connection to the pool. `*sent` is set once the
  /// request may have reached the backend — false only for dial failures.
  /// Failure closes the connection and records health + counters.
  Result<std::string> CallBackend(Backend& backend, const std::string& line,
                                  double timeout_ms, bool* sent);

  std::string ForwardWrite(const serve::Request& request);
  std::string ForwardRead(const serve::Request& request);
  std::string ForwardDump(const serve::Request& request);
  std::string ForwardCompactAll(const serve::Request& request);
  std::string StatsResponse() const;
  std::string MetricsResponse() const;

  /// The `migrate <block> <endpoint>` admin verb: the router-driven
  /// migration state machine (copy → pause + tail catch-up → flip), with
  /// rollback to the source on any failure before the flip.
  std::string Migrate(const serve::Request& request);
  /// The core per-block move shared by migrate, rebalance, and drain:
  /// copy → pause + drain in-flight writes → catch-up → atomic flip, with
  /// rollback to the current owner on any failure before the flip. Safe to
  /// run concurrently for distinct blocks. Returns the import ack body.
  Result<std::string> MoveBlock(const std::string& block,
                                size_t target_index);
  /// Streams `export <block>` from `source` over a dedicated connection
  /// and repacks the frames into an import blob.
  Result<std::string> FetchExport(Backend& source, const std::string& block);
  /// Sends `import <block> ...` to `target`; returns the ack body
  /// ("<version> <documents>").
  Result<std::string> ImportTo(Backend& target, const std::string& block,
                               const std::string& blob);
  /// Lazily registers the migration counters (byte-identical metrics for
  /// fleets that never migrate).
  void RegisterMigrateMetrics() const;

  /// Hands an acked write to the async replication queue (replicas > 1).
  void EnqueueReplication(const std::string& block, const std::string& line);
  void ReplicatorLoop();

  // --- Fleet self-healing (rebalance / drain / promotion / state file) ---

  /// The `rebalance` admin verb (start a plan, `status`, or `abort`).
  std::string Rebalance(const serve::Request& request);
  /// The `drain <endpoint>` admin verb.
  std::string Drain(const serve::Request& request);
  std::string RebalanceStatus() const;

  /// One planned move, ordered largest-first so the long copies start
  /// while the cheap ones fill the remaining parallelism.
  struct PlannedMove {
    std::string block;
    size_t target = 0;
    long long documents = 0;
    long long wal_bytes = 0;
  };
  /// Diffs current ownership against `targets` (indices into backends_)
  /// and executes the moves with bounded parallelism and per-move
  /// rollback. Fills plan_ as it goes; returns the finished progress.
  PlanProgress ExecutePlan(const std::string& kind,
                           const std::vector<size_t>& targets);

  /// Serializes admin verbs (migrate/rebalance/drain). Returns false and
  /// names the verb in flight when another admin operation is running.
  bool BeginAdmin(const std::string& op, std::string* current);
  void EndAdmin();

  /// Scrapes `stats shards` from one backend into block -> (documents,
  /// wal_bytes) — the planner's move-ordering input.
  Result<std::unordered_map<std::string, std::pair<long long, long long>>>
  FetchShardStats(Backend& backend);

  /// The retry hint for an OVERLOADED shed of `block`: the configured
  /// floor, or the remaining write pause when a migration has the block
  /// paused — so loadgen retries land after the flip, not inside the
  /// pause.
  double RetryHintMs(const std::string& block) const;

  /// Sets (or, when `target` is the block's rendezvous owner, erases) the
  /// block's override under route_mu_. Callers persist afterwards.
  void ApplyOverride(const std::string& block, size_t target);

  /// Persists overrides + drained marks to options_.state_file (CRC32C
  /// trailer, atomic replace). No-op without a state file.
  void PersistState();
  /// Constructor-time replay of the state file. Corruption or a bad CRC
  /// starts clean and records the error for stats; entries naming unknown
  /// endpoints are skipped (counted).
  void LoadState();
  /// Cross-checks restored overrides against backend `stats shards` (who
  /// actually holds the documents); divergence is counted, never hidden.
  /// Bounded per deep-probe cycle so it cannot stall the prober thread.
  void CrossCheckOverrides();

  /// Hard-loss replica promotion: flips every known block owned by a
  /// backend that has been down past promote_after_ms onto its first
  /// routable standby (once per down episode).
  void MaybePromote(double now_ms);
  /// Tracks blocks in promotion's universe: forwarded traffic, restored
  /// state-file overrides, and deep-probe shard scrapes.
  void NoteBlock(const std::string& block);
  void NoteAcked(const std::string& block);
  void NoteReplicated(const std::string& block);

  void ProbeBackend(Backend& backend, bool deep, double now_ms);
  void ProberLoop();

  /// Jittered exponential backoff sleep before retry `attempt` (0-based),
  /// capped so it never sleeps past `remaining_ms`. Returns false when the
  /// remaining budget is already gone.
  bool BackoffSleep(int attempt, double remaining_ms);

  const RouterOptions options_;
  std::vector<std::unique_ptr<Backend>> backends_;
  const std::chrono::steady_clock::time_point epoch_;

  // Mutable so lazily-registered migration counters (first `migrate` on a
  // const stats path) can be created without shedding const.
  mutable obs::MetricsRegistry registry_;
  obs::Counter* requests_total_ = nullptr;
  obs::Counter* retries_total_ = nullptr;
  obs::Counter* failovers_total_ = nullptr;
  obs::Counter* shed_overloaded_ = nullptr;
  obs::Counter* shed_deadline_ = nullptr;
  obs::Counter* shed_unavailable_ = nullptr;
  obs::Counter* probes_total_ = nullptr;
  obs::Counter* probe_failures_ = nullptr;

  /// Per-block route overrides, migration write pauses, drained marks,
  /// and in-flight write counts, consulted by every forwarding path
  /// before the rendezvous order. Guarded by route_mu_; the flip is one
  /// map insert under the lock, so concurrent readers see either the old
  /// owner or the new one, never a tear.
  mutable std::mutex route_mu_;
  std::unordered_map<std::string, size_t> route_override_;
  std::unordered_map<std::string, double> write_pause_until_;
  /// Backends drained by `drain <endpoint>`: writes to blocks they own
  /// are durably re-homed to the next non-drained backend (reads may
  /// still fail over to them while they hold data).
  std::set<size_t> drained_;
  /// Writes past the pause check but not yet forwarded, per block; a move
  /// pauses its block and then waits for that block's count to drain, so
  /// no acked write can race the final catch-up copy. Distinct blocks
  /// drain independently, which is what lets a plan move them in
  /// parallel. Signaled through route_cv_ on every decrement.
  std::unordered_map<std::string, int> inflight_by_block_;
  std::condition_variable route_cv_;

  /// Migration counters, registered lazily on the first `migrate` verb.
  mutable std::once_flag migrate_metrics_once_;
  mutable std::atomic<obs::Counter*> migrations_{nullptr};
  mutable std::atomic<obs::Counter*> migration_failures_{nullptr};

  /// Async standby replication (only wired up when options_.replicas > 1;
  /// with the default of 1 none of this exists at runtime).
  obs::Counter* replicated_writes_ = nullptr;
  obs::Counter* replication_failures_ = nullptr;
  obs::Counter* replication_drops_ = nullptr;
  mutable std::mutex repl_mu_;
  std::condition_variable repl_cv_;
  std::deque<std::pair<std::string, std::string>> repl_queue_;
  bool repl_stop_ = false;
  std::thread replicator_;

  /// Admin-verb serialization: the name of the verb in flight, or empty.
  std::mutex admin_mu_;
  std::string admin_op_;

  /// Rebalance/drain plan progress (served by `rebalance status`) and the
  /// between-moves abort flag.
  mutable std::mutex plan_mu_;
  PlanProgress plan_;
  std::atomic<bool> plan_abort_{false};

  /// State-file bookkeeping (only populated when options_.state_file is
  /// set; the counters are registered conditionally for byte-identical
  /// metrics otherwise).
  obs::Counter* state_saves_ = nullptr;
  obs::Counter* state_save_failures_ = nullptr;
  obs::Counter* override_divergence_ = nullptr;
  /// Serializes state-file writes: WriteFileAtomic stages through a fixed
  /// `<path>.tmp`, so two concurrent persists would trample each other.
  std::mutex state_mu_;
  long long restored_overrides_ = 0;
  long long restored_drained_ = 0;
  long long state_skipped_ = 0;
  bool state_load_ok_ = true;
  std::string state_load_error_;
  /// Restored overrides not yet cross-checked against backend shard
  /// stats; drained by CrossCheckOverrides on deep probe cycles.
  std::mutex check_mu_;
  std::vector<std::pair<std::string, size_t>> restored_unchecked_;

  /// Replica promotion (only active when options_.promote_after_ms > 0).
  obs::Counter* promotions_ = nullptr;
  obs::Counter* possibly_lost_writes_ = nullptr;
  std::mutex blocks_mu_;
  std::set<std::string> known_blocks_;
  std::unordered_map<std::string, long long> acked_by_block_;
  std::unordered_map<std::string, long long> replicated_by_block_;
  /// health.times_down() value at each backend's last promotion, so a
  /// down episode promotes at most once.
  std::vector<long long> promoted_at_down_;

  std::mutex rng_mu_;
  Rng rng_;

  std::mutex prober_mu_;
  std::condition_variable prober_cv_;
  bool prober_stop_ = false;
  std::thread prober_;
  std::atomic<bool> started_{false};
  std::atomic<long long> probe_cycle_{0};
};

/// Splits "host:port". InvalidArgument on a malformed endpoint.
Result<std::pair<std::string, int>> ParseEndpoint(const std::string& endpoint);

}  // namespace router
}  // namespace weber

#endif  // WEBER_ROUTER_ROUTER_H_

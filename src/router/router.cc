#include "router/router.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/fault_injection.h"
#include "common/json_writer.h"
#include "common/string_util.h"

namespace weber {
namespace router {

namespace {

uint64_t HashBlock(const std::string& block) {
  // FNV-1a, then one SplitMix64 round to spread short names.
  uint64_t h = 14695981039346656037ULL;
  for (const char c : block) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return SplitMix64(h).Next();
}

}  // namespace

Result<std::pair<std::string, int>> ParseEndpoint(const std::string& endpoint) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    return Status::InvalidArgument("bad endpoint '", endpoint,
                                   "' (want host:port)");
  }
  int port = 0;
  if (!ParseInt(endpoint.substr(colon + 1), &port) || port <= 0 ||
      port > 65535) {
    return Status::InvalidArgument("bad port in endpoint '", endpoint, "'");
  }
  return std::make_pair(endpoint.substr(0, colon), port);
}

std::vector<size_t> Router::RouteOrder(const std::string& block, size_t n) {
  const uint64_t h = HashBlock(block);
  std::vector<std::pair<uint64_t, size_t>> scored;
  scored.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Rendezvous hashing: each (block, backend) pair gets an independent
    // score; the preference order is scores descending. Mixing by index
    // keeps the order a pure function of (block, n).
    scored.emplace_back(
        SplitMix64(h ^ (0x9E3779B97F4A7C15ULL * (i + 1))).Next(), i);
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<size_t> order;
  order.reserve(n);
  for (const auto& [score, index] : scored) order.push_back(index);
  return order;
}

std::vector<size_t> Router::EffectiveOrder(const std::string& block) const {
  std::vector<size_t> order = RouteOrder(block, backends_.size());
  std::lock_guard<std::mutex> lock(route_mu_);
  auto it = route_override_.find(block);
  if (it == route_override_.end()) return order;
  // The override target moves to the front; everything else keeps its
  // rendezvous rank as the failover order (the old owner becomes an
  // ordinary candidate — "source drop" is just losing first place).
  auto pos = std::find(order.begin(), order.end(), it->second);
  if (pos != order.end()) order.erase(pos);
  order.insert(order.begin(), it->second);
  return order;
}

void Router::SetRouteOverride(const std::string& block,
                              size_t backend_index) {
  std::lock_guard<std::mutex> lock(route_mu_);
  if (backend_index >= backends_.size()) {
    route_override_.erase(block);
  } else {
    route_override_[block] = backend_index;
  }
}

Router::Router(std::vector<std::string> endpoints, RouterOptions options)
    : options_(options), epoch_(std::chrono::steady_clock::now()),
      rng_(options.seed) {
  requests_total_ = registry_.GetCounter(
      "weber_router_requests_total", "Requests handled by the router");
  retries_total_ = registry_.GetCounter(
      "weber_router_retries_total", "Forwarded calls retried after a transport failure");
  failovers_total_ = registry_.GetCounter(
      "weber_router_failovers_total", "Reads served by a non-owner backend");
  shed_overloaded_ = registry_.GetCounter(
      "weber_router_shed_total", "Requests shed by the router", "reason",
      "overloaded");
  shed_deadline_ = registry_.GetCounter(
      "weber_router_shed_total", "Requests shed by the router", "reason",
      "deadline");
  shed_unavailable_ = registry_.GetCounter(
      "weber_router_shed_total", "Requests shed by the router", "reason",
      "unavailable");
  probes_total_ = registry_.GetCounter("weber_router_probes_total",
                                       "Health probes attempted");
  probe_failures_ = registry_.GetCounter("weber_router_probe_failures_total",
                                         "Health probes failed");
  if (options_.replicas > 1) {
    // Registered only when replication is on, so a default fleet's metrics
    // exposition stays byte-identical to a replication-free build.
    replicated_writes_ = registry_.GetCounter(
        "weber_router_replicated_writes_total",
        "Acked writes forwarded to standby backends");
    replication_failures_ = registry_.GetCounter(
        "weber_router_replication_failures_total",
        "Standby forwards that failed (the standby catches up at the next "
        "migration or restart)");
    replication_drops_ = registry_.GetCounter(
        "weber_router_replication_drops_total",
        "Acked writes dropped at the replication queue cap");
  }
  backends_.reserve(endpoints.size());
  for (const std::string& endpoint : endpoints) {
    auto backend = std::make_unique<Backend>();
    backend->endpoint = endpoint;
    Result<std::pair<std::string, int>> parsed = ParseEndpoint(endpoint);
    if (parsed.ok()) {
      backend->host = parsed.ValueOrDie().first;
      backend->port = parsed.ValueOrDie().second;
    } else {
      // A malformed endpoint is kept (indices must match the caller's
      // list) but never dials successfully, so health marks it down.
      backend->host = endpoint;
      backend->port = 0;
    }
    backend->health = BackendHealth(options_.health);
    backend->breaker.Configure(options_.breaker);
    backend->requests = registry_.GetCounter(
        "weber_router_backend_requests_total",
        "Calls forwarded to a backend", "backend", endpoint);
    backend->transport_failures = registry_.GetCounter(
        "weber_router_backend_failures_total",
        "Transport failures talking to a backend", "backend", endpoint);
    backend->state_gauge = registry_.GetGauge(
        "weber_router_backend_state",
        "Backend health (0 healthy, 1 suspect, 2 down, 3 probation)",
        "backend", endpoint);
    backends_.push_back(std::move(backend));
  }
}

Router::~Router() { Stop(); }

void Router::Start() {
  if (started_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(prober_mu_);
    prober_stop_ = false;
  }
  prober_ = std::thread([this] { ProberLoop(); });
  if (options_.replicas > 1 && !replicator_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(repl_mu_);
      repl_stop_ = false;
    }
    replicator_ = std::thread([this] { ReplicatorLoop(); });
  }
}

void Router::Stop() {
  if (started_.exchange(false)) {
    {
      std::lock_guard<std::mutex> lock(prober_mu_);
      prober_stop_ = true;
    }
    prober_cv_.notify_all();
    if (prober_.joinable()) prober_.join();
  }
  if (replicator_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(repl_mu_);
      repl_stop_ = true;
    }
    repl_cv_.notify_all();
    replicator_.join();
  }
  for (auto& backend : backends_) {
    std::lock_guard<std::mutex> lock(backend->mu);
    backend->pool.clear();
  }
}

double Router::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Result<std::string> Router::CallBackend(Backend& backend,
                                        const std::string& line,
                                        double timeout_ms, bool* sent) {
  *sent = false;
  backend.requests->Increment();
  net::LineSocket socket;
  {
    std::lock_guard<std::mutex> lock(backend.mu);
    if (!backend.pool.empty()) {
      socket = std::move(backend.pool.back());
      backend.pool.pop_back();
    }
  }
  if (!socket.connected()) {
    Status dialed =
        socket.Connect(backend.host, backend.port, options_.dial_timeout_ms);
    if (!dialed.ok()) {
      backend.transport_failures->Increment();
      std::lock_guard<std::mutex> lock(backend.mu);
      backend.health.OnFailure(NowMs());
      backend.breaker.RecordFailure();
      backend.state_gauge->Set(static_cast<int>(backend.health.state()));
      return dialed;
    }
  }
  // Past this point the request may reach the backend even if the call
  // fails — the caller must not claim "no state changed".
  *sent = true;
  Result<std::string> response = socket.Call(line, timeout_ms);
  if (!response.ok()) {
    backend.transport_failures->Increment();
    std::lock_guard<std::mutex> lock(backend.mu);
    backend.health.OnFailure(NowMs());
    backend.breaker.RecordFailure();
    backend.state_gauge->Set(static_cast<int>(backend.health.state()));
    return response.status();
  }
  std::lock_guard<std::mutex> lock(backend.mu);
  backend.health.OnSuccess(NowMs());
  backend.breaker.RecordSuccess();
  backend.state_gauge->Set(static_cast<int>(backend.health.state()));
  if (static_cast<int>(backend.pool.size()) < options_.pool_size) {
    backend.pool.push_back(std::move(socket));
  }
  return response;
}

bool Router::BackoffSleep(int attempt, double remaining_ms) {
  double cap = options_.retry_backoff_ms * std::pow(2.0, attempt);
  double sleep_ms;
  {
    std::lock_guard<std::mutex> lock(rng_mu_);
    sleep_ms = rng_.UniformDouble(0.0, std::max(cap, 0.001));
  }
  if (sleep_ms >= remaining_ms) return false;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(sleep_ms));
  return true;
}

std::string Router::ForwardWrite(const serve::Request& request) {
  const serve::RequestDeadline deadline =
      serve::RequestDeadline::In(request.deadline_ms);
  // The in-flight count is raised BEFORE the pause check: a migration
  // pauses the block and then waits for this count to drain, so any write
  // that slipped past the pause is provably forwarded (and re-exported)
  // before the final catch-up copy. Writes that see the pause shed with
  // the remaining pause as the retry hint — honest degradation.
  inflight_writes_.fetch_add(1, std::memory_order_acq_rel);
  struct InflightGuard {
    std::atomic<int>* count;
    ~InflightGuard() { count->fetch_sub(1, std::memory_order_acq_rel); }
  } inflight_guard{&inflight_writes_};
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    auto paused = write_pause_until_.find(request.block);
    if (paused != write_pause_until_.end()) {
      const double remaining = paused->second - NowMs();
      if (remaining > 0.0) {
        shed_overloaded_->Increment();
        return serve::FormatOverloaded(std::max(1.0, remaining));
      }
      // The migration abandoned the pause (or crashed mid-flight); writes
      // resume against whatever the override table says.
      write_pause_until_.erase(paused);
    }
  }
  Backend& owner = *backends_[EffectiveOrder(request.block)[0]];
  {
    std::lock_guard<std::mutex> lock(owner.mu);
    if (!owner.health.Routable()) {
      // Never sent: the fleet state did not change, so OVERLOADED's
      // promise holds and the client may retry blindly.
      shed_overloaded_->Increment();
      return serve::FormatOverloaded(options_.retry_after_ms);
    }
  }
  if (!owner.breaker.Admit().ok()) {
    shed_overloaded_->Increment();
    return serve::FormatOverloaded(options_.retry_after_ms);
  }
  bool any_sent = false;
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (deadline.Expired()) break;
    const double budget =
        std::min(options_.call_timeout_ms, deadline.RemainingMs());
    serve::Request hop = request;
    if (request.deadline_ms > 0.0) hop.deadline_ms = deadline.RemainingMs();
    bool sent = false;
    Result<std::string> response =
        CallBackend(owner, serve::FormatRequest(hop), budget, &sent);
    any_sent = any_sent || sent;
    if (response.ok()) {
      if (options_.replicas > 1) {
        Result<serve::Response> parsed =
            serve::ParseResponse(response.ValueOrDie());
        if (parsed.ok() && parsed.ValueOrDie().ok()) {
          // Replicate what the owner acked, without the (already mostly
          // spent) deadline — the standby applies it on its own time.
          serve::Request copy = request;
          copy.deadline_ms = 0.0;
          EnqueueReplication(request.block, serve::FormatRequest(copy));
        }
      }
      return std::move(response).ValueOrDie();
    }
    if (attempt < options_.max_retries) {
      retries_total_->Increment();
      if (!BackoffSleep(attempt, deadline.RemainingMs())) break;
    }
  }
  if (deadline.Expired()) {
    shed_deadline_->Increment();
    return serve::FormatDeadlineExceeded();
  }
  if (!any_sent) {
    shed_overloaded_->Increment();
    return serve::FormatOverloaded(options_.retry_after_ms);
  }
  // The request may have been applied even though no response arrived, so
  // OVERLOADED ("changed no state") would be dishonest here.
  shed_unavailable_->Increment();
  return serve::FormatError(Status::Unavailable(
      "backend ", owner.endpoint,
      " unreachable; the write may have applied (assign is idempotent — "
      "retry is safe)"));
}

std::string Router::ForwardRead(const serve::Request& request) {
  const serve::RequestDeadline deadline =
      serve::RequestDeadline::In(request.deadline_ms);
  const std::vector<size_t> order = EffectiveOrder(request.block);
  for (size_t rank = 0; rank < order.size(); ++rank) {
    Backend& backend = *backends_[order[rank]];
    {
      std::lock_guard<std::mutex> lock(backend.mu);
      if (!backend.health.Routable()) continue;
    }
    if (deadline.Expired()) {
      shed_deadline_->Increment();
      return serve::FormatDeadlineExceeded();
    }
    const double budget =
        std::min(options_.call_timeout_ms, deadline.RemainingMs());
    serve::Request hop = request;
    if (request.deadline_ms > 0.0) hop.deadline_ms = deadline.RemainingMs();
    bool sent = false;
    Result<std::string> response =
        CallBackend(backend, serve::FormatRequest(hop), budget, &sent);
    if (response.ok()) {
      if (rank > 0) failovers_total_->Increment();
      return std::move(response).ValueOrDie();
    }
    // Transport failure: the next candidate in the preference order is
    // the failover. Reads are idempotent, so trying again is always safe.
  }
  if (deadline.Expired()) {
    shed_deadline_->Increment();
    return serve::FormatDeadlineExceeded();
  }
  shed_overloaded_->Increment();
  return serve::FormatOverloaded(options_.retry_after_ms);
}

std::string Router::ForwardDump(const serve::Request& request) {
  // Dumps are verification reads of the authoritative store, so they never
  // fail over — a non-owner's answer would silently verify the wrong data.
  Backend& owner = *backends_[EffectiveOrder(request.block)[0]];
  {
    std::lock_guard<std::mutex> lock(owner.mu);
    if (!owner.health.Routable()) {
      shed_overloaded_->Increment();
      return serve::FormatOverloaded(options_.retry_after_ms);
    }
  }
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    bool sent = false;
    Result<std::string> response = CallBackend(
        owner, serve::FormatRequest(request), options_.call_timeout_ms, &sent);
    if (response.ok()) return std::move(response).ValueOrDie();
    if (attempt < options_.max_retries) {
      retries_total_->Increment();
      if (!BackoffSleep(attempt, options_.call_timeout_ms)) break;
    }
  }
  shed_overloaded_->Increment();
  return serve::FormatOverloaded(options_.retry_after_ms);
}

std::string Router::ForwardCompactAll(const serve::Request& request) {
  // Fans out to every routable backend. Partial success is reported as an
  // error naming the failed backends, so a drill script knows compaction
  // is incomplete instead of trusting a hollow "ok".
  long long reached = 0;
  std::vector<std::string> failed;
  for (auto& backend : backends_) {
    {
      std::lock_guard<std::mutex> lock(backend->mu);
      if (!backend->health.Routable()) {
        failed.push_back(backend->endpoint + " (down)");
        continue;
      }
    }
    bool sent = false;
    Result<std::string> response = CallBackend(
        *backend, serve::FormatRequest(request), options_.call_timeout_ms,
        &sent);
    if (!response.ok()) {
      failed.push_back(backend->endpoint + " (" +
                       response.status().message() + ")");
      continue;
    }
    Result<serve::Response> parsed =
        serve::ParseResponse(response.ValueOrDie());
    if (!parsed.ok() || !parsed.ValueOrDie().ok()) {
      failed.push_back(backend->endpoint + " (" + response.ValueOrDie() +
                       ")");
      continue;
    }
    ++reached;
  }
  if (!failed.empty()) {
    std::string joined;
    for (const std::string& f : failed) {
      if (!joined.empty()) joined += ", ";
      joined += f;
    }
    shed_unavailable_->Increment();
    return serve::FormatError(
        Status::Unavailable("compact incomplete: ", joined));
  }
  return "ok " + std::to_string(reached);
}

// ---------------------------------------------------------------------------
// Live shard migration

void Router::RegisterMigrateMetrics() const {
  std::call_once(migrate_metrics_once_, [this] {
    migrations_.store(
        registry_.GetCounter("weber_router_migrations_total",
                             "Blocks re-homed by a completed migration"),
        std::memory_order_release);
    migration_failures_.store(
        registry_.GetCounter(
            "weber_router_migration_failures_total",
            "Migrations rolled back to the source before the flip"),
        std::memory_order_release);
  });
}

Result<std::string> Router::FetchExport(Backend& source,
                                        const std::string& block) {
  // A dedicated connection, not the pool: the multi-line export response
  // would desynchronize a pooled socket if it were returned mid-stream.
  net::LineSocket socket;
  WEBER_RETURN_NOT_OK(
      socket.Connect(source.host, source.port, options_.dial_timeout_ms));
  WEBER_RETURN_NOT_OK(socket.SendLine("export " + block));
  WEBER_ASSIGN_OR_RETURN(const std::string header,
                         socket.ReadLine(options_.call_timeout_ms));
  WEBER_ASSIGN_OR_RETURN(const long long frames,
                         serve::ParseExportHeader(header));
  std::string blob;
  for (long long i = 0; i < frames; ++i) {
    WEBER_ASSIGN_OR_RETURN(const std::string line,
                           socket.ReadLine(options_.call_timeout_ms));
    WEBER_ASSIGN_OR_RETURN(const std::string payload,
                           serve::ParseExportFrame(line));
    serve::AppendImportFrame(blob, payload);
  }
  return blob;
}

Result<std::string> Router::ImportTo(Backend& target,
                                     const std::string& block,
                                     const std::string& blob) {
  serve::Request import_request;
  import_request.op = serve::Request::Op::kImport;
  import_request.block = block;
  import_request.blob = blob;
  bool sent = false;
  WEBER_ASSIGN_OR_RETURN(
      const std::string response,
      CallBackend(target, serve::FormatRequest(import_request),
                  options_.call_timeout_ms, &sent));
  WEBER_ASSIGN_OR_RETURN(const serve::Response parsed,
                         serve::ParseResponse(response));
  if (!parsed.ok()) {
    return Status::Unavailable("import of '", block, "' into ",
                               target.endpoint, " refused: ", response);
  }
  return parsed.body;
}

std::string Router::Migrate(const serve::Request& request) {
  RegisterMigrateMetrics();
  auto fail = [this](Status st) {
    // Rollback before any pause was set: no override was installed, so
    // the source simply keeps serving — the target may hold a stale copy,
    // which the next migration attempt overwrites wholesale.
    migration_failures_.load(std::memory_order_acquire)->Increment();
    return serve::FormatError(st);
  };
  size_t target_index = backends_.size();
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i]->endpoint == request.endpoint) {
      target_index = i;
      break;
    }
  }
  if (target_index == backends_.size()) {
    migration_failures_.load(std::memory_order_acquire)->Increment();
    return serve::FormatError(Status::NotFound(
        "migrate: '", request.endpoint, "' is not a configured backend"));
  }
  const size_t source_index = EffectiveOrder(request.block)[0];
  if (source_index == target_index) {
    migration_failures_.load(std::memory_order_acquire)->Increment();
    return serve::FormatError(Status::FailedPrecondition(
        "migrate: ", request.endpoint, " already owns '", request.block,
        "'"));
  }
  Backend& source = *backends_[source_index];
  Backend& target = *backends_[target_index];

  // Phase 1 — bulk copy while the source keeps serving reads AND writes.
  // The copy is wholesale, so staleness is harmless: the catch-up pass
  // below replaces it.
  Result<std::string> bulk = FetchExport(source, request.block);
  if (!bulk.ok()) return fail(bulk.status());
  if (Result<std::string> ack = ImportTo(target, request.block,
                                         bulk.ValueOrDie());
      !ack.ok()) {
    return fail(ack.status());
  }

  // Phase 2 — pause the block's writes (bounded), wait out in-flight
  // ones, then catch up the tail with a second (cheap, mostly-identical)
  // copy. Reads keep serving from the source throughout.
  const double pause_until = NowMs() + options_.migrate_pause_ms;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    write_pause_until_[request.block] = pause_until;
  }
  auto fail_paused = [&](Status st) {
    {
      std::lock_guard<std::mutex> lock(route_mu_);
      write_pause_until_.erase(request.block);
    }
    migration_failures_.load(std::memory_order_acquire)->Increment();
    return serve::FormatError(st);
  };
  while (inflight_writes_.load(std::memory_order_acquire) > 0) {
    if (NowMs() >= pause_until) {
      return fail_paused(Status::Unavailable(
          "migrate: in-flight writes did not drain within the ",
          options_.migrate_pause_ms, "ms pause; rolled back to ",
          source.endpoint));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Result<std::string> final_copy = FetchExport(source, request.block);
  if (!final_copy.ok()) return fail_paused(final_copy.status());
  Result<std::string> ack = ImportTo(target, request.block,
                                     final_copy.ValueOrDie());
  if (!ack.ok()) return fail_paused(ack.status());
  if (Status st = faults::MaybeFail("migrate.flip"); !st.ok()) {
    return fail_paused(st);
  }

  // Phase 3 — atomic flip: one map insert under route_mu_. Every later
  // write/read/dump resolves ownership through the override; the source
  // drops to an ordinary failover candidate. The pause is re-validated
  // under the same lock ForwardWrite checks it with: if it lapsed (and a
  // write may have slipped onto the source after the final copy, erasing
  // the expired entry on its way through), flipping would lose that write
  // — roll back instead and let the operator retry.
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    auto paused = write_pause_until_.find(request.block);
    if (paused == write_pause_until_.end() || NowMs() >= paused->second) {
      if (paused != write_pause_until_.end()) {
        write_pause_until_.erase(paused);
      }
      migration_failures_.load(std::memory_order_acquire)->Increment();
      return serve::FormatError(Status::Unavailable(
          "migrate: catch-up outlived the ", options_.migrate_pause_ms,
          "ms pause; rolled back to ", source.endpoint));
    }
    route_override_[request.block] = target_index;
    write_pause_until_.erase(request.block);
  }
  migrations_.load(std::memory_order_acquire)->Increment();
  return "ok " + ack.ValueOrDie();
}

// ---------------------------------------------------------------------------
// Standby replication

void Router::EnqueueReplication(const std::string& block,
                                const std::string& line) {
  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    if (repl_queue_.size() >= options_.replication_queue_cap) {
      // Bounded on purpose: replication is a warm standby, not a
      // durability guarantee. Dropping (and counting) beats unbounded
      // memory growth when a standby is slow or down.
      if (replication_drops_ != nullptr) replication_drops_->Increment();
      return;
    }
    repl_queue_.emplace_back(block, line);
  }
  repl_cv_.notify_one();
}

void Router::ReplicatorLoop() {
  for (;;) {
    std::pair<std::string, std::string> item;
    {
      std::unique_lock<std::mutex> lock(repl_mu_);
      repl_cv_.wait(lock,
                    [this] { return repl_stop_ || !repl_queue_.empty(); });
      if (repl_queue_.empty()) {
        if (repl_stop_) return;
        continue;
      }
      item = std::move(repl_queue_.front());
      repl_queue_.pop_front();
    }
    const std::vector<size_t> order = EffectiveOrder(item.first);
    const size_t standbys = static_cast<size_t>(options_.replicas) - 1;
    size_t forwarded = 0;
    for (size_t rank = 1; rank < order.size() && forwarded < standbys;
         ++rank) {
      Backend& standby = *backends_[order[rank]];
      {
        std::lock_guard<std::mutex> lock(standby.mu);
        if (!standby.health.Routable()) continue;
      }
      ++forwarded;
      bool sent = false;
      Result<std::string> response =
          CallBackend(standby, item.second, options_.call_timeout_ms, &sent);
      bool applied = false;
      if (response.ok()) {
        Result<serve::Response> parsed =
            serve::ParseResponse(response.ValueOrDie());
        applied = parsed.ok() && parsed.ValueOrDie().ok();
      }
      if (applied) {
        if (replicated_writes_ != nullptr) replicated_writes_->Increment();
      } else {
        if (replication_failures_ != nullptr) {
          replication_failures_->Increment();
        }
      }
    }
  }
}

BackendSnapshot Router::backend(size_t index) const {
  const Backend& b = *backends_[index];
  BackendSnapshot snap;
  snap.endpoint = b.endpoint;
  snap.breaker = b.breaker.state();
  snap.requests = b.requests->Value();
  snap.transport_failures = b.transport_failures->Value();
  std::lock_guard<std::mutex> lock(b.mu);
  snap.state = b.health.state();
  snap.consecutive_failures = b.health.consecutive_failures();
  snap.transitions = b.health.transitions();
  snap.times_down = b.health.times_down();
  snap.down_ms_total = b.health.down_ms_total();
  return snap;
}

std::string Router::StatsResponse() const {
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginObject();
  json.Key("router").BeginObject();
  json.Key("backends").Number(static_cast<long long>(backends_.size()));
  json.Key("requests").Number(requests_total_->Value());
  json.Key("retries").Number(retries_total_->Value());
  json.Key("failovers").Number(failovers_total_->Value());
  json.Key("probes").Number(probes_total_->Value());
  json.Key("probe_failures").Number(probe_failures_->Value());
  json.EndObject();
  // Both sections are gated so that a router run without migrations or
  // replication emits byte-identical stats to earlier releases.
  if (obs::Counter* migrations =
          migrations_.load(std::memory_order_acquire)) {
    size_t overrides = 0;
    {
      std::lock_guard<std::mutex> lock(route_mu_);
      overrides = route_override_.size();
    }
    json.Key("migration").BeginObject();
    json.Key("completed").Number(migrations->Value());
    json.Key("failed").Number(
        migration_failures_.load(std::memory_order_acquire)->Value());
    json.Key("route_overrides").Number(static_cast<long long>(overrides));
    json.EndObject();
  }
  if (options_.replicas > 1) {
    size_t queued = 0;
    {
      std::lock_guard<std::mutex> lock(repl_mu_);
      queued = repl_queue_.size();
    }
    json.Key("replication").BeginObject();
    json.Key("replicas").Number(static_cast<long long>(options_.replicas));
    json.Key("replicated_writes").Number(replicated_writes_->Value());
    json.Key("failures").Number(replication_failures_->Value());
    json.Key("drops").Number(replication_drops_->Value());
    json.Key("queued").Number(static_cast<long long>(queued));
    json.EndObject();
  }
  json.Key("backends").BeginArray();
  for (size_t i = 0; i < backends_.size(); ++i) {
    const BackendSnapshot snap = backend(i);
    json.BeginObject();
    json.Key("endpoint").String(snap.endpoint);
    json.Key("state").String(HealthStateName(snap.state));
    json.Key("breaker").String(serve::BreakerStateName(snap.breaker));
    json.Key("requests").Number(snap.requests);
    json.Key("transport_failures").Number(snap.transport_failures);
    json.Key("transitions").Number(snap.transitions);
    json.Key("times_down").Number(snap.times_down);
    json.Key("down_ms_total").Number(snap.down_ms_total);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return "ok " + os.str();
}

std::string Router::MetricsResponse() const {
  std::ostringstream os;
  registry_.WritePrometheusText(os);
  std::string payload = os.str();
  const long long lines = std::count(payload.begin(), payload.end(), '\n');
  std::string response = "ok " + std::to_string(lines);
  if (!payload.empty()) {
    payload.pop_back();  // the serving loop appends the final newline
    response += '\n';
    response += payload;
  }
  return response;
}

std::string Router::HandleLine(const std::string& line, bool* quit) {
  *quit = false;
  requests_total_->Increment();
  Result<serve::Request> parsed = serve::ParseRequest(line);
  if (!parsed.ok()) return serve::FormatError(parsed.status());
  const serve::Request& request = parsed.ValueOrDie();
  switch (request.op) {
    case serve::Request::Op::kAssign:
    case serve::Request::Op::kCompact:
      return ForwardWrite(request);
    case serve::Request::Op::kQuery:
    // Match is an idempotent snapshot read, so it shares the owner-first
    // failover path with query.
    case serve::Request::Op::kMatch:
      return ForwardRead(request);
    case serve::Request::Op::kDump:
      return ForwardDump(request);
    case serve::Request::Op::kCompactAll:
      return ForwardCompactAll(request);
    case serve::Request::Op::kStats:
      return StatsResponse();
    case serve::Request::Op::kMetrics:
      return MetricsResponse();
    case serve::Request::Op::kMigrate:
      return Migrate(request);
    case serve::Request::Op::kExport:
    case serve::Request::Op::kImport:
      return serve::FormatError(Status::InvalidArgument(
          "'export'/'import' are backend verbs; ask the router to "
          "'migrate <block> <endpoint>' instead"));
    case serve::Request::Op::kPing:
      return "ok";
    case serve::Request::Op::kQuit:
      *quit = true;
      return "ok";
  }
  return serve::FormatError(Status::Internal("unhandled request op"));
}

void Router::ProbeBackend(Backend& backend, bool deep, double now_ms) {
  {
    std::lock_guard<std::mutex> lock(backend.mu);
    if (!backend.health.ShouldProbe(now_ms)) return;
    backend.health.NoteProbe(now_ms);
  }
  probes_total_->Increment();
  // Probes use their own connection (not the pool) so a wedged pooled
  // socket cannot make a healthy backend look dead, and vice versa.
  net::LineSocket socket;
  Status status =
      socket.Connect(backend.host, backend.port, options_.probe_timeout_ms);
  bool healthy = false;
  if (status.ok()) {
    // A deep probe asks for stats — it exercises the whole service
    // dispatch, catching a process that accepts but cannot serve.
    Result<std::string> response =
        socket.Call(deep ? "stats" : "ping", options_.probe_timeout_ms);
    if (response.ok()) {
      Result<serve::Response> parsed =
          serve::ParseResponse(response.ValueOrDie());
      healthy = parsed.ok() && parsed.ValueOrDie().ok();
    }
  }
  if (!healthy) probe_failures_->Increment();
  std::lock_guard<std::mutex> lock(backend.mu);
  if (healthy) {
    backend.health.OnSuccess(now_ms);
    backend.breaker.RecordSuccess();
  } else {
    backend.health.OnFailure(now_ms);
  }
  backend.state_gauge->Set(static_cast<int>(backend.health.state()));
}

void Router::ProbeOnce() {
  const long long cycle =
      probe_cycle_.fetch_add(1, std::memory_order_relaxed) + 1;
  const bool deep =
      options_.deep_probe_every > 0 && cycle % options_.deep_probe_every == 0;
  const double now_ms = NowMs();
  for (auto& backend : backends_) ProbeBackend(*backend, deep, now_ms);
}

void Router::ProberLoop() {
  std::unique_lock<std::mutex> lock(prober_mu_);
  while (!prober_stop_) {
    lock.unlock();
    ProbeOnce();
    lock.lock();
    prober_cv_.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(options_.probe_interval_ms),
        [this] { return prober_stop_; });
  }
}

}  // namespace router
}  // namespace weber

#include "router/router.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <sstream>

#include "common/crc32c.h"
#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/json_writer.h"
#include "common/string_util.h"

namespace weber {
namespace router {

namespace {

uint64_t HashBlock(const std::string& block) {
  // FNV-1a, then one SplitMix64 round to spread short names.
  uint64_t h = 14695981039346656037ULL;
  for (const char c : block) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return SplitMix64(h).Next();
}

}  // namespace

Result<std::pair<std::string, int>> ParseEndpoint(const std::string& endpoint) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    return Status::InvalidArgument("bad endpoint '", endpoint,
                                   "' (want host:port)");
  }
  int port = 0;
  if (!ParseInt(endpoint.substr(colon + 1), &port) || port <= 0 ||
      port > 65535) {
    return Status::InvalidArgument("bad port in endpoint '", endpoint, "'");
  }
  return std::make_pair(endpoint.substr(0, colon), port);
}

std::vector<size_t> Router::RouteOrder(const std::string& block, size_t n) {
  const uint64_t h = HashBlock(block);
  std::vector<std::pair<uint64_t, size_t>> scored;
  scored.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Rendezvous hashing: each (block, backend) pair gets an independent
    // score; the preference order is scores descending. Mixing by index
    // keeps the order a pure function of (block, n).
    scored.emplace_back(
        SplitMix64(h ^ (0x9E3779B97F4A7C15ULL * (i + 1))).Next(), i);
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<size_t> order;
  order.reserve(n);
  for (const auto& [score, index] : scored) order.push_back(index);
  return order;
}

std::vector<size_t> Router::EffectiveOrder(const std::string& block) const {
  std::vector<size_t> order = RouteOrder(block, backends_.size());
  std::lock_guard<std::mutex> lock(route_mu_);
  auto it = route_override_.find(block);
  if (it == route_override_.end()) return order;
  // The override target moves to the front; everything else keeps its
  // rendezvous rank as the failover order (the old owner becomes an
  // ordinary candidate — "source drop" is just losing first place).
  auto pos = std::find(order.begin(), order.end(), it->second);
  if (pos != order.end()) order.erase(pos);
  order.insert(order.begin(), it->second);
  return order;
}

void Router::SetRouteOverride(const std::string& block,
                              size_t backend_index) {
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    if (backend_index >= backends_.size()) {
      route_override_.erase(block);
    } else {
      route_override_[block] = backend_index;
    }
  }
  PersistState();
}

std::unordered_map<std::string, size_t> Router::RouteOverrides() const {
  std::lock_guard<std::mutex> lock(route_mu_);
  return route_override_;
}

void Router::SetWritePause(const std::string& block, double ms) {
  std::lock_guard<std::mutex> lock(route_mu_);
  if (ms <= 0.0) {
    write_pause_until_.erase(block);
  } else {
    write_pause_until_[block] = NowMs() + ms;
  }
}

std::vector<std::string> Router::DrainedEndpoints() const {
  std::lock_guard<std::mutex> lock(route_mu_);
  std::vector<std::string> endpoints;
  endpoints.reserve(drained_.size());
  for (size_t index : drained_) endpoints.push_back(backends_[index]->endpoint);
  return endpoints;
}

Router::PlanProgress Router::plan_progress() const {
  std::lock_guard<std::mutex> lock(plan_mu_);
  return plan_;
}

Router::Router(std::vector<std::string> endpoints, RouterOptions options)
    : options_(options), epoch_(std::chrono::steady_clock::now()),
      rng_(options.seed) {
  requests_total_ = registry_.GetCounter(
      "weber_router_requests_total", "Requests handled by the router");
  retries_total_ = registry_.GetCounter(
      "weber_router_retries_total", "Forwarded calls retried after a transport failure");
  failovers_total_ = registry_.GetCounter(
      "weber_router_failovers_total", "Reads served by a non-owner backend");
  shed_overloaded_ = registry_.GetCounter(
      "weber_router_shed_total", "Requests shed by the router", "reason",
      "overloaded");
  shed_deadline_ = registry_.GetCounter(
      "weber_router_shed_total", "Requests shed by the router", "reason",
      "deadline");
  shed_unavailable_ = registry_.GetCounter(
      "weber_router_shed_total", "Requests shed by the router", "reason",
      "unavailable");
  probes_total_ = registry_.GetCounter("weber_router_probes_total",
                                       "Health probes attempted");
  probe_failures_ = registry_.GetCounter("weber_router_probe_failures_total",
                                         "Health probes failed");
  if (options_.replicas > 1) {
    // Registered only when replication is on, so a default fleet's metrics
    // exposition stays byte-identical to a replication-free build.
    replicated_writes_ = registry_.GetCounter(
        "weber_router_replicated_writes_total",
        "Acked writes forwarded to standby backends");
    replication_failures_ = registry_.GetCounter(
        "weber_router_replication_failures_total",
        "Standby forwards that failed (the standby catches up at the next "
        "migration or restart)");
    replication_drops_ = registry_.GetCounter(
        "weber_router_replication_drops_total",
        "Acked writes dropped at the replication queue cap");
  }
  // Both self-healing features gate their counters the same way: a router
  // run without --state-file / --promote-after-ms exposes byte-identical
  // metrics to earlier releases.
  if (!options_.state_file.empty()) {
    state_saves_ = registry_.GetCounter(
        "weber_router_state_saves_total",
        "Route-override state file writes (atomic replace)");
    state_save_failures_ = registry_.GetCounter(
        "weber_router_state_save_failures_total",
        "Route-override state file writes that failed");
    override_divergence_ = registry_.GetCounter(
        "weber_router_override_divergence_total",
        "Restored route overrides contradicted by backend shard stats");
  }
  if (options_.promote_after_ms > 0.0) {
    promotions_ = registry_.GetCounter(
        "weber_router_promotions_total",
        "Blocks promoted to a standby after hard backend loss");
    possibly_lost_writes_ = registry_.GetCounter(
        "weber_router_possibly_lost_writes_total",
        "Acked writes not confirmed replicated when their block was "
        "promoted (an honest upper bound on loss, not a measurement of "
        "it)");
  }
  backends_.reserve(endpoints.size());
  for (const std::string& endpoint : endpoints) {
    auto backend = std::make_unique<Backend>();
    backend->endpoint = endpoint;
    Result<std::pair<std::string, int>> parsed = ParseEndpoint(endpoint);
    if (parsed.ok()) {
      backend->host = parsed.ValueOrDie().first;
      backend->port = parsed.ValueOrDie().second;
    } else {
      // A malformed endpoint is kept (indices must match the caller's
      // list) but never dials successfully, so health marks it down.
      backend->host = endpoint;
      backend->port = 0;
    }
    backend->health = BackendHealth(options_.health);
    backend->breaker.Configure(options_.breaker);
    backend->requests = registry_.GetCounter(
        "weber_router_backend_requests_total",
        "Calls forwarded to a backend", "backend", endpoint);
    backend->transport_failures = registry_.GetCounter(
        "weber_router_backend_failures_total",
        "Transport failures talking to a backend", "backend", endpoint);
    backend->state_gauge = registry_.GetGauge(
        "weber_router_backend_state",
        "Backend health (0 healthy, 1 suspect, 2 down, 3 probation)",
        "backend", endpoint);
    backends_.push_back(std::move(backend));
  }
  promoted_at_down_.assign(backends_.size(), 0);
  LoadState();
}

Router::~Router() { Stop(); }

void Router::Start() {
  if (started_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(prober_mu_);
    prober_stop_ = false;
  }
  prober_ = std::thread([this] { ProberLoop(); });
  if (options_.replicas > 1 && !replicator_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(repl_mu_);
      repl_stop_ = false;
    }
    replicator_ = std::thread([this] { ReplicatorLoop(); });
  }
}

void Router::Stop() {
  if (started_.exchange(false)) {
    {
      std::lock_guard<std::mutex> lock(prober_mu_);
      prober_stop_ = true;
    }
    prober_cv_.notify_all();
    if (prober_.joinable()) prober_.join();
  }
  if (replicator_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(repl_mu_);
      repl_stop_ = true;
    }
    repl_cv_.notify_all();
    replicator_.join();
  }
  for (auto& backend : backends_) {
    std::lock_guard<std::mutex> lock(backend->mu);
    backend->pool.clear();
  }
}

double Router::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Result<std::string> Router::CallBackend(Backend& backend,
                                        const std::string& line,
                                        double timeout_ms, bool* sent) {
  *sent = false;
  backend.requests->Increment();
  net::LineSocket socket;
  {
    std::lock_guard<std::mutex> lock(backend.mu);
    if (!backend.pool.empty()) {
      socket = std::move(backend.pool.back());
      backend.pool.pop_back();
    }
  }
  if (!socket.connected()) {
    Status dialed =
        socket.Connect(backend.host, backend.port, options_.dial_timeout_ms);
    if (!dialed.ok()) {
      backend.transport_failures->Increment();
      std::lock_guard<std::mutex> lock(backend.mu);
      backend.health.OnFailure(NowMs());
      backend.breaker.RecordFailure();
      backend.state_gauge->Set(static_cast<int>(backend.health.state()));
      return dialed;
    }
  }
  // Past this point the request may reach the backend even if the call
  // fails — the caller must not claim "no state changed".
  *sent = true;
  Result<std::string> response = socket.Call(line, timeout_ms);
  if (!response.ok()) {
    backend.transport_failures->Increment();
    std::lock_guard<std::mutex> lock(backend.mu);
    backend.health.OnFailure(NowMs());
    backend.breaker.RecordFailure();
    backend.state_gauge->Set(static_cast<int>(backend.health.state()));
    return response.status();
  }
  std::lock_guard<std::mutex> lock(backend.mu);
  backend.health.OnSuccess(NowMs());
  backend.breaker.RecordSuccess();
  backend.state_gauge->Set(static_cast<int>(backend.health.state()));
  if (static_cast<int>(backend.pool.size()) < options_.pool_size) {
    backend.pool.push_back(std::move(socket));
  }
  return response;
}

bool Router::BackoffSleep(int attempt, double remaining_ms) {
  double cap = options_.retry_backoff_ms * std::pow(2.0, attempt);
  double sleep_ms;
  {
    std::lock_guard<std::mutex> lock(rng_mu_);
    sleep_ms = rng_.UniformDouble(0.0, std::max(cap, 0.001));
  }
  if (sleep_ms >= remaining_ms) return false;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(sleep_ms));
  return true;
}

std::string Router::ForwardWrite(const serve::Request& request) {
  const serve::RequestDeadline deadline =
      serve::RequestDeadline::In(request.deadline_ms);
  NoteBlock(request.block);
  // The block's in-flight count is raised in the same critical section as
  // the pause check: a move pauses the block and then waits for that
  // count to drain, so any write that slipped past the pause is provably
  // forwarded (and re-exported) before the final catch-up copy. Writes
  // that see the pause shed with the remaining pause as the retry hint —
  // honest degradation. Per-block counts (not one global) let a plan move
  // several blocks in parallel without cross-block stalls.
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    auto paused = write_pause_until_.find(request.block);
    if (paused != write_pause_until_.end()) {
      const double remaining = paused->second - NowMs();
      if (remaining > 0.0) {
        shed_overloaded_->Increment();
        return serve::FormatOverloaded(std::max(1.0, remaining));
      }
      // The migration abandoned the pause (or crashed mid-flight); writes
      // resume against whatever the override table says.
      write_pause_until_.erase(paused);
    }
    ++inflight_by_block_[request.block];
  }
  struct InflightGuard {
    Router* router;
    const std::string& block;
    ~InflightGuard() {
      {
        std::lock_guard<std::mutex> lock(router->route_mu_);
        auto it = router->inflight_by_block_.find(block);
        if (it != router->inflight_by_block_.end() && --it->second <= 0) {
          router->inflight_by_block_.erase(it);
        }
      }
      router->route_cv_.notify_all();
    }
  } inflight_guard{this, request.block};
  const std::vector<size_t> order = EffectiveOrder(request.block);
  size_t owner_index = order[0];
  bool rerouted = false;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    if (drained_.count(owner_index) > 0) {
      // A drained backend is awaiting decommission; accepting the write
      // would strand it on a node about to disappear. Drained is a
      // permanent condition (it survives restarts), so shedding with a
      // retry hint would have an honest client retrying forever — instead
      // the block is re-homed for good onto the first non-drained backend
      // in its preference order.
      owner_index = backends_.size();
      for (const size_t index : order) {
        if (drained_.count(index) == 0) {
          owner_index = index;
          break;
        }
      }
      rerouted = owner_index != backends_.size();
    }
  }
  if (owner_index == backends_.size()) {
    // Every backend is drained (only reachable through a restored state
    // file — the drain verb refuses to empty the fleet). Nothing will
    // change on its own, so the refusal must be non-retryable.
    return serve::FormatError(Status::FailedPrecondition(
        "write to '", request.block,
        "': every backend is drained; undrain one before writing"));
  }
  if (rerouted) {
    // A durable flip, like a promotion: later writes, reads, and dumps
    // all follow the override instead of re-deriving the reroute.
    ApplyOverride(request.block, owner_index);
    PersistState();
  }
  Backend& owner = *backends_[owner_index];
  {
    std::lock_guard<std::mutex> lock(owner.mu);
    if (!owner.health.Routable()) {
      // Never sent: the fleet state did not change, so OVERLOADED's
      // promise holds and the client may retry blindly.
      shed_overloaded_->Increment();
      return serve::FormatOverloaded(RetryHintMs(request.block));
    }
  }
  if (!owner.breaker.Admit().ok()) {
    shed_overloaded_->Increment();
    return serve::FormatOverloaded(RetryHintMs(request.block));
  }
  bool any_sent = false;
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (deadline.Expired()) break;
    const double budget =
        std::min(options_.call_timeout_ms, deadline.RemainingMs());
    serve::Request hop = request;
    if (request.deadline_ms > 0.0) hop.deadline_ms = deadline.RemainingMs();
    bool sent = false;
    Result<std::string> response =
        CallBackend(owner, serve::FormatRequest(hop), budget, &sent);
    any_sent = any_sent || sent;
    if (response.ok()) {
      Result<serve::Response> parsed =
          serve::ParseResponse(response.ValueOrDie());
      const bool acked = parsed.ok() && parsed.ValueOrDie().ok();
      if (acked) NoteAcked(request.block);
      if (acked && options_.replicas > 1) {
        // Replicate what the owner acked, without the (already mostly
        // spent) deadline — the standby applies it on its own time.
        serve::Request copy = request;
        copy.deadline_ms = 0.0;
        EnqueueReplication(request.block, serve::FormatRequest(copy));
      }
      return std::move(response).ValueOrDie();
    }
    if (attempt < options_.max_retries) {
      retries_total_->Increment();
      if (!BackoffSleep(attempt, deadline.RemainingMs())) break;
    }
  }
  if (deadline.Expired()) {
    shed_deadline_->Increment();
    return serve::FormatDeadlineExceeded();
  }
  if (!any_sent) {
    shed_overloaded_->Increment();
    return serve::FormatOverloaded(RetryHintMs(request.block));
  }
  // The request may have been applied even though no response arrived, so
  // OVERLOADED ("changed no state") would be dishonest here.
  shed_unavailable_->Increment();
  return serve::FormatError(Status::Unavailable(
      "backend ", owner.endpoint,
      " unreachable; the write may have applied (assign is idempotent — "
      "retry is safe)"));
}

std::string Router::ForwardRead(const serve::Request& request) {
  const serve::RequestDeadline deadline =
      serve::RequestDeadline::In(request.deadline_ms);
  NoteBlock(request.block);
  const std::vector<size_t> order = EffectiveOrder(request.block);
  for (size_t rank = 0; rank < order.size(); ++rank) {
    Backend& backend = *backends_[order[rank]];
    {
      std::lock_guard<std::mutex> lock(backend.mu);
      if (!backend.health.Routable()) continue;
    }
    if (deadline.Expired()) {
      shed_deadline_->Increment();
      return serve::FormatDeadlineExceeded();
    }
    const double budget =
        std::min(options_.call_timeout_ms, deadline.RemainingMs());
    serve::Request hop = request;
    if (request.deadline_ms > 0.0) hop.deadline_ms = deadline.RemainingMs();
    bool sent = false;
    Result<std::string> response =
        CallBackend(backend, serve::FormatRequest(hop), budget, &sent);
    if (response.ok()) {
      if (rank > 0) failovers_total_->Increment();
      return std::move(response).ValueOrDie();
    }
    // Transport failure: the next candidate in the preference order is
    // the failover. Reads are idempotent, so trying again is always safe.
  }
  if (deadline.Expired()) {
    shed_deadline_->Increment();
    return serve::FormatDeadlineExceeded();
  }
  shed_overloaded_->Increment();
  return serve::FormatOverloaded(options_.retry_after_ms);
}

std::string Router::ForwardDump(const serve::Request& request) {
  // Dumps are verification reads of the authoritative store, so they never
  // fail over — a non-owner's answer would silently verify the wrong data.
  Backend& owner = *backends_[EffectiveOrder(request.block)[0]];
  {
    std::lock_guard<std::mutex> lock(owner.mu);
    if (!owner.health.Routable()) {
      shed_overloaded_->Increment();
      return serve::FormatOverloaded(RetryHintMs(request.block));
    }
  }
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    bool sent = false;
    Result<std::string> response = CallBackend(
        owner, serve::FormatRequest(request), options_.call_timeout_ms, &sent);
    if (response.ok()) return std::move(response).ValueOrDie();
    if (attempt < options_.max_retries) {
      retries_total_->Increment();
      if (!BackoffSleep(attempt, options_.call_timeout_ms)) break;
    }
  }
  shed_overloaded_->Increment();
  return serve::FormatOverloaded(RetryHintMs(request.block));
}

std::string Router::ForwardCompactAll(const serve::Request& request) {
  // Fans out to every routable backend. Partial success is reported as an
  // error naming the failed backends, so a drill script knows compaction
  // is incomplete instead of trusting a hollow "ok".
  long long reached = 0;
  std::vector<std::string> failed;
  for (auto& backend : backends_) {
    {
      std::lock_guard<std::mutex> lock(backend->mu);
      if (!backend->health.Routable()) {
        failed.push_back(backend->endpoint + " (down)");
        continue;
      }
    }
    bool sent = false;
    Result<std::string> response = CallBackend(
        *backend, serve::FormatRequest(request), options_.call_timeout_ms,
        &sent);
    if (!response.ok()) {
      failed.push_back(backend->endpoint + " (" +
                       response.status().message() + ")");
      continue;
    }
    Result<serve::Response> parsed =
        serve::ParseResponse(response.ValueOrDie());
    if (!parsed.ok() || !parsed.ValueOrDie().ok()) {
      failed.push_back(backend->endpoint + " (" + response.ValueOrDie() +
                       ")");
      continue;
    }
    ++reached;
  }
  if (!failed.empty()) {
    std::string joined;
    for (const std::string& f : failed) {
      if (!joined.empty()) joined += ", ";
      joined += f;
    }
    shed_unavailable_->Increment();
    return serve::FormatError(
        Status::Unavailable("compact incomplete: ", joined));
  }
  return "ok " + std::to_string(reached);
}

// ---------------------------------------------------------------------------
// Live shard migration

void Router::RegisterMigrateMetrics() const {
  std::call_once(migrate_metrics_once_, [this] {
    migrations_.store(
        registry_.GetCounter("weber_router_migrations_total",
                             "Blocks re-homed by a completed migration"),
        std::memory_order_release);
    migration_failures_.store(
        registry_.GetCounter(
            "weber_router_migration_failures_total",
            "Migrations rolled back to the source before the flip"),
        std::memory_order_release);
  });
}

Result<std::string> Router::FetchExport(Backend& source,
                                        const std::string& block) {
  // A dedicated connection, not the pool: the multi-line export response
  // would desynchronize a pooled socket if it were returned mid-stream.
  net::LineSocket socket;
  WEBER_RETURN_NOT_OK(
      socket.Connect(source.host, source.port, options_.dial_timeout_ms));
  WEBER_RETURN_NOT_OK(socket.SendLine("export " + block));
  WEBER_ASSIGN_OR_RETURN(const std::string header,
                         socket.ReadLine(options_.call_timeout_ms));
  WEBER_ASSIGN_OR_RETURN(const long long frames,
                         serve::ParseExportHeader(header));
  std::string blob;
  for (long long i = 0; i < frames; ++i) {
    WEBER_ASSIGN_OR_RETURN(const std::string line,
                           socket.ReadLine(options_.call_timeout_ms));
    WEBER_ASSIGN_OR_RETURN(const std::string payload,
                           serve::ParseExportFrame(line));
    serve::AppendImportFrame(blob, payload);
  }
  return blob;
}

Result<std::string> Router::ImportTo(Backend& target,
                                     const std::string& block,
                                     const std::string& blob) {
  serve::Request import_request;
  import_request.op = serve::Request::Op::kImport;
  import_request.block = block;
  import_request.blob = blob;
  bool sent = false;
  WEBER_ASSIGN_OR_RETURN(
      const std::string response,
      CallBackend(target, serve::FormatRequest(import_request),
                  options_.call_timeout_ms, &sent));
  WEBER_ASSIGN_OR_RETURN(const serve::Response parsed,
                         serve::ParseResponse(response));
  if (!parsed.ok()) {
    return Status::Unavailable("import of '", block, "' into ",
                               target.endpoint, " refused: ", response);
  }
  return parsed.body;
}

Result<std::string> Router::MoveBlock(const std::string& block,
                                      size_t target_index) {
  RegisterMigrateMetrics();
  auto fail = [this](Status st) -> Result<std::string> {
    // Rollback before any pause was set: no override was installed, so
    // the source simply keeps serving — the target may hold a stale copy,
    // which the next move attempt overwrites wholesale.
    migration_failures_.load(std::memory_order_acquire)->Increment();
    return st;
  };
  const size_t source_index = EffectiveOrder(block)[0];
  if (source_index == target_index) {
    return fail(Status::FailedPrecondition(
        "migrate: ", backends_[target_index]->endpoint, " already owns '",
        block, "'"));
  }
  Backend& source = *backends_[source_index];
  Backend& target = *backends_[target_index];

  // Phase 1 — bulk copy while the source keeps serving reads AND writes.
  // The copy is wholesale, so staleness is harmless: the catch-up pass
  // below replaces it.
  Result<std::string> bulk = FetchExport(source, block);
  if (!bulk.ok()) return fail(bulk.status());
  if (Result<std::string> ack = ImportTo(target, block, bulk.ValueOrDie());
      !ack.ok()) {
    return fail(ack.status());
  }

  // Phase 2 — pause the block's writes (bounded), wait out this block's
  // in-flight ones, then catch up the tail with a second (cheap,
  // mostly-identical) copy. Reads keep serving from the source
  // throughout; other blocks' writes are untouched, so a plan can run
  // several MoveBlocks in parallel.
  const double pause_until = NowMs() + options_.migrate_pause_ms;
  auto fail_paused = [&](Status st) -> Result<std::string> {
    {
      std::lock_guard<std::mutex> lock(route_mu_);
      write_pause_until_.erase(block);
    }
    migration_failures_.load(std::memory_order_acquire)->Increment();
    return st;
  };
  bool drained_inflight = true;
  {
    std::unique_lock<std::mutex> lock(route_mu_);
    write_pause_until_[block] = pause_until;
    for (;;) {
      auto it = inflight_by_block_.find(block);
      if (it == inflight_by_block_.end() || it->second <= 0) break;
      if (NowMs() >= pause_until) {
        drained_inflight = false;
        break;
      }
      route_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }
  if (!drained_inflight) {
    return fail_paused(Status::Unavailable(
        "migrate: in-flight writes did not drain within the ",
        options_.migrate_pause_ms, "ms pause; rolled back to ",
        source.endpoint));
  }
  Result<std::string> final_copy = FetchExport(source, block);
  if (!final_copy.ok()) return fail_paused(final_copy.status());
  Result<std::string> ack = ImportTo(target, block, final_copy.ValueOrDie());
  if (!ack.ok()) return fail_paused(ack.status());
  if (Status st = faults::MaybeFail("migrate.flip"); !st.ok()) {
    return fail_paused(st);
  }

  // Phase 3 — atomic flip: one map insert under route_mu_. Every later
  // write/read/dump resolves ownership through the override; the source
  // drops to an ordinary failover candidate. The pause is re-validated
  // under the same lock ForwardWrite checks it with: if it lapsed (and a
  // write may have slipped onto the source after the final copy, erasing
  // the expired entry on its way through), flipping would lose that write
  // — roll back instead and let the operator retry.
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    auto paused = write_pause_until_.find(block);
    if (paused == write_pause_until_.end() || NowMs() >= paused->second) {
      if (paused != write_pause_until_.end()) {
        write_pause_until_.erase(paused);
      }
      migration_failures_.load(std::memory_order_acquire)->Increment();
      return Status::Unavailable(
          "migrate: catch-up outlived the ", options_.migrate_pause_ms,
          "ms pause; rolled back to ", source.endpoint);
    }
    // When the target is the block's rendezvous owner anyway, the
    // override is redundant — erase instead of insert, so the table (and
    // the state file) stays the minimal diff from pure rendezvous.
    const std::vector<size_t> pure = RouteOrder(block, backends_.size());
    if (!pure.empty() && pure[0] == target_index) {
      route_override_.erase(block);
    } else {
      route_override_[block] = target_index;
    }
    write_pause_until_.erase(block);
  }
  // Persisting after each flip (not once per plan) is what lets a router
  // SIGKILLed mid-rebalance recover every completed move on restart.
  PersistState();
  migrations_.load(std::memory_order_acquire)->Increment();
  return ack;
}

std::string Router::Migrate(const serve::Request& request) {
  RegisterMigrateMetrics();
  std::string busy;
  if (!BeginAdmin("migrate", &busy)) {
    return serve::FormatError(Status::FailedPrecondition(
        "router busy with ", busy, "; retry after it completes"));
  }
  struct AdminGuard {
    Router* router;
    ~AdminGuard() { router->EndAdmin(); }
  } admin_guard{this};
  size_t target_index = backends_.size();
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i]->endpoint == request.endpoint) {
      target_index = i;
      break;
    }
  }
  if (target_index == backends_.size()) {
    migration_failures_.load(std::memory_order_acquire)->Increment();
    return serve::FormatError(Status::NotFound(
        "migrate: '", request.endpoint, "' is not a configured backend"));
  }
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    if (drained_.count(target_index) > 0) {
      migration_failures_.load(std::memory_order_acquire)->Increment();
      return serve::FormatError(Status::FailedPrecondition(
          "migrate: ", request.endpoint,
          " is drained and awaiting decommission"));
    }
  }
  const size_t source_index = EffectiveOrder(request.block)[0];
  if (source_index == target_index) {
    migration_failures_.load(std::memory_order_acquire)->Increment();
    return serve::FormatError(Status::FailedPrecondition(
        "migrate: ", request.endpoint, " already owns '", request.block,
        "'"));
  }
  Result<std::string> ack = MoveBlock(request.block, target_index);
  if (!ack.ok()) return serve::FormatError(ack.status());
  return "ok " + ack.ValueOrDie();
}

// ---------------------------------------------------------------------------
// Fleet self-healing: rebalance planner, drain, state file, promotion

namespace {

/// Pulls block -> (documents, wal_bytes) out of a backend's `stats shards`
/// JSON by scanning the "shards" array — the shard objects are flat, so the
/// first ']' after the array opens terminates it. Tolerant by design: a
/// missing key just yields 0, and an unparsable body yields an empty map
/// (the planner then orders that backend's moves arbitrarily, which is a
/// quality loss, not a correctness one).
long long ScanJsonNumber(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) return 0;
  long long value = 0;
  bool negative = false;
  size_t i = pos + needle.size();
  if (i < text.size() && text[i] == '-') {
    negative = true;
    ++i;
  }
  for (; i < text.size() && text[i] >= '0' && text[i] <= '9'; ++i) {
    value = value * 10 + (text[i] - '0');
  }
  return negative ? -value : value;
}

std::unordered_map<std::string, std::pair<long long, long long>>
ParseShardStats(const std::string& json) {
  std::unordered_map<std::string, std::pair<long long, long long>> stats;
  const size_t array_begin = json.find("\"shards\":[");
  if (array_begin == std::string::npos) return stats;
  const size_t array_end = json.find(']', array_begin);
  if (array_end == std::string::npos) return stats;
  size_t pos = array_begin;
  while (true) {
    const size_t obj_begin = json.find('{', pos);
    if (obj_begin == std::string::npos || obj_begin > array_end) break;
    const size_t obj_end = json.find('}', obj_begin);
    if (obj_end == std::string::npos || obj_end > array_end) break;
    const std::string entry = json.substr(obj_begin, obj_end - obj_begin + 1);
    const size_t name_key = entry.find("\"name\":\"");
    if (name_key != std::string::npos) {
      const size_t name_begin = name_key + 8;
      const size_t name_end = entry.find('"', name_begin);
      if (name_end != std::string::npos) {
        const std::string name = entry.substr(name_begin,
                                              name_end - name_begin);
        stats[name] = {ScanJsonNumber(entry, "documents"),
                       ScanJsonNumber(entry, "wal_bytes")};
      }
    }
    pos = obj_end + 1;
  }
  return stats;
}

}  // namespace

bool Router::BeginAdmin(const std::string& op, std::string* current) {
  std::lock_guard<std::mutex> lock(admin_mu_);
  if (!admin_op_.empty()) {
    *current = admin_op_;
    return false;
  }
  admin_op_ = op;
  return true;
}

void Router::EndAdmin() {
  std::lock_guard<std::mutex> lock(admin_mu_);
  admin_op_.clear();
}

double Router::RetryHintMs(const std::string& block) const {
  std::lock_guard<std::mutex> lock(route_mu_);
  auto it = write_pause_until_.find(block);
  if (it != write_pause_until_.end()) {
    const double remaining = it->second - NowMs();
    if (remaining > options_.retry_after_ms) return remaining;
  }
  return options_.retry_after_ms;
}

void Router::ApplyOverride(const std::string& block, size_t target) {
  const std::vector<size_t> pure = RouteOrder(block, backends_.size());
  std::lock_guard<std::mutex> lock(route_mu_);
  if (!pure.empty() && pure[0] == target) {
    route_override_.erase(block);
  } else {
    route_override_[block] = target;
  }
}

Result<std::unordered_map<std::string, std::pair<long long, long long>>>
Router::FetchShardStats(Backend& backend) {
  bool sent = false;
  WEBER_ASSIGN_OR_RETURN(
      const std::string response,
      CallBackend(backend, "stats shards", options_.call_timeout_ms, &sent));
  WEBER_ASSIGN_OR_RETURN(const serve::Response parsed,
                         serve::ParseResponse(response));
  if (!parsed.ok()) {
    return Status::Unavailable("stats from ", backend.endpoint,
                               " refused: ", response);
  }
  return ParseShardStats(parsed.body);
}

Router::PlanProgress Router::ExecutePlan(const std::string& kind,
                                         const std::vector<size_t>& targets) {
  // Scrape per-shard stats from every routable backend. The union of shard
  // names is the block universe (a backend that cannot answer contributes
  // nothing — its blocks cannot be exported anyway), and the current
  // owner's (documents, wal_bytes) orders the moves largest-first so the
  // long copies start while cheap ones fill the remaining parallelism.
  std::vector<std::unordered_map<std::string, std::pair<long long, long long>>>
      scraped(backends_.size());
  std::set<std::string> blocks;
  for (size_t i = 0; i < backends_.size(); ++i) {
    Backend& candidate = *backends_[i];
    {
      std::lock_guard<std::mutex> lock(candidate.mu);
      if (!candidate.health.Routable()) continue;
    }
    Result<std::unordered_map<std::string, std::pair<long long, long long>>>
        stats = FetchShardStats(candidate);
    if (!stats.ok()) continue;
    scraped[i] = std::move(stats).ValueOrDie();
    for (const auto& [name, sizes] : scraped[i]) blocks.insert(name);
  }
  std::vector<PlannedMove> moves;
  long long stayed = 0;
  for (const std::string& block : blocks) {
    const size_t current = EffectiveOrder(block)[0];
    // Rendezvous makes the diff pure: the desired owner under the proposed
    // list is simply the first preference-order entry that is in it.
    size_t desired = current;
    for (const size_t index : RouteOrder(block, backends_.size())) {
      if (std::find(targets.begin(), targets.end(), index) != targets.end()) {
        desired = index;
        break;
      }
    }
    if (desired == current) {
      ++stayed;
      continue;
    }
    PlannedMove move;
    move.block = block;
    move.target = desired;
    auto it = scraped[current].find(block);
    if (it != scraped[current].end()) {
      move.documents = it->second.first;
      move.wal_bytes = it->second.second;
    }
    moves.push_back(std::move(move));
  }
  std::sort(moves.begin(), moves.end(),
            [](const PlannedMove& a, const PlannedMove& b) {
              if (a.documents != b.documents) return a.documents > b.documents;
              if (a.wal_bytes != b.wal_bytes) return a.wal_bytes > b.wal_bytes;
              return a.block < b.block;
            });
  plan_abort_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    plan_ = PlanProgress{};
    plan_.started = true;
    plan_.active = true;
    plan_.kind = kind;
    plan_.total = static_cast<long long>(moves.size());
    plan_.stayed = stayed;
  }
  std::atomic<size_t> next{0};
  auto worker = [&] {
    for (;;) {
      if (plan_abort_.load(std::memory_order_acquire)) return;
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= moves.size()) return;
      const PlannedMove& move = moves[i];
      // The fault point sits between claiming a move and executing it, so
      // drills can stall or fail individual moves deterministically.
      Status faulted = faults::MaybeFail("rebalance.move");
      Result<std::string> ack =
          faulted.ok() ? MoveBlock(move.block, move.target)
                       : Result<std::string>(faulted);
      std::lock_guard<std::mutex> lock(plan_mu_);
      if (ack.ok()) {
        ++plan_.completed;
      } else {
        // MoveBlock already rolled this move back to its source; the rest
        // of the plan keeps going — partial progress is durable (each flip
        // persisted) and the failed move is retried by the next rebalance.
        ++plan_.failed;
        plan_.last_error = ack.status().message();
      }
    }
  };
  const int workers =
      std::max(1, std::min(options_.rebalance_parallelism,
                           static_cast<int>(moves.size())));
  std::vector<std::thread> pool;
  pool.reserve(workers > 0 ? workers - 1 : 0);
  for (int w = 1; w < workers; ++w) pool.emplace_back(worker);
  worker();
  for (std::thread& thread : pool) thread.join();
  PlanProgress done;
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    plan_.active = false;
    plan_.aborted = plan_abort_.load(std::memory_order_acquire);
    done = plan_;
  }
  return done;
}

std::string Router::Rebalance(const serve::Request& request) {
  if (request.subcommand == "status") return RebalanceStatus();
  if (request.subcommand == "abort") {
    // Takes effect between moves: the in-flight ones finish (or roll
    // back), nothing new starts. Idempotent, safe with no plan running.
    plan_abort_.store(true, std::memory_order_release);
    return "ok";
  }
  std::vector<size_t> targets;
  for (const std::string& endpoint : request.endpoints) {
    size_t index = backends_.size();
    for (size_t i = 0; i < backends_.size(); ++i) {
      if (backends_[i]->endpoint == endpoint) {
        index = i;
        break;
      }
    }
    if (index == backends_.size()) {
      return serve::FormatError(Status::NotFound(
          "rebalance: '", endpoint, "' is not a configured backend"));
    }
    {
      std::lock_guard<std::mutex> lock(route_mu_);
      if (drained_.count(index) > 0) {
        return serve::FormatError(Status::FailedPrecondition(
            "rebalance: ", endpoint,
            " is drained and awaiting decommission"));
      }
    }
    if (std::find(targets.begin(), targets.end(), index) == targets.end()) {
      targets.push_back(index);
    }
  }
  std::string busy;
  if (!BeginAdmin("rebalance", &busy)) {
    return serve::FormatError(Status::FailedPrecondition(
        "router busy with ", busy, "; retry after it completes"));
  }
  struct AdminGuard {
    Router* router;
    ~AdminGuard() { router->EndAdmin(); }
  } admin_guard{this};
  const PlanProgress done = ExecutePlan("rebalance", targets);
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginObject();
  json.Key("planned").Number(done.total);
  json.Key("moved").Number(done.completed);
  json.Key("failed").Number(done.failed);
  json.Key("stayed").Number(done.stayed);
  json.Key("aborted").Bool(done.aborted);
  json.EndObject();
  return "ok " + os.str();
}

std::string Router::Drain(const serve::Request& request) {
  size_t victim = backends_.size();
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i]->endpoint == request.endpoint) {
      victim = i;
      break;
    }
  }
  if (victim == backends_.size()) {
    return serve::FormatError(Status::NotFound(
        "drain: '", request.endpoint, "' is not a configured backend"));
  }
  std::vector<size_t> targets;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    if (drained_.count(victim) > 0) {
      return serve::FormatError(Status::FailedPrecondition(
          "drain: ", request.endpoint, " is already drained"));
    }
    for (size_t i = 0; i < backends_.size(); ++i) {
      if (i != victim && drained_.count(i) == 0) targets.push_back(i);
    }
  }
  if (targets.empty()) {
    return serve::FormatError(Status::FailedPrecondition(
        "drain: no backend left to receive ", request.endpoint,
        "'s blocks"));
  }
  std::string busy;
  if (!BeginAdmin("drain", &busy)) {
    return serve::FormatError(Status::FailedPrecondition(
        "router busy with ", busy, "; retry after it completes"));
  }
  struct AdminGuard {
    Router* router;
    ~AdminGuard() { router->EndAdmin(); }
  } admin_guard{this};
  // The victim's own shard scrape is load-bearing: the plan's block
  // universe is the union of whatever backends answer `stats shards`, so a
  // victim that is down or cannot enumerate its shards would contribute
  // nothing, the plan would move nothing, and the drained mark would tell
  // the operator a backend still holding the only copy of its blocks is
  // safe to decommission. Refuse instead — a backend that never comes
  // back is --promote-after-ms territory, not drain's.
  Backend& victim_backend = *backends_[victim];
  {
    std::lock_guard<std::mutex> lock(victim_backend.mu);
    if (!victim_backend.health.Routable()) {
      return serve::FormatError(Status::Unavailable(
          "drain: ", request.endpoint,
          " is not routable, so its blocks cannot be copied off; refusing "
          "to mark it drained"));
    }
  }
  if (Result<std::unordered_map<std::string, std::pair<long long, long long>>>
          pre = FetchShardStats(victim_backend);
      !pre.ok()) {
    return serve::FormatError(Status::Unavailable(
        "drain: cannot enumerate shards on ", request.endpoint, " (",
        pre.status().message(), "); refusing to mark it drained"));
  }
  const PlanProgress done = ExecutePlan("drain", targets);
  if (done.failed > 0 || done.aborted) {
    // The drained mark is withheld: some blocks still live on the victim,
    // and refusing writes to them now would strand updates on a backend
    // the operator believes is empty. The drain is retried wholesale —
    // already-moved blocks plan as "stayed".
    return serve::FormatError(Status::Unavailable(
        "drain incomplete: ", done.completed, "/", done.total,
        " moves done, ", done.failed, " failed",
        done.aborted ? ", aborted" : "", "; ", request.endpoint,
        " still accepts writes — retry"));
  }
  // Post-verify against the victim itself: the plan's scrape may have
  // missed it (a transient failure between the pre-check and the plan), in
  // which case its solely-held blocks were never planned. The drained mark
  // is only set once the victim provably owns nothing it still reports.
  Result<std::unordered_map<std::string, std::pair<long long, long long>>>
      post = FetchShardStats(victim_backend);
  if (!post.ok()) {
    return serve::FormatError(Status::Unavailable(
        "drain: moves completed but ", request.endpoint,
        " cannot confirm it owns nothing (", post.status().message(),
        "); not marked drained — retry"));
  }
  std::vector<std::string> still_owned;
  for (const auto& [block, sizes] : post.ValueOrDie()) {
    if (EffectiveOrder(block)[0] == victim) still_owned.push_back(block);
  }
  if (!still_owned.empty()) {
    std::sort(still_owned.begin(), still_owned.end());
    std::string joined;
    for (size_t i = 0; i < still_owned.size() && i < 4; ++i) {
      if (!joined.empty()) joined += ", ";
      joined += still_owned[i];
    }
    if (still_owned.size() > 4) joined += ", ...";
    return serve::FormatError(Status::Unavailable(
        "drain incomplete: ", request.endpoint, " still owns ",
        still_owned.size(), " block(s) (", joined,
        ") the plan never saw; not marked drained — retry"));
  }
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    drained_.insert(victim);
  }
  PersistState();
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginObject();
  json.Key("endpoint").String(request.endpoint);
  json.Key("moved").Number(done.completed);
  json.Key("stayed").Number(done.stayed);
  json.EndObject();
  return "ok " + os.str();
}

std::string Router::RebalanceStatus() const {
  const PlanProgress progress = plan_progress();
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginObject();
  json.Key("started").Bool(progress.started);
  json.Key("active").Bool(progress.active);
  json.Key("aborted").Bool(progress.aborted);
  json.Key("kind").String(progress.kind);
  json.Key("total").Number(progress.total);
  json.Key("completed").Number(progress.completed);
  json.Key("failed").Number(progress.failed);
  json.Key("stayed").Number(progress.stayed);
  json.Key("last_error").String(progress.last_error);
  json.EndObject();
  return "ok " + os.str();
}

void Router::PersistState() {
  if (options_.state_file.empty()) return;
  std::string body = "weber-router-state v1\n";
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    // Endpoint strings, not indices: the file survives a backend-list
    // reorder across restarts. Sorted for a deterministic byte stream.
    std::map<std::string, size_t> overrides(route_override_.begin(),
                                            route_override_.end());
    for (const auto& [block, index] : overrides) {
      body += "override " + block + " " + backends_[index]->endpoint + "\n";
    }
    for (const size_t index : drained_) {
      body += "drained " + backends_[index]->endpoint + "\n";
    }
  }
  body += "crc " + std::to_string(Crc32c(body.data(), body.size())) + "\n";
  Status written;
  {
    // WriteFileAtomic stages through a fixed `<path>.tmp`; the lock keeps
    // two concurrent flips (parallel plan moves) from trampling it.
    std::lock_guard<std::mutex> lock(state_mu_);
    written = WriteFileAtomic(options_.state_file, body, /*sync=*/true);
  }
  if (written.ok()) {
    if (state_saves_ != nullptr) state_saves_->Increment();
  } else {
    if (state_save_failures_ != nullptr) state_save_failures_->Increment();
  }
}

void Router::LoadState() {
  if (options_.state_file.empty()) return;
  if (!FileExists(options_.state_file)) return;  // first boot: fresh start
  Result<std::string> read = ReadFileToString(options_.state_file);
  auto corrupt = [this](std::string why) {
    // Starting clean is the only honest recovery — applying half a file
    // would route on a table no previous router ever held. The error is
    // kept for the stats surface, never silently swallowed.
    state_load_ok_ = false;
    state_load_error_ = std::move(why);
    restored_overrides_ = 0;
    restored_drained_ = 0;
    state_skipped_ = 0;
    restored_unchecked_.clear();
  };
  if (!read.ok()) {
    corrupt(read.status().message());
    return;
  }
  const std::string& contents = read.ValueOrDie();
  std::vector<std::pair<std::string, size_t>> overrides;
  std::vector<size_t> drained;
  std::string checksummed;
  bool saw_header = false;
  bool saw_crc = false;
  size_t line_begin = 0;
  while (line_begin < contents.size()) {
    const size_t line_end = contents.find('\n', line_begin);
    if (line_end == std::string::npos) {
      return corrupt("truncated line (no trailing newline)");
    }
    const std::string line =
        contents.substr(line_begin, line_end - line_begin);
    line_begin = line_end + 1;
    if (!saw_header) {
      if (line != "weber-router-state v1") {
        return corrupt("bad header '" + line + "'");
      }
      saw_header = true;
      checksummed = line + "\n";
      continue;
    }
    if (line.rfind("crc ", 0) == 0) {
      const std::string digits = line.substr(4);
      unsigned long long stored = 0;
      bool parsed_crc = !digits.empty();
      for (const char c : digits) {
        if (c < '0' || c > '9') {
          parsed_crc = false;
          break;
        }
        stored = stored * 10 + static_cast<unsigned long long>(c - '0');
      }
      if (!parsed_crc || stored > 0xFFFFFFFFULL) {
        return corrupt("unparsable crc line");
      }
      const uint32_t actual =
          Crc32c(checksummed.data(), checksummed.size());
      if (static_cast<uint32_t>(stored) != actual) {
        return corrupt("crc mismatch (file " + line.substr(4) +
                       ", computed " + std::to_string(actual) + ")");
      }
      saw_crc = true;
      break;  // the crc line is the trailer; nothing may follow
    }
    checksummed += line + "\n";
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    auto find_backend = [this](const std::string& endpoint) {
      for (size_t i = 0; i < backends_.size(); ++i) {
        if (backends_[i]->endpoint == endpoint) return i;
      }
      return backends_.size();
    };
    if (kind == "override") {
      std::string block, endpoint;
      fields >> block >> endpoint;
      if (block.empty() || endpoint.empty()) {
        return corrupt("malformed override line '" + line + "'");
      }
      const size_t index = find_backend(endpoint);
      if (index == backends_.size()) {
        // The fleet shrank (or the flag list changed) since the save; a
        // missing endpoint is survivable — rendezvous still routes the
        // block — so skip and count rather than refuse to boot.
        ++state_skipped_;
        continue;
      }
      overrides.emplace_back(block, index);
    } else if (kind == "drained") {
      std::string endpoint;
      fields >> endpoint;
      if (endpoint.empty()) {
        return corrupt("malformed drained line '" + line + "'");
      }
      const size_t index = find_backend(endpoint);
      if (index == backends_.size()) {
        ++state_skipped_;
        continue;
      }
      drained.push_back(index);
    } else {
      return corrupt("unknown record kind '" + kind + "'");
    }
  }
  if (!saw_crc) return corrupt("missing crc trailer");
  if (line_begin != contents.size()) {
    // Anything after the crc trailer escapes the checksum entirely, so
    // accepting it would hollow out the corruption detection the CRC
    // exists to provide.
    return corrupt("trailing bytes after crc trailer");
  }
  {
    // Constructor context: no concurrent readers yet, but the locks are
    // cheap and keep the invariants uniform.
    std::lock_guard<std::mutex> lock(route_mu_);
    for (const auto& [block, index] : overrides) {
      route_override_[block] = index;
      ++restored_overrides_;
      restored_unchecked_.emplace_back(block, index);
    }
    for (const size_t index : drained) {
      drained_.insert(index);
      ++restored_drained_;
    }
  }
  // Seed promotion's block universe from the restored overrides, so a
  // router restarted just before a hard loss can promote blocks it has
  // never routed traffic for (deep probes seed the rest).
  for (const auto& [block, index] : overrides) NoteBlock(block);
}

void Router::CrossCheckOverrides() {
  std::lock_guard<std::mutex> check_lock(check_mu_);
  if (restored_unchecked_.empty()) return;
  // This runs inline on the prober thread, and every scrape of an
  // unreachable backend burns a full dial/call timeout. Two bounds keep
  // one deep cycle from stalling health transitions and promotion behind
  // seconds of blocking round-trips: a per-cycle scrape budget (leftovers
  // wait for the next deep cycle), and a per-cycle cache (a restored table
  // usually names the same two backends over and over, so most entries
  // check for free).
  constexpr int kMaxScrapesPerCycle = 4;
  using ShardSizes =
      std::unordered_map<std::string, std::pair<long long, long long>>;
  std::unordered_map<size_t, bool> scrape_ok;
  std::unordered_map<size_t, ShardSizes> scraped;
  int scrapes = 0;
  auto scrape = [&](size_t index) {
    auto it = scrape_ok.find(index);
    if (it != scrape_ok.end()) return it->second;
    ++scrapes;
    Result<ShardSizes> stats = FetchShardStats(*backends_[index]);
    scrape_ok[index] = stats.ok();
    if (stats.ok()) scraped[index] = std::move(stats).ValueOrDie();
    return scrape_ok[index];
  };
  std::vector<std::pair<std::string, size_t>> still_pending;
  for (const auto& [block, target] : restored_unchecked_) {
    const std::vector<size_t> pure = RouteOrder(block, backends_.size());
    const size_t rendezvous_owner = pure.empty() ? target : pure[0];
    if (rendezvous_owner == target) continue;  // nothing to contradict
    const int needed = (scrape_ok.count(target) == 0 ? 1 : 0) +
                       (scrape_ok.count(rendezvous_owner) == 0 ? 1 : 0);
    if (scrapes + needed > kMaxScrapesPerCycle) {
      still_pending.emplace_back(block, target);
      continue;
    }
    if (!scrape(target) || !scrape(rendezvous_owner)) {
      // One side unreachable: retry at the next deep probe cycle instead
      // of guessing.
      still_pending.emplace_back(block, target);
      continue;
    }
    long long target_docs = 0;
    long long owner_docs = 0;
    if (auto it = scraped[target].find(block); it != scraped[target].end()) {
      target_docs = it->second.first;
    }
    if (auto it = scraped[rendezvous_owner].find(block);
        it != scraped[rendezvous_owner].end()) {
      owner_docs = it->second.first;
    }
    if (owner_docs > target_docs && override_divergence_ != nullptr) {
      // The rendezvous owner holds more documents than the restored
      // override's target — the file likely outlived a migration the
      // other way, or the fleet changed under us. Routing still follows
      // the override (it may be the fresher truth); the divergence is
      // surfaced, not papered over.
      override_divergence_->Increment();
    }
  }
  restored_unchecked_ = std::move(still_pending);
}

void Router::NoteBlock(const std::string& block) {
  if (options_.promote_after_ms <= 0.0) return;
  std::lock_guard<std::mutex> lock(blocks_mu_);
  known_blocks_.insert(block);
}

void Router::NoteAcked(const std::string& block) {
  if (options_.promote_after_ms <= 0.0) return;
  std::lock_guard<std::mutex> lock(blocks_mu_);
  ++acked_by_block_[block];
}

void Router::NoteReplicated(const std::string& block) {
  if (options_.promote_after_ms <= 0.0) return;
  std::lock_guard<std::mutex> lock(blocks_mu_);
  ++replicated_by_block_[block];
}

void Router::MaybePromote(double now_ms) {
  if (options_.promote_after_ms <= 0.0) return;
  bool flipped = false;
  for (size_t i = 0; i < backends_.size(); ++i) {
    Backend& lost = *backends_[i];
    long long episode = 0;
    {
      std::lock_guard<std::mutex> lock(lost.mu);
      if (lost.health.state() != HealthState::kDown) continue;
      if (now_ms - lost.health.state_since_ms() <
          options_.promote_after_ms) {
        continue;
      }
      episode = lost.health.times_down();
    }
    // One promotion per down episode: if the backend comes back and dies
    // again, times_down moves and a fresh promotion is allowed.
    if (promoted_at_down_[i] == episode) continue;
    promoted_at_down_[i] = episode;
    std::vector<std::string> blocks;
    {
      std::lock_guard<std::mutex> lock(blocks_mu_);
      blocks.assign(known_blocks_.begin(), known_blocks_.end());
    }
    for (const std::string& block : blocks) {
      if (EffectiveOrder(block)[0] != i) continue;
      // The first routable, non-drained backend down the preference order
      // is the promotion target — with --replicas=2 that is exactly the
      // standby the replicator has been warming.
      size_t standby = backends_.size();
      for (const size_t index : EffectiveOrder(block)) {
        if (index == i) continue;
        {
          std::lock_guard<std::mutex> lock(route_mu_);
          if (drained_.count(index) > 0) continue;
        }
        Backend& candidate = *backends_[index];
        std::lock_guard<std::mutex> lock(candidate.mu);
        if (!candidate.health.Routable()) continue;
        standby = index;
        break;
      }
      if (standby == backends_.size()) continue;  // nobody left to promote
      ApplyOverride(block, standby);
      flipped = true;
      if (promotions_ != nullptr) promotions_->Increment();
      long long possibly_lost = 0;
      {
        std::lock_guard<std::mutex> lock(blocks_mu_);
        // Acked-but-unconfirmed-replicated is an honest UPPER BOUND on
        // loss — a write whose standby forward raced the crash may well
        // have landed. Claiming zero would be the dishonest direction.
        possibly_lost =
            std::max(0LL, acked_by_block_[block] - replicated_by_block_[block]);
        acked_by_block_[block] = 0;
        replicated_by_block_[block] = 0;
      }
      if (possibly_lost > 0 && possibly_lost_writes_ != nullptr) {
        possibly_lost_writes_->Increment(possibly_lost);
      }
    }
  }
  if (flipped) PersistState();
}

// ---------------------------------------------------------------------------
// Standby replication

void Router::EnqueueReplication(const std::string& block,
                                const std::string& line) {
  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    if (repl_queue_.size() >= options_.replication_queue_cap) {
      // Bounded on purpose: replication is a warm standby, not a
      // durability guarantee. Dropping (and counting) beats unbounded
      // memory growth when a standby is slow or down.
      if (replication_drops_ != nullptr) replication_drops_->Increment();
      return;
    }
    repl_queue_.emplace_back(block, line);
  }
  repl_cv_.notify_one();
}

void Router::ReplicatorLoop() {
  for (;;) {
    std::pair<std::string, std::string> item;
    {
      std::unique_lock<std::mutex> lock(repl_mu_);
      repl_cv_.wait(lock,
                    [this] { return repl_stop_ || !repl_queue_.empty(); });
      if (repl_queue_.empty()) {
        if (repl_stop_) return;
        continue;
      }
      item = std::move(repl_queue_.front());
      repl_queue_.pop_front();
    }
    const std::vector<size_t> order = EffectiveOrder(item.first);
    const size_t standbys = static_cast<size_t>(options_.replicas) - 1;
    size_t forwarded = 0;
    size_t applied_count = 0;
    for (size_t rank = 1; rank < order.size() && forwarded < standbys;
         ++rank) {
      {
        // A drained backend is leaving the fleet; warming it would strand
        // the copies. The next candidate down the order takes its place.
        std::lock_guard<std::mutex> lock(route_mu_);
        if (drained_.count(order[rank]) > 0) continue;
      }
      Backend& standby = *backends_[order[rank]];
      {
        std::lock_guard<std::mutex> lock(standby.mu);
        if (!standby.health.Routable()) continue;
      }
      ++forwarded;
      bool sent = false;
      Result<std::string> response =
          CallBackend(standby, item.second, options_.call_timeout_ms, &sent);
      bool applied = false;
      if (response.ok()) {
        Result<serve::Response> parsed =
            serve::ParseResponse(response.ValueOrDie());
        applied = parsed.ok() && parsed.ValueOrDie().ok();
      }
      if (applied) {
        ++applied_count;
        if (replicated_writes_ != nullptr) replicated_writes_->Increment();
      } else {
        if (replication_failures_ != nullptr) {
          replication_failures_->Increment();
        }
      }
    }
    if (forwarded > 0 && applied_count == forwarded) {
      // Confirmed on every standby it was offered to — this write cannot
      // be lost by promoting one of them.
      NoteReplicated(item.first);
    }
  }
}

BackendSnapshot Router::backend(size_t index) const {
  const Backend& b = *backends_[index];
  BackendSnapshot snap;
  snap.endpoint = b.endpoint;
  snap.breaker = b.breaker.state();
  snap.requests = b.requests->Value();
  snap.transport_failures = b.transport_failures->Value();
  std::lock_guard<std::mutex> lock(b.mu);
  snap.state = b.health.state();
  snap.consecutive_failures = b.health.consecutive_failures();
  snap.transitions = b.health.transitions();
  snap.times_down = b.health.times_down();
  snap.down_ms_total = b.health.down_ms_total();
  return snap;
}

std::string Router::StatsResponse() const {
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginObject();
  json.Key("router").BeginObject();
  json.Key("backends").Number(static_cast<long long>(backends_.size()));
  json.Key("requests").Number(requests_total_->Value());
  json.Key("retries").Number(retries_total_->Value());
  json.Key("failovers").Number(failovers_total_->Value());
  json.Key("probes").Number(probes_total_->Value());
  json.Key("probe_failures").Number(probe_failures_->Value());
  json.EndObject();
  // Both sections are gated so that a router run without migrations or
  // replication emits byte-identical stats to earlier releases.
  if (obs::Counter* migrations =
          migrations_.load(std::memory_order_acquire)) {
    size_t overrides = 0;
    {
      std::lock_guard<std::mutex> lock(route_mu_);
      overrides = route_override_.size();
    }
    json.Key("migration").BeginObject();
    json.Key("completed").Number(migrations->Value());
    json.Key("failed").Number(
        migration_failures_.load(std::memory_order_acquire)->Value());
    json.Key("route_overrides").Number(static_cast<long long>(overrides));
    json.EndObject();
  }
  if (options_.replicas > 1) {
    size_t queued = 0;
    {
      std::lock_guard<std::mutex> lock(repl_mu_);
      queued = repl_queue_.size();
    }
    json.Key("replication").BeginObject();
    json.Key("replicas").Number(static_cast<long long>(options_.replicas));
    json.Key("replicated_writes").Number(replicated_writes_->Value());
    json.Key("failures").Number(replication_failures_->Value());
    json.Key("drops").Number(replication_drops_->Value());
    json.Key("queued").Number(static_cast<long long>(queued));
    json.EndObject();
  }
  // The self-healing sections are likewise gated: a router that never ran
  // a plan, has no state file and no promotion deadline emits stats
  // byte-identical to the previous release.
  {
    const PlanProgress progress = plan_progress();
    const std::vector<std::string> drained = DrainedEndpoints();
    if (progress.started || !drained.empty()) {
      json.Key("rebalance").BeginObject();
      json.Key("active").Bool(progress.active);
      json.Key("aborted").Bool(progress.aborted);
      json.Key("kind").String(progress.kind);
      json.Key("total").Number(progress.total);
      json.Key("completed").Number(progress.completed);
      json.Key("failed").Number(progress.failed);
      json.Key("stayed").Number(progress.stayed);
      json.Key("last_error").String(progress.last_error);
      json.Key("drained").BeginArray();
      for (const std::string& endpoint : drained) json.String(endpoint);
      json.EndArray();
      json.EndObject();
    }
  }
  if (!options_.state_file.empty()) {
    json.Key("state").BeginObject();
    json.Key("load_ok").Bool(state_load_ok_);
    json.Key("load_error").String(state_load_error_);
    json.Key("restored_overrides").Number(restored_overrides_);
    json.Key("restored_drained").Number(restored_drained_);
    json.Key("skipped").Number(state_skipped_);
    json.Key("saves").Number(state_saves_->Value());
    json.Key("save_failures").Number(state_save_failures_->Value());
    json.Key("divergence").Number(override_divergence_->Value());
    json.EndObject();
  }
  if (options_.promote_after_ms > 0.0) {
    json.Key("promotion").BeginObject();
    json.Key("promote_after_ms").Number(options_.promote_after_ms);
    json.Key("promotions").Number(promotions_->Value());
    json.Key("possibly_lost_writes").Number(possibly_lost_writes_->Value());
    json.EndObject();
  }
  json.Key("backends").BeginArray();
  for (size_t i = 0; i < backends_.size(); ++i) {
    const BackendSnapshot snap = backend(i);
    json.BeginObject();
    json.Key("endpoint").String(snap.endpoint);
    json.Key("state").String(HealthStateName(snap.state));
    json.Key("breaker").String(serve::BreakerStateName(snap.breaker));
    json.Key("requests").Number(snap.requests);
    json.Key("transport_failures").Number(snap.transport_failures);
    json.Key("transitions").Number(snap.transitions);
    json.Key("times_down").Number(snap.times_down);
    json.Key("down_ms_total").Number(snap.down_ms_total);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return "ok " + os.str();
}

std::string Router::MetricsResponse() const {
  std::ostringstream os;
  registry_.WritePrometheusText(os);
  std::string payload = os.str();
  const long long lines = std::count(payload.begin(), payload.end(), '\n');
  std::string response = "ok " + std::to_string(lines);
  if (!payload.empty()) {
    payload.pop_back();  // the serving loop appends the final newline
    response += '\n';
    response += payload;
  }
  return response;
}

std::string Router::HandleLine(const std::string& line, bool* quit) {
  *quit = false;
  requests_total_->Increment();
  Result<serve::Request> parsed = serve::ParseRequest(line);
  if (!parsed.ok()) return serve::FormatError(parsed.status());
  const serve::Request& request = parsed.ValueOrDie();
  switch (request.op) {
    case serve::Request::Op::kAssign:
    case serve::Request::Op::kCompact:
      return ForwardWrite(request);
    case serve::Request::Op::kQuery:
    // Match is an idempotent snapshot read, so it shares the owner-first
    // failover path with query.
    case serve::Request::Op::kMatch:
      return ForwardRead(request);
    case serve::Request::Op::kDump:
      return ForwardDump(request);
    case serve::Request::Op::kCompactAll:
      return ForwardCompactAll(request);
    case serve::Request::Op::kStats:
      return StatsResponse();
    case serve::Request::Op::kMetrics:
      return MetricsResponse();
    case serve::Request::Op::kMigrate:
      return Migrate(request);
    case serve::Request::Op::kRebalance:
      return Rebalance(request);
    case serve::Request::Op::kDrain:
      return Drain(request);
    case serve::Request::Op::kExport:
    case serve::Request::Op::kImport:
      return serve::FormatError(Status::InvalidArgument(
          "'export'/'import' are backend verbs; ask the router to "
          "'migrate <block> <endpoint>' instead"));
    case serve::Request::Op::kPing:
      return "ok";
    case serve::Request::Op::kQuit:
      *quit = true;
      return "ok";
  }
  return serve::FormatError(Status::Internal("unhandled request op"));
}

void Router::ProbeBackend(Backend& backend, bool deep, double now_ms) {
  {
    std::lock_guard<std::mutex> lock(backend.mu);
    if (!backend.health.ShouldProbe(now_ms)) return;
    backend.health.NoteProbe(now_ms);
  }
  probes_total_->Increment();
  // Probes use their own connection (not the pool) so a wedged pooled
  // socket cannot make a healthy backend look dead, and vice versa.
  net::LineSocket socket;
  Status status =
      socket.Connect(backend.host, backend.port, options_.probe_timeout_ms);
  bool healthy = false;
  // With promotion armed, deep probes ask for the per-shard detail and
  // feed the shard names into promotion's block universe — otherwise a
  // restarted router could only promote blocks it had already routed
  // traffic for. Gated on promote_after_ms so a promotion-free router's
  // probe traffic stays byte-identical.
  const bool scrape_blocks = deep && options_.promote_after_ms > 0.0;
  if (status.ok()) {
    // A deep probe asks for stats — it exercises the whole service
    // dispatch, catching a process that accepts but cannot serve.
    Result<std::string> response =
        socket.Call(deep ? (scrape_blocks ? "stats shards" : "stats")
                         : "ping",
                    options_.probe_timeout_ms);
    if (response.ok()) {
      Result<serve::Response> parsed =
          serve::ParseResponse(response.ValueOrDie());
      healthy = parsed.ok() && parsed.ValueOrDie().ok();
      if (healthy && scrape_blocks) {
        for (const auto& [name, sizes] :
             ParseShardStats(parsed.ValueOrDie().body)) {
          NoteBlock(name);
        }
      }
    }
  }
  if (!healthy) probe_failures_->Increment();
  std::lock_guard<std::mutex> lock(backend.mu);
  if (healthy) {
    backend.health.OnSuccess(now_ms);
    backend.breaker.RecordSuccess();
  } else {
    backend.health.OnFailure(now_ms);
  }
  backend.state_gauge->Set(static_cast<int>(backend.health.state()));
}

void Router::ProbeOnce() {
  const long long cycle =
      probe_cycle_.fetch_add(1, std::memory_order_relaxed) + 1;
  const bool deep =
      options_.deep_probe_every > 0 && cycle % options_.deep_probe_every == 0;
  const double now_ms = NowMs();
  for (auto& backend : backends_) ProbeBackend(*backend, deep, now_ms);
  // Piggybacked on the probe cadence: promotion watches the same health
  // states the probes just refreshed, and the override cross-check reuses
  // the deep cycle's "backends can serve stats" signal.
  MaybePromote(NowMs());
  if (deep) CrossCheckOverrides();
}

void Router::ProberLoop() {
  std::unique_lock<std::mutex> lock(prober_mu_);
  while (!prober_stop_) {
    lock.unlock();
    ProbeOnce();
    lock.lock();
    prober_cv_.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(options_.probe_interval_ms),
        [this] { return prober_stop_; });
  }
}

}  // namespace router
}  // namespace weber

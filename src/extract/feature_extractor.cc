#include "extract/feature_extractor.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "ml/entropy.h"
#include "text/tfidf.h"

namespace weber {
namespace extract {

namespace {

/// Byte offsets of whole-word, case-insensitive occurrences of `needle` in
/// `haystack_lower` (already lowercased).
std::vector<int> FindKeywordOffsets(const std::string& haystack_lower,
                                    const std::string& needle_lower) {
  std::vector<int> offsets;
  if (needle_lower.empty()) return offsets;
  auto is_word = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
  };
  size_t pos = 0;
  for (;;) {
    pos = haystack_lower.find(needle_lower, pos);
    if (pos == std::string::npos) break;
    bool left_ok = pos == 0 || !is_word(haystack_lower[pos - 1]);
    size_t end = pos + needle_lower.size();
    bool right_ok = end >= haystack_lower.size() || !is_word(haystack_lower[end]);
    if (left_ok && right_ok) offsets.push_back(static_cast<int>(pos));
    pos += 1;
  }
  return offsets;
}

/// Distance between a mention span and the nearest keyword occurrence;
/// 0 when the keyword lies inside the mention span.
int SpanDistance(const EntityMention& m, const std::vector<int>& keyword_offsets,
                 int keyword_len) {
  int best = std::numeric_limits<int>::max();
  for (int off : keyword_offsets) {
    int kw_end = off + keyword_len;
    int d;
    if (off >= m.begin && kw_end <= m.end) {
      d = 0;
    } else if (kw_end <= m.begin) {
      d = m.begin - kw_end;
    } else if (off >= m.end) {
      d = off - m.end;
    } else {
      d = 0;  // partial overlap
    }
    best = std::min(best, d);
  }
  return best;
}

}  // namespace

FeatureExtractor::FeatureExtractor(const Gazetteer* gazetteer,
                                   FeatureExtractorOptions options)
    : gazetteer_(gazetteer),
      options_(options),
      analyzer_(options.analyzer) {}

Result<std::vector<FeatureBundle>> FeatureExtractor::ExtractBlock(
    const std::vector<PageInput>& pages, const std::string& query_name) const {
  if (pages.empty()) {
    return Status::InvalidArgument("ExtractBlock: empty block");
  }
  const std::string query_lower = ToLowerAscii(query_name);

  // Pass 1: analyze text, annotate entities, fit the block TF-IDF model.
  text::TfIdfModel tfidf;
  std::vector<std::vector<std::string>> analyzed(pages.size());
  std::vector<std::vector<EntityMention>> mentions(pages.size());
  for (size_t i = 0; i < pages.size(); ++i) {
    analyzed[i] = analyzer_.Analyze(pages[i].text);
    tfidf.AddDocument(analyzed[i]);
    mentions[i] = gazetteer_->Annotate(pages[i].text);
  }
  WEBER_RETURN_NOT_OK(tfidf.Finalize());

  // Block-level concept document frequency, for boilerplate suppression.
  std::unordered_map<int, int> concept_df;
  for (size_t i = 0; i < pages.size(); ++i) {
    std::unordered_set<int> seen;
    for (const EntityMention& m : mentions[i]) {
      if (gazetteer_->entry(m.entry_id).type == EntityType::kConcept &&
          seen.insert(m.entry_id).second) {
        concept_df[m.entry_id] += 1;
      }
    }
  }
  const bool suppress =
      static_cast<int>(pages.size()) >= options_.min_block_size_for_suppression;
  const double max_df =
      suppress
          ? options_.max_concept_block_frequency *
                static_cast<double>(pages.size())
          : static_cast<double>(pages.size());  // nothing exceeds this

  // Pass 2: assemble bundles.
  std::vector<FeatureBundle> bundles(pages.size());
  for (size_t i = 0; i < pages.size(); ++i) {
    FeatureBundle& fb = bundles[i];
    fb.url = pages[i].url;
    fb.tfidf = tfidf.Vectorize(analyzed[i]);
    fb.tfidf_dimension = tfidf.vocabulary_size();

    std::unordered_map<text::TermId, double> weighted_concepts;
    std::unordered_map<text::TermId, double> concepts;
    std::unordered_map<text::TermId, double> organizations;
    std::unordered_map<text::TermId, double> other_persons;
    std::unordered_map<int, int> person_counts;

    const std::string text_lower = ToLowerAscii(pages[i].text);
    const std::vector<int> keyword_offsets =
        FindKeywordOffsets(text_lower, query_lower);

    int best_distance = std::numeric_limits<int>::max();
    int closest_entry = -1;

    for (const EntityMention& m : mentions[i]) {
      const GazetteerEntry& e = gazetteer_->entry(m.entry_id);
      const text::TermId id = static_cast<text::TermId>(m.entry_id);
      switch (e.type) {
        case EntityType::kConcept:
          if (concept_df[m.entry_id] <= max_df) {
            weighted_concepts[id] += e.weight;
            concepts[id] = 1.0;
          }
          break;
        case EntityType::kOrganization:
          organizations[id] = 1.0;
          break;
        case EntityType::kPerson: {
          person_counts[m.entry_id] += 1;
          const bool is_query_person =
              e.surface.find(query_lower) != std::string::npos;
          if (!is_query_person) other_persons[id] = 1.0;
          if (!keyword_offsets.empty()) {
            int d = SpanDistance(m, keyword_offsets,
                                 static_cast<int>(query_lower.size()));
            if (d < best_distance ||
                (d == best_distance && closest_entry >= 0 &&
                 e.surface.size() >
                     gazetteer_->entry(closest_entry).surface.size())) {
              best_distance = d;
              closest_entry = m.entry_id;
            }
          }
          break;
        }
        case EntityType::kLocation:
          // Locations feed the concept overlap signal at unit weight; the
          // paper folds "other types of entities, such as organizations and
          // locations" into its feature set.
          concepts[id] = 1.0;
          weighted_concepts[id] += 0.5 * e.weight;
          break;
      }
    }

    fb.weighted_concepts = text::SparseVector::FromMap(weighted_concepts);
    fb.concepts = text::SparseVector::FromMap(concepts);
    fb.organizations = text::SparseVector::FromMap(organizations);
    fb.other_persons = text::SparseVector::FromMap(other_persons);

    // Most frequent person name (ties: lexicographically smallest surface,
    // for determinism).
    int best_count = 0;
    for (const auto& [entry_id, count] : person_counts) {
      const std::string& surface = gazetteer_->entry(entry_id).surface;
      if (count > best_count ||
          (count == best_count && !fb.most_frequent_name.empty() &&
           surface < fb.most_frequent_name)) {
        best_count = count;
        fb.most_frequent_name = surface;
      }
    }
    if (closest_entry >= 0) {
      fb.closest_name = gazetteer_->entry(closest_entry).surface;
    }

    // Entropy-based informativeness: feature-family presence (does the page
    // offer each kind of evidence at all?) blended with the diversity of
    // its term distribution.
    double presence = 0.0;
    presence += fb.most_frequent_name.empty() ? 0.0 : 1.0;
    presence += fb.concepts.empty() ? 0.0 : 1.0;
    presence += fb.organizations.empty() ? 0.0 : 1.0;
    presence += fb.other_persons.empty() ? 0.0 : 1.0;
    presence += fb.tfidf.empty() ? 0.0 : 1.0;
    presence /= 5.0;
    // Content volume via perplexity: the effective number of distinct terms
    // on the page. A boilerplate stub with a handful of terms scores near
    // zero even though its weight distribution is flat; a full page
    // saturates around kReferencePerplexity.
    constexpr double kReferencePerplexity = 50.0;
    std::vector<double> term_weights;
    term_weights.reserve(fb.tfidf.size());
    for (const auto& e : fb.tfidf.entries()) term_weights.push_back(e.weight);
    const double volume = std::min(
        1.0, ml::Perplexity(term_weights) / kReferencePerplexity);
    fb.informativeness = 0.5 * presence + 0.5 * volume;
  }
  return bundles;
}

}  // namespace extract
}  // namespace weber

// FeatureBundle: everything the ten similarity functions need to know about
// one Web page, produced by the FeatureExtractor preprocessing step
// (Section III: "the input to the similarity functions is the extracted
// information and not the pages themselves").

#ifndef WEBER_EXTRACT_FEATURE_BUNDLE_H_
#define WEBER_EXTRACT_FEATURE_BUNDLE_H_

#include <string>

#include "text/sparse_vector.h"

namespace weber {
namespace extract {

/// Extracted representation of one page. Sparse vectors over concept /
/// organization / person features use gazetteer entry ids; the TF-IDF vector
/// uses the block's word vocabulary ids.
struct FeatureBundle {
  /// Weighted concept vector: gazetteer weight x occurrence count (F1).
  text::SparseVector weighted_concepts;

  /// Binary concept incidence vector (F4).
  text::SparseVector concepts;

  /// Binary organization incidence vector (F5).
  text::SparseVector organizations;

  /// Binary incidence vector of person names other than the queried person
  /// (F6).
  text::SparseVector other_persons;

  /// Surface form of the most frequent person name on the page (F3); empty
  /// when the page mentions no person.
  std::string most_frequent_name;

  /// Surface form of the person name closest to an occurrence of the search
  /// keyword (F7); empty when absent.
  std::string closest_name;

  /// The page URL (F2).
  std::string url;

  /// TF-IDF weighted word vector, fitted per block (F8, F9, F10).
  text::SparseVector tfidf;

  /// Word-vocabulary size of the block's TF-IDF model; the ambient dimension
  /// for Pearson correlation (F9).
  int tfidf_dimension = 0;

  /// Entropy-based page informativeness in [0, 1] (the paper's future-work
  /// extension): how much evidence this page offers the similarity
  /// functions. Combines feature-family presence with the normalized
  /// entropy of the page's TF-IDF weight distribution. A sparse page with
  /// no extracted entities scores near 0; a rich page near 1.
  double informativeness = 0.0;
};

}  // namespace extract
}  // namespace weber

#endif  // WEBER_EXTRACT_FEATURE_BUNDLE_H_

#include "extract/url.h"

#include <algorithm>
#include <array>

#include "common/string_util.h"
#include "text/string_similarity.h"

namespace weber {
namespace extract {

namespace {

// Common second-level public suffixes under which registrable domains sit
// one label deeper ("example.co.uk"). Approximation of the public suffix
// list, sufficient for similarity purposes.
constexpr std::array<std::string_view, 12> kSecondLevelSuffixes = {
    "co.uk", "ac.uk", "org.uk", "gov.uk", "co.jp", "ac.jp",
    "com.au", "net.au", "org.au", "co.in", "ac.in", "com.br",
};

}  // namespace

Result<ParsedUrl> ParseUrl(std::string_view url) {
  std::string_view rest = TrimWhitespace(url);
  if (rest.empty()) return Status::InvalidArgument("empty URL");

  ParsedUrl out;
  size_t scheme_end = rest.find("://");
  if (scheme_end != std::string_view::npos) {
    out.scheme = ToLowerAscii(rest.substr(0, scheme_end));
    rest = rest.substr(scheme_end + 3);
  } else {
    out.scheme = "http";
  }

  size_t path_start = rest.find_first_of("/?#");
  std::string_view authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  std::string_view path_etc =
      path_start == std::string_view::npos ? "" : rest.substr(path_start);

  // Strip userinfo.
  size_t at = authority.rfind('@');
  if (at != std::string_view::npos) authority = authority.substr(at + 1);

  // Split host:port.
  size_t colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    int port = 0;
    if (ParseInt(authority.substr(colon + 1), &port)) {
      out.port = port;
      authority = authority.substr(0, colon);
    }
  }
  if (authority.empty()) return Status::InvalidArgument("URL has no host: ", std::string(url));
  out.host = ToLowerAscii(authority);
  out.registrable_domain = RegistrableDomain(out.host);

  // Path: drop query/fragment.
  size_t qf = path_etc.find_first_of("?#");
  std::string_view path = qf == std::string_view::npos ? path_etc : path_etc.substr(0, qf);
  out.path = path.empty() ? "/" : std::string(path);
  return out;
}

std::string RegistrableDomain(std::string_view host) {
  std::string lower = ToLowerAscii(host);
  std::vector<std::string> labels = Split(lower, '.');
  // Drop empty labels from leading/trailing dots.
  labels.erase(std::remove_if(labels.begin(), labels.end(),
                              [](const std::string& l) { return l.empty(); }),
               labels.end());
  if (labels.size() <= 2) return Join(labels, ".");
  std::string last_two = labels[labels.size() - 2] + "." + labels.back();
  for (std::string_view suffix : kSecondLevelSuffixes) {
    if (last_two == suffix) {
      return labels[labels.size() - 3] + "." + last_two;
    }
  }
  return last_two;
}

double UrlSimilarity(std::string_view url_a, std::string_view url_b) {
  Result<ParsedUrl> ra = ParseUrl(url_a);
  Result<ParsedUrl> rb = ParseUrl(url_b);
  if (!ra.ok() || !rb.ok()) return 0.0;
  const ParsedUrl& a = *ra;
  const ParsedUrl& b = *rb;

  if (a.host == b.host) {
    if (a.path == b.path) return 1.0;
    // Shared leading directory (beyond the root slash)?
    std::vector<std::string> pa = Split(a.path, '/');
    std::vector<std::string> pb = Split(b.path, '/');
    // Split("/x/y", '/') -> {"", "x", "y"}; index 1 is the first directory.
    if (pa.size() > 1 && pb.size() > 1 && !pa[1].empty() && pa[1] == pb[1]) {
      return 0.9;
    }
    return 0.8;
  }
  if (!a.registrable_domain.empty() &&
      a.registrable_domain == b.registrable_domain) {
    return 0.6;
  }
  return 0.4 * text::JaroWinklerSimilarity(a.host, b.host);
}

}  // namespace extract
}  // namespace weber

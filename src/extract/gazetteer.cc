#include "extract/gazetteer.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"

namespace weber {
namespace extract {

std::string_view EntityTypeToString(EntityType type) {
  switch (type) {
    case EntityType::kPerson:
      return "person";
    case EntityType::kOrganization:
      return "organization";
    case EntityType::kLocation:
      return "location";
    case EntityType::kConcept:
      return "concept";
  }
  return "unknown";
}

int Gazetteer::Add(std::string_view surface, EntityType type, double weight) {
  built_ = false;
  std::string lower = ToLowerAscii(surface);
  std::string key = std::string(EntityTypeToString(type)) + "|" + lower;
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    entries_[it->second].weight = std::max(entries_[it->second].weight, weight);
    return it->second;
  }
  int id = static_cast<int>(entries_.size());
  entries_.push_back({std::move(lower), type, weight});
  by_key_.emplace(std::move(key), id);
  return id;
}

void Gazetteer::Build() {
  matcher_ = AhoCorasick();
  pattern_to_entry_.clear();
  for (int i = 0; i < static_cast<int>(entries_.size()); ++i) {
    int pid = matcher_.AddPattern(entries_[i].surface);
    if (pid >= 0) {
      assert(pid == static_cast<int>(pattern_to_entry_.size()));
      pattern_to_entry_.push_back(i);
    }
  }
  matcher_.Build();
  built_ = true;
}

std::vector<EntityMention> Gazetteer::Annotate(std::string_view text) const {
  assert(built_);
  std::string lower = ToLowerAscii(text);
  std::vector<Match> matches = matcher_.FindAllWholeWords(lower);

  // Leftmost-longest resolution per entity type: sort by (type, begin,
  // -length) and drop matches starting inside the previously kept span.
  std::vector<EntityMention> mentions;
  mentions.reserve(matches.size());
  for (const Match& m : matches) {
    mentions.push_back({pattern_to_entry_[m.pattern_id], m.begin, m.end});
  }
  std::sort(mentions.begin(), mentions.end(),
            [this](const EntityMention& a, const EntityMention& b) {
              EntityType ta = entries_[a.entry_id].type;
              EntityType tb = entries_[b.entry_id].type;
              if (ta != tb) return static_cast<int>(ta) < static_cast<int>(tb);
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.end > b.end;  // longer first
            });
  std::vector<EntityMention> kept;
  kept.reserve(mentions.size());
  EntityType current_type = EntityType::kPerson;
  int covered_until = -1;
  bool first = true;
  for (const EntityMention& m : mentions) {
    EntityType t = entries_[m.entry_id].type;
    if (first || t != current_type) {
      current_type = t;
      covered_until = -1;
      first = false;
    }
    if (m.begin >= covered_until) {
      kept.push_back(m);
      covered_until = m.end;
    }
  }
  // Restore document order.
  std::sort(kept.begin(), kept.end(),
            [](const EntityMention& a, const EntityMention& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.end < b.end;
            });
  return kept;
}

}  // namespace extract
}  // namespace weber

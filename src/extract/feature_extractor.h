// FeatureExtractor: turns raw pages of one block (all pages sharing an
// ambiguous person name) into FeatureBundles.

#ifndef WEBER_EXTRACT_FEATURE_EXTRACTOR_H_
#define WEBER_EXTRACT_FEATURE_EXTRACTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "extract/feature_bundle.h"
#include "extract/gazetteer.h"
#include "text/analyzer.h"

namespace weber {
namespace extract {

/// Raw input for one page.
struct PageInput {
  std::string url;
  std::string text;
};

struct FeatureExtractorOptions {
  text::AnalyzerOptions analyzer;
  /// Concepts occurring on at least this fraction of the block's pages are
  /// treated as boilerplate and dropped from concept features (they carry no
  /// disambiguation signal).
  double max_concept_block_frequency = 0.9;

  /// Boilerplate suppression needs a meaningful block-frequency estimate;
  /// blocks smaller than this skip it entirely.
  int min_block_size_for_suppression = 5;
};

/// Stateless orchestrator. TF-IDF statistics are fitted per block, so
/// feature extraction is a two-pass operation over the block's pages.
class FeatureExtractor {
 public:
  /// The gazetteer must outlive the extractor and be Build()-ready.
  FeatureExtractor(const Gazetteer* gazetteer,
                   FeatureExtractorOptions options = {});

  /// Extracts features for all pages of a block. `query_name` is the
  /// ambiguous person name the block is organized around (lowercase
  /// expected; used for F6's "other persons" and F7's keyword proximity).
  /// Returns InvalidArgument for an empty block.
  Result<std::vector<FeatureBundle>> ExtractBlock(
      const std::vector<PageInput>& pages, const std::string& query_name) const;

 private:
  const Gazetteer* gazetteer_;
  FeatureExtractorOptions options_;
  text::Analyzer analyzer_;
};

}  // namespace extract
}  // namespace weber

#endif  // WEBER_EXTRACT_FEATURE_EXTRACTOR_H_

#include "extract/aho_corasick.h"

#include <cassert>
#include <deque>

namespace weber {
namespace extract {

namespace {
inline bool IsWordChar(unsigned char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9');
}
}  // namespace

int AhoCorasick::AddPattern(std::string_view pattern) {
  if (pattern.empty()) return -1;
  built_ = false;
  int node = 0;
  for (unsigned char c : pattern) {
    auto it = nodes_[node].next.find(c);
    if (it == nodes_[node].next.end()) {
      int child = static_cast<int>(nodes_.size());
      nodes_[node].next.emplace(c, child);
      nodes_.emplace_back();
      node = child;
    } else {
      node = it->second;
    }
  }
  int id = static_cast<int>(pattern_lengths_.size());
  pattern_lengths_.push_back(static_cast<int>(pattern.size()));
  nodes_[node].outputs.push_back(id);
  return id;
}

void AhoCorasick::Build() {
  if (built_) return;
  std::deque<int> queue;
  nodes_[0].fail = 0;
  nodes_[0].output_link = -1;
  for (auto& [c, child] : nodes_[0].next) {
    nodes_[child].fail = 0;
    nodes_[child].output_link = -1;
    queue.push_back(child);
  }
  while (!queue.empty()) {
    int node = queue.front();
    queue.pop_front();
    for (auto& [c, child] : nodes_[node].next) {
      // Follow failure links to find the longest proper suffix with an edge
      // labelled c.
      int f = nodes_[node].fail;
      while (f != 0 && !nodes_[f].next.count(c)) f = nodes_[f].fail;
      auto it = nodes_[f].next.find(c);
      int target = (it != nodes_[f].next.end() && it->second != child)
                       ? it->second
                       : 0;
      nodes_[child].fail = target;
      nodes_[child].output_link =
          nodes_[target].outputs.empty() ? nodes_[target].output_link : target;
      queue.push_back(child);
    }
  }
  built_ = true;
}

std::vector<Match> AhoCorasick::FindAll(std::string_view text) const {
  assert(built_);
  std::vector<Match> matches;
  int node = 0;
  for (int i = 0; i < static_cast<int>(text.size()); ++i) {
    unsigned char c = static_cast<unsigned char>(text[i]);
    while (node != 0 && !nodes_[node].next.count(c)) node = nodes_[node].fail;
    auto it = nodes_[node].next.find(c);
    node = (it != nodes_[node].next.end()) ? it->second : 0;
    // Emit outputs at this node, then along the output-link chain (which by
    // construction only visits suffix nodes that carry outputs).
    for (int out = node; out != -1; out = nodes_[out].output_link) {
      for (int pid : nodes_[out].outputs) {
        int len = pattern_lengths_[pid];
        matches.push_back({pid, i - len + 1, i + 1});
      }
    }
  }
  return matches;
}

std::vector<Match> AhoCorasick::FindAllWholeWords(std::string_view text) const {
  std::vector<Match> all = FindAll(text);
  std::vector<Match> filtered;
  filtered.reserve(all.size());
  for (const Match& m : all) {
    bool left_ok =
        m.begin == 0 ||
        !IsWordChar(static_cast<unsigned char>(text[m.begin - 1]));
    bool right_ok =
        m.end == static_cast<int>(text.size()) ||
        !IsWordChar(static_cast<unsigned char>(text[m.end]));
    if (left_ok && right_ok) filtered.push_back(m);
  }
  return filtered;
}

}  // namespace extract
}  // namespace weber

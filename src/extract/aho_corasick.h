// Aho-Corasick multi-pattern string matcher. Powers the dictionary-based
// entity extractors: all gazetteer phrases are located in a single pass over
// the page text.

#ifndef WEBER_EXTRACT_AHO_CORASICK_H_
#define WEBER_EXTRACT_AHO_CORASICK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace weber {
namespace extract {

/// One located occurrence of a pattern.
struct Match {
  int pattern_id = -1;  ///< Index of the pattern as passed to AddPattern.
  int begin = 0;        ///< Byte offset of the first character.
  int end = 0;          ///< Byte offset one past the last character.
  bool operator==(const Match&) const = default;
};

/// Case-sensitive Aho-Corasick automaton. Build with AddPattern + Build,
/// then call FindAll on any number of texts. Callers wanting
/// case-insensitive matching lowercase both patterns and text (the
/// Gazetteer does this).
class AhoCorasick {
 public:
  /// Registers a pattern; returns its pattern id (dense, starting at 0).
  /// Empty patterns are rejected with id -1.
  int AddPattern(std::string_view pattern);

  /// Builds failure links. Must be called after the last AddPattern and
  /// before FindAll. Idempotent.
  void Build();

  /// Reports every occurrence of every pattern in `text`, in increasing
  /// order of end offset. Overlapping matches are all reported.
  std::vector<Match> FindAll(std::string_view text) const;

  /// As FindAll, but only matches delimited by non-word characters (or text
  /// boundaries) on both sides are reported, so "art" does not match inside
  /// "cartel". Word characters are ASCII alphanumerics.
  std::vector<Match> FindAllWholeWords(std::string_view text) const;

  int num_patterns() const { return static_cast<int>(pattern_lengths_.size()); }

 private:
  struct Node {
    std::unordered_map<unsigned char, int> next;
    int fail = 0;
    int output_link = -1;              // nearest suffix node with outputs
    std::vector<int> outputs;          // pattern ids ending at this node
  };

  std::vector<Node> nodes_{Node{}};
  std::vector<int> pattern_lengths_;
  bool built_ = false;
};

}  // namespace extract
}  // namespace weber

#endif  // WEBER_EXTRACT_AHO_CORASICK_H_

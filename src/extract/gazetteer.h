// Gazetteer: typed dictionary of known entity surface forms. The
// dictionary-based named-entity recognizer the paper relies on ("we apply
// (dictionary-based) named entity recognition techniques", Section III).

#ifndef WEBER_EXTRACT_GAZETTEER_H_
#define WEBER_EXTRACT_GAZETTEER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "extract/aho_corasick.h"

namespace weber {
namespace extract {

/// The entity types the similarity functions consume.
enum class EntityType : int {
  kPerson = 0,
  kOrganization = 1,
  kLocation = 2,
  kConcept = 3,
};

constexpr int kNumEntityTypes = 4;

std::string_view EntityTypeToString(EntityType type);

/// One dictionary entry.
struct GazetteerEntry {
  std::string surface;  ///< Surface form as it appears in text (lowercased).
  EntityType type = EntityType::kConcept;
  /// Salience weight; concepts carry Wikipedia-style relevance weights
  /// consumed by F1, other types typically 1.0.
  double weight = 1.0;
};

/// One recognized mention in a page.
struct EntityMention {
  int entry_id = -1;  ///< Index into the gazetteer's entries().
  int begin = 0;      ///< Byte offset in the (lowercased) text.
  int end = 0;
};

/// Immutable after Build(): add all entries first.
class Gazetteer {
 public:
  /// Adds an entry (surface form is lowercased internally). Duplicate
  /// surfaces of the same type are collapsed, keeping the max weight.
  /// Returns the entry id.
  int Add(std::string_view surface, EntityType type, double weight = 1.0);

  /// Prepares the matcher. Must be called before Annotate.
  void Build();

  /// Finds all whole-word dictionary mentions in `text` (matching is
  /// case-insensitive). When mentions of the same type overlap, only the
  /// longest is kept (leftmost-longest resolution per type).
  std::vector<EntityMention> Annotate(std::string_view text) const;

  const GazetteerEntry& entry(int id) const { return entries_[id]; }
  int size() const { return static_cast<int>(entries_.size()); }

 private:
  std::vector<GazetteerEntry> entries_;
  // Maps "type|surface" to entry id for dedup.
  std::unordered_map<std::string, int> by_key_;
  AhoCorasick matcher_;
  std::vector<int> pattern_to_entry_;
  bool built_ = false;
};

}  // namespace extract
}  // namespace weber

#endif  // WEBER_EXTRACT_GAZETTEER_H_

// URL parsing and URL similarity (feature for F2).

#ifndef WEBER_EXTRACT_URL_H_
#define WEBER_EXTRACT_URL_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace weber {
namespace extract {

/// Decomposed URL. Only the pieces the similarity functions need.
struct ParsedUrl {
  std::string scheme;             ///< "http", "https", ... (lowercased)
  std::string host;               ///< "people.epfl.ch" (lowercased)
  std::string registrable_domain; ///< "epfl.ch" — host minus subdomains
  std::string path;               ///< "/~yerva/index.html" (never empty: "/")
  int port = 0;                   ///< 0 when absent

  bool operator==(const ParsedUrl&) const = default;
};

/// Parses an absolute URL. Accepts scheme-less inputs ("www.epfl.ch/x") by
/// assuming http. Returns InvalidArgument for empty or host-less inputs.
Result<ParsedUrl> ParseUrl(std::string_view url);

/// Approximates the registrable domain of a host: the last two labels, or
/// the last three when the second-to-last is a well-known second-level
/// public suffix ("co.uk", "ac.jp", ...).
std::string RegistrableDomain(std::string_view host);

/// URL similarity in [0, 1] (the measure behind F2):
///   1.0              same host, same path
///   0.9              same host, paths share a directory prefix
///   0.8              same host
///   0.6              same registrable domain, different host
///   otherwise        character-level similarity of the hosts, scaled to
///                    [0, 0.4] so cross-domain pages never look like strong
///                    matches.
/// Unparseable URLs compare at 0.
double UrlSimilarity(std::string_view url_a, std::string_view url_b);

}  // namespace extract
}  // namespace weber

#endif  // WEBER_EXTRACT_URL_H_

// POSIX TCP client plumbing shared by the serving and routing layers.
//
//   * DialTcp — connect to an IPv4 literal with an optional connect
//     timeout (non-blocking connect + poll), returning the connected fd.
//   * LineSocket — a buffered, newline-delimited client over a connected
//     socket with an optional poll-based per-read timeout. This is the
//     transport under serve::LineConnection and every router→backend hop,
//     so a dead or wedged peer turns into a Status instead of a stuck
//     thread.
//
// Timeouts are soft per-call budgets, not socket options: each blocking
// wait polls with the remaining budget, so a slow trickle of bytes cannot
// stretch one read forever. A timed-out read returns DeadlineExceeded;
// every other transport failure (reset, refused, EOF) returns IOError.
// Callers that treat both as "the peer is unhealthy" can branch on
// Status::ok() alone.

#ifndef WEBER_COMMON_NET_UTIL_H_
#define WEBER_COMMON_NET_UTIL_H_

#include <string>

#include "common/result.h"

namespace weber {
namespace net {

/// Connects to `host`:`port` where `host` is an IPv4 literal (the fleet is
/// loopback/LAN addressed; no resolver dependency). `timeout_ms` > 0 bounds
/// the connect itself via a non-blocking connect + poll; 0 blocks. The
/// returned fd is in blocking mode and owned by the caller.
Result<int> DialTcp(const std::string& host, int port, double timeout_ms = 0);

/// Writes all of `data`; partial sends are continued. IOError on failure.
Status SendAll(int fd, const char* data, size_t size);

/// Buffered line-oriented TCP client. Not thread-safe; one owner at a time.
class LineSocket {
 public:
  LineSocket() = default;
  ~LineSocket() { Close(); }

  LineSocket(const LineSocket&) = delete;
  LineSocket& operator=(const LineSocket&) = delete;
  LineSocket(LineSocket&& other) noexcept { *this = std::move(other); }
  LineSocket& operator=(LineSocket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      buffer_ = std::move(other.buffer_);
      other.fd_ = -1;
      other.buffer_.clear();
    }
    return *this;
  }

  /// Dials and adopts the connection (closing any previous one).
  Status Connect(const std::string& host, int port, double timeout_ms = 0);

  /// Adopts an already-connected fd (takes ownership).
  void Adopt(int fd);

  /// Writes `line` plus a newline.
  Status SendLine(const std::string& line);

  /// Reads up to the next newline (stripped, trailing '\r' removed).
  /// `timeout_ms` > 0 bounds the whole read; expiry returns
  /// DeadlineExceeded. EOF or a reset returns IOError. Either failure
  /// leaves the connection unusable for framing purposes — Close() it.
  Result<std::string> ReadLine(double timeout_ms = 0);

  /// SendLine + ReadLine round trip under one budget.
  Result<std::string> Call(const std::string& line, double timeout_ms = 0) {
    WEBER_RETURN_NOT_OK(SendLine(line));
    return ReadLine(timeout_ms);
  }

  /// Half-closes both directions without releasing the fd, so a reader
  /// blocked in ReadLine() on another thread wakes with EOF.
  void Shutdown();

  void Close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace net
}  // namespace weber

#endif  // WEBER_COMMON_NET_UTIL_H_

#include "common/trace.h"

#include "common/logging.h"

namespace weber {
namespace obs {

namespace {
thread_local uint64_t g_current_request_id = 0;
}  // namespace

uint64_t SetCurrentRequestId(uint64_t id) {
  const uint64_t previous = g_current_request_id;
  g_current_request_id = id;
  return previous;
}

uint64_t CurrentRequestId() { return g_current_request_id; }

TraceCollector::TraceCollector(TraceOptions options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {
  if (options_.capacity == 0) options_.capacity = 1;
  ring_.resize(options_.capacity);
}

double TraceCollector::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceCollector::Record(const char* name, uint64_t request_id,
                            double start_ms, double duration_ms) {
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (options_.slow_ms > 0.0 && duration_ms >= options_.slow_ms) {
    slow_.fetch_add(1, std::memory_order_relaxed);
    WEBER_LOG(WARNING) << "slow span '" << name << "' request_id="
                       << request_id << " took " << duration_ms
                       << " ms (threshold " << options_.slow_ms << " ms)";
  }
  std::lock_guard<std::mutex> lock(mu_);
  ring_[ring_next_] = TraceSpan{name, request_id, start_ms, duration_ms};
  ring_next_ = (ring_next_ + 1) % ring_.size();
  if (ring_next_ == 0) ring_full_ = true;
}

std::vector<TraceSpan> TraceCollector::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceSpan> out;
  if (ring_full_) {
    out.reserve(ring_.size());
    for (size_t i = ring_next_; i < ring_.size(); ++i) out.push_back(ring_[i]);
    for (size_t i = 0; i < ring_next_; ++i) out.push_back(ring_[i]);
  } else {
    out.assign(ring_.begin(), ring_.begin() + ring_next_);
  }
  return out;
}

}  // namespace obs
}  // namespace weber

// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (corpus generation, training-set
// sampling, k-means seeding) draw from weber::Rng so experiments are exactly
// reproducible from a seed. The engine is xoshiro256**, seeded via SplitMix64
// (the construction recommended by its authors); both are implemented here so
// results do not depend on the standard library's unspecified distributions.

#ifndef WEBER_COMMON_RANDOM_H_
#define WEBER_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace weber {

/// SplitMix64: used for seeding and as a cheap stateless mixer.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed);

  uint64_t Next();

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

/// High-level deterministic random source with the distributions the library
/// needs. Not thread-safe; create one per thread/experiment.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5EEDULL) : engine_(seed) {}

  /// Uniform 64-bit value.
  uint64_t NextUint64() { return engine_.Next(); }

  /// Uniform integer in [0, bound). bound must be > 0. Uses rejection
  /// sampling (Lemire-style) to avoid modulo bias.
  uint64_t UniformUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller (cached spare deviate).
  double Normal();

  /// Normal with the given mean and stddev.
  double Normal(double mean, double stddev);

  /// Zipf-distributed rank in [0, n): probability of rank r proportional to
  /// 1/(r+1)^s. Implemented by inversion over precomputable partial sums is
  /// avoided; uses rejection-inversion (Jacobsen) suitable for any n >= 1.
  int Zipf(int n, double s);

  /// Poisson-distributed count with the given mean (Knuth for small lambda,
  /// normal approximation above 60).
  int Poisson(double lambda);

  /// Samples an index according to the (unnormalized, non-negative) weights.
  /// Returns -1 if all weights are zero or the vector is empty.
  int Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) without replacement (k <= n).
  /// Returned in random order.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Derives an independent child generator; streams with distinct tags do
  /// not overlap in practice.
  Rng Fork(uint64_t tag);

 private:
  Xoshiro256 engine_;
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace weber

#endif  // WEBER_COMMON_RANDOM_H_

// Elapsed-real-time timer for coarse experiment timings. Despite the
// name, it reads std::chrono::steady_clock — a monotonic clock immune to
// NTP steps and manual clock changes — not the system wall clock, so
// measured durations are always non-negative.

#ifndef WEBER_COMMON_TIMER_H_
#define WEBER_COMMON_TIMER_H_

#include <chrono>

namespace weber {

/// Starts on construction; ElapsedSeconds/Millis read without stopping.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace weber

#endif  // WEBER_COMMON_TIMER_H_

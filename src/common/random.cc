#include "common/random.h"

#include <cassert>
#include <cmath>

namespace weber {

Xoshiro256::Xoshiro256(uint64_t seed) {
  SplitMix64 mixer(seed);
  for (auto& s : s_) s = mixer.Next();
}

uint64_t Xoshiro256::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling over the largest multiple of `bound`.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = engine_.Next();
    if (r >= threshold) return r % bound;
  }
}

int Rng::UniformInt(int lo, int hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  return lo + static_cast<int>(UniformUint64(span));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(engine_.Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = UniformDouble(-1.0, 1.0);
    v = UniformDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * mul;
  have_spare_normal_ = true;
  return u * mul;
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

int Rng::Zipf(int n, double s) {
  assert(n >= 1);
  if (n == 1) return 0;
  // Rejection-inversion sampling (Jacobsen). Works for s != 1; nudge s==1.
  if (std::fabs(s - 1.0) < 1e-9) s = 1.0 + 1e-9;
  const double oms = 1.0 - s;
  auto h_integral = [oms](double x) { return std::pow(x, oms) / oms; };
  auto h_integral_inv = [oms](double x) { return std::pow(oms * x, 1.0 / oms); };
  const double h_x1 = h_integral(1.5) - 1.0;
  const double h_n = h_integral(n + 0.5);
  for (;;) {
    const double u = h_n + UniformDouble() * (h_x1 - h_n);
    const double x = h_integral_inv(u);
    int k = static_cast<int>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    if (k - x <= 0.5 ||
        u >= h_integral(k + 0.5) - std::pow(static_cast<double>(k), -s)) {
      return k - 1;  // 0-based rank
    }
  }
}

int Rng::Poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda > 60.0) {
    int v = static_cast<int>(std::lround(Normal(lambda, std::sqrt(lambda))));
    return v < 0 ? 0 : v;
  }
  const double l = std::exp(-lambda);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= UniformDouble();
  } while (p > l);
  return k - 1;
}

int Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return -1;
  double target = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    target -= weights[i];
    if (target < 0.0) return static_cast<int>(i);
  }
  // Floating-point slack: return the last positive-weight index.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  assert(k >= 0 && k <= n);
  // Partial Fisher-Yates over an index array; O(n) space, O(n + k) time.
  std::vector<int> idx(n);
  for (int i = 0; i < n; ++i) idx[i] = i;
  for (int i = 0; i < k; ++i) {
    int j = i + static_cast<int>(UniformUint64(static_cast<uint64_t>(n - i)));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork(uint64_t tag) {
  SplitMix64 mixer(engine_.Next() ^ (tag * 0x9E3779B97F4A7C15ULL));
  return Rng(mixer.Next());
}

}  // namespace weber

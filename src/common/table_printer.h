// Aligned fixed-width console tables, used by the benchmark harness to print
// the paper's tables/figures as readable text.

#ifndef WEBER_COMMON_TABLE_PRINTER_H_
#define WEBER_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace weber {

/// Collects rows of string cells and renders them with per-column alignment.
///
///   TablePrinter t;
///   t.SetHeader({"name", "Fp", "F1"});
///   t.AddRow({"Cohen", "0.8991", "0.8816"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  /// Column alignment; numbers read best right-aligned.
  enum class Align { kLeft, kRight };

  void SetHeader(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Adds a horizontal separator line at the current position.
  void AddSeparator();

  /// Sets the alignment for a column (default: first column left, rest
  /// right). Must be called after SetHeader.
  void SetAlign(size_t column, Align align);

  /// Renders the table. Cell widths are computed from content.
  void Print(std::ostream& os) const;

  /// Renders the table as comma-separated values (no alignment padding).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  static constexpr const char* kSeparatorMarker = "\x01--";

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> align_;
};

}  // namespace weber

#endif  // WEBER_COMMON_TABLE_PRINTER_H_

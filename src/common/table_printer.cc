#include "common/table_printer.h"

#include <algorithm>

namespace weber {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
  align_.assign(header_.size(), Align::kRight);
  if (!align_.empty()) align_[0] = Align::kLeft;
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.push_back({kSeparatorMarker}); }

void TablePrinter::SetAlign(size_t column, Align align) {
  if (column < align_.size()) align_[column] = align;
}

void TablePrinter::Print(std::ostream& os) const {
  // Compute column widths.
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (!row.empty() && row[0] == kSeparatorMarker) continue;
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto print_cells = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      size_t pad = width[c] - std::min(width[c], cell.size());
      if (c > 0) os << "  ";
      if (align_[c] == Align::kRight) os << std::string(pad, ' ') << cell;
      else os << cell << std::string(pad, ' ');
    }
    os << "\n";
  };

  auto print_rule = [&] {
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << "\n";
  };

  if (!header_.empty()) {
    print_cells(header_);
    print_rule();
  }
  for (const auto& row : rows_) {
    if (!row.empty() && row[0] == kSeparatorMarker) {
      print_rule();
    } else {
      print_cells(row);
    }
  }
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  if (!header_.empty()) print_row(header_);
  for (const auto& row : rows_) {
    if (!row.empty() && row[0] == kSeparatorMarker) continue;
    print_row(row);
  }
}

}  // namespace weber

// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding every write-ahead-log record and snapshot file in the
// durability layer. Chosen over plain CRC32 for its better error-detection
// properties on short records (the same reason LevelDB/RocksDB use it).
//
// Software implementation (slicing-by-four table lookup); fast enough for
// the record sizes the WAL writes and free of ISA dependencies.

#ifndef WEBER_COMMON_CRC32C_H_
#define WEBER_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace weber {

/// Extends a running CRC32C with `n` more bytes. Pass the previous return
/// value as `crc` to checksum data in chunks.
uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n);

/// CRC32C of one contiguous buffer. Crc32c("123456789") == 0xE3069283.
inline uint32_t Crc32c(const void* data, size_t n) {
  return ExtendCrc32c(0, data, n);
}

}  // namespace weber

#endif  // WEBER_COMMON_CRC32C_H_

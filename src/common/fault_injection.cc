#include "common/fault_injection.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "common/string_util.h"

namespace weber {
namespace faults {

namespace {

/// SplitMix64 step (duplicated from random.h to keep this file free of the
/// Rng class; fault streams must not share state with experiment streams).
uint64_t NextState(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double NextDouble(uint64_t* state) {
  return (NextState(state) >> 11) * 0x1.0p-53;
}

uint64_t HashName(const std::string& name) {
  // FNV-1a; only needs to decorrelate per-point streams.
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : name) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001B3ULL;
  return h;
}

}  // namespace

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(const std::string& point, FaultConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState state;
  state.config = config;
  state.rng_state = seed_ ^ HashName(point);
  state.triggers = 0;
  points_[point] = state;
  any_armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.erase(point);
  any_armed_.store(!points_.empty(), std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  any_armed_.store(false, std::memory_order_relaxed);
}

void FaultInjector::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
}

long long FaultInjector::TriggerCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.triggers;
}

std::vector<std::string> FaultInjector::ArmedPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, state] : points_) names.push_back(name);
  return names;
}

bool FaultInjector::Roll(const char* point, FaultConfig* fired,
                         double* jitter_unit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return false;
  PointState& state = it->second;
  if (state.config.max_triggers > 0 &&
      state.triggers >= state.config.max_triggers) {
    return false;
  }
  if (NextDouble(&state.rng_state) >= state.config.probability) return false;
  ++state.triggers;
  *fired = state.config;
  // The extra draw happens only for jitter faults so the trigger streams of
  // every other kind stay bit-identical to what they were before jitter
  // existed (seeded chaos runs must not shift).
  if (jitter_unit != nullptr && fired->kind == FaultKind::kJitter) {
    *jitter_unit = NextDouble(&state.rng_state);
  }
  return true;
}

Status FaultInjector::CheckFail(const char* point) {
  FaultConfig fired;
  double jitter_unit = 0.0;
  if (!Roll(point, &fired, &jitter_unit)) return Status::OK();
  switch (fired.kind) {
    case FaultKind::kError:
      return Status(fired.code, std::string("injected fault at ") + point);
    case FaultKind::kLatency:
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          fired.param));
      return Status::OK();
    case FaultKind::kJitter:
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          jitter_unit * fired.param));
      return Status::OK();
    default:
      // Value-corruption kinds do not apply to a fail-check site.
      return Status::OK();
  }
}

bool FaultInjector::CheckCorrupt(const char* point, double* value) {
  FaultConfig fired;
  double jitter_unit = 0.0;
  if (!Roll(point, &fired, &jitter_unit)) return false;
  switch (fired.kind) {
    case FaultKind::kNaN:
      *value = std::numeric_limits<double>::quiet_NaN();
      return true;
    case FaultKind::kPosInf:
      *value = std::numeric_limits<double>::infinity();
      return true;
    case FaultKind::kNegInf:
      *value = -std::numeric_limits<double>::infinity();
      return true;
    case FaultKind::kOutOfRange:
      *value = fired.param;
      return true;
    case FaultKind::kLatency:
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          fired.param));
      return false;
    case FaultKind::kJitter:
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          jitter_unit * fired.param));
      return false;
    default:
      return false;
  }
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  for (std::string_view entry : Split(spec, ';')) {
    entry = TrimWhitespace(entry);
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("fault spec entry '", std::string(entry),
                                     "' is not point=kind[:prob[:param[:max]]]");
    }
    std::string point(TrimWhitespace(entry.substr(0, eq)));
    auto fields = Split(entry.substr(eq + 1), ':');
    if (fields.empty()) {
      return Status::InvalidArgument("fault spec entry for '", point,
                                     "' has no kind");
    }
    FaultConfig config;
    std::string kind(TrimWhitespace(fields[0]));
    if (kind == "error" || kind == "ioerror") {
      config.kind = FaultKind::kError;
      config.code = StatusCode::kIOError;
    } else if (kind == "corruption") {
      config.kind = FaultKind::kError;
      config.code = StatusCode::kCorruption;
    } else if (kind == "nan") {
      config.kind = FaultKind::kNaN;
    } else if (kind == "posinf") {
      config.kind = FaultKind::kPosInf;
    } else if (kind == "neginf") {
      config.kind = FaultKind::kNegInf;
    } else if (kind == "oor") {
      config.kind = FaultKind::kOutOfRange;
    } else if (kind == "latency") {
      config.kind = FaultKind::kLatency;
      config.param = 1.0;
    } else if (kind == "jitter") {
      config.kind = FaultKind::kJitter;
      config.param = 1.0;
    } else {
      return Status::InvalidArgument(
          "unknown fault kind '", kind,
          "' (error | ioerror | corruption | nan | posinf | neginf | oor |"
          " latency | jitter)");
    }
    if (fields.size() > 1 && !TrimWhitespace(fields[1]).empty()) {
      if (!ParseDouble(fields[1], &config.probability) ||
          config.probability < 0.0 || config.probability > 1.0) {
        return Status::InvalidArgument("bad fault probability '", fields[1],
                                       "' for '", point, "'");
      }
    }
    if (fields.size() > 2 && !TrimWhitespace(fields[2]).empty()) {
      if (!ParseDouble(fields[2], &config.param)) {
        return Status::InvalidArgument("bad fault param '", fields[2],
                                       "' for '", point, "'");
      }
    }
    if (fields.size() > 3 && !TrimWhitespace(fields[3]).empty()) {
      if (!ParseInt(fields[3], &config.max_triggers) ||
          config.max_triggers < 0) {
        return Status::InvalidArgument("bad fault max_triggers '", fields[3],
                                       "' for '", point, "'");
      }
    }
    if (fields.size() > 4) {
      return Status::InvalidArgument("too many fields in fault spec for '",
                                     point, "'");
    }
    Arm(point, config);
  }
  return Status::OK();
}

}  // namespace faults
}  // namespace weber

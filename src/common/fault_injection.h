// Deterministic fault injection for chaos testing (RocksDB SyncPoint style).
//
// Production code declares named fault points at the places where the real
// world misbehaves (I/O, similarity computation, model fitting, clustering):
//
//   WEBER_RETURN_NOT_OK(faults::MaybeFail("dataset_io.read"));
//   double v = fn.Compute(a, b);
//   faults::MaybeCorrupt("similarity.compute", &v);
//
// Fault points are disarmed by default and compile down to a single relaxed
// atomic load on the hot path. Tests (or the CLI via --faults / the
// WEBER_FAULTS environment variable) arm them with a kind, a probability and
// an optional parameter; the trigger sequence is driven by a seedable
// SplitMix64 stream per point, so chaos runs are exactly reproducible.
//
// Standard fault points wired into the library:
//   dataset_io.read     LoadDatasetFromFile (transient I/O errors, retries)
//   similarity.compute  raw similarity values (NaN / ±Inf / out-of-range)
//   resolver.train      decision-criterion fitting inside ResolveBlock
//   clustering.run      the final clustering step of Algorithm 1
//   serve.assign        ResolutionService document assignment (hot path)
//   serve.compact       background batch re-resolution; a triggered fault
//                       aborts publication and the shard keeps serving the
//                       previous snapshot
//   serve.wal.append    WAL record append, before any bytes are written —
//                       the acked write is rejected, in-memory state is
//                       untouched
//   serve.wal.fsync     WAL group-commit fsync (after bytes hit the page
//                       cache)
//   serve.snapshot.write  durable snapshot file write at compaction publish
//   serve.wal.replay    per-record during crash-recovery WAL replay

#ifndef WEBER_COMMON_FAULT_INJECTION_H_
#define WEBER_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace weber {
namespace faults {

/// What an armed fault point does when it triggers.
enum class FaultKind : int {
  kError = 0,       ///< return a Status (code configurable, default IOError)
  kNaN = 1,         ///< corrupt a value to quiet NaN
  kPosInf = 2,      ///< corrupt a value to +infinity
  kNegInf = 3,      ///< corrupt a value to -infinity
  kOutOfRange = 4,  ///< corrupt a value to `param` (default 2.0, outside [0,1])
  kLatency = 5,     ///< sleep `param` milliseconds, then succeed
  kJitter = 6,      ///< sleep uniform-random [0, `param`) ms, then succeed
};

struct FaultConfig {
  FaultKind kind = FaultKind::kError;
  /// Per-check trigger probability in [0, 1].
  double probability = 1.0;
  /// kOutOfRange: the injected value. kLatency: the delay in milliseconds.
  /// kJitter: the upper bound of the uniform delay in milliseconds.
  double param = 2.0;
  /// Status code returned by kError faults.
  StatusCode code = StatusCode::kIOError;
  /// Stop firing after this many triggers (0 = unlimited). Models transient
  /// failures: arm with max_triggers=2 and a retry loop recovers on try 3.
  int max_triggers = 0;
};

/// Process-wide fault-point registry. All methods are thread-safe; the
/// armed-point table is mutex-protected and the disarmed fast path is one
/// relaxed atomic load.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// Arms (or re-arms) a named fault point. Resets its trigger counter and
  /// reseeds its RNG stream from the current seed.
  void Arm(const std::string& point, FaultConfig config);
  void Disarm(const std::string& point);
  void DisarmAll();

  /// Sets the base seed for all points' trigger streams. Affects points
  /// armed after the call; re-arm to reseed existing points.
  void Seed(uint64_t seed);

  /// Arms fault points from a spec string:
  ///
  ///   point=kind[:probability[:param[:max_triggers]]](;point=...)*
  ///
  /// with kind in {error, ioerror, corruption, nan, posinf, neginf, oor,
  /// latency, jitter} ("ioerror"/"corruption" are kError with that status
  /// code; "latency" sleeps param ms, "jitter" sleeps uniform [0,param) ms).
  /// Example: "similarity.compute=nan:0.05;dataset_io.read=error:1:0:2".
  Status ArmFromSpec(const std::string& spec);

  /// True iff at least one point is armed (the hot-path gate).
  bool AnyArmed() const { return any_armed_.load(std::memory_order_relaxed); }

  /// How often the point has triggered since it was (re)armed.
  long long TriggerCount(const std::string& point) const;

  /// Names of currently armed points (diagnostics).
  std::vector<std::string> ArmedPoints() const;

  // Slow paths; use the free functions below.
  Status CheckFail(const char* point);
  bool CheckCorrupt(const char* point, double* value);

 private:
  FaultInjector() = default;

  struct PointState {
    FaultConfig config;
    uint64_t rng_state = 0;
    long long triggers = 0;
  };

  /// Rolls the point's dice under the lock; returns the config if it fired.
  /// For kJitter faults, `jitter_unit` receives an extra uniform [0,1) draw
  /// from the point's stream (the sleep fraction), so jittered delays are
  /// as reproducible as the trigger sequence itself.
  bool Roll(const char* point, FaultConfig* fired, double* jitter_unit);

  mutable std::mutex mu_;
  std::map<std::string, PointState> points_;
  uint64_t seed_ = 0x5EEDFA17ULL;
  std::atomic<bool> any_armed_{false};
};

/// Returns a non-OK Status when the named point is armed with kError and
/// triggers; sleeps and returns OK for kLatency/kJitter. OK (and
/// near-free) when nothing is armed.
inline Status MaybeFail(const char* point) {
  FaultInjector& fi = FaultInjector::Instance();
  if (!fi.AnyArmed()) return Status::OK();
  return fi.CheckFail(point);
}

/// Corrupts `*value` (NaN / ±Inf / out-of-range) when the named point is
/// armed with a value-kind fault and triggers. Returns true iff corrupted.
inline bool MaybeCorrupt(const char* point, double* value) {
  FaultInjector& fi = FaultInjector::Instance();
  if (!fi.AnyArmed()) return false;
  return fi.CheckCorrupt(point, value);
}

/// Test helper: disarms every fault point on destruction, so a failing test
/// cannot leak armed faults into the rest of the suite.
class ScopedFaultClearance {
 public:
  ScopedFaultClearance() = default;
  ~ScopedFaultClearance() { FaultInjector::Instance().DisarmAll(); }
  ScopedFaultClearance(const ScopedFaultClearance&) = delete;
  ScopedFaultClearance& operator=(const ScopedFaultClearance&) = delete;
};

}  // namespace faults
}  // namespace weber

#endif  // WEBER_COMMON_FAULT_INJECTION_H_

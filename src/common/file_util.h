// POSIX file helpers for the durability layer: whole-file reads, atomic
// (temp + rename) writes with optional fsync, directory creation/listing.
// Everything returns Status/Result in the library's usual style; no
// exceptions escape even though std::filesystem is used internally.

#ifndef WEBER_COMMON_FILE_UTIL_H_
#define WEBER_COMMON_FILE_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace weber {

/// Reads the entire file into a string. IOError when unreadable.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `path` atomically: the data lands in
/// `<path>.tmp` first and is renamed over `path`, so a crash mid-write can
/// never leave a half-written file under the final name. With `sync` the
/// temp file is fsync'd before the rename and the parent directory after
/// it, making the rename itself durable.
Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       bool sync);

/// mkdir -p. OK when the directory already exists.
Status CreateDirectories(const std::string& path);

/// Entry names (not paths) in `dir`, sorted ascending. Missing directory is
/// an IOError.
Result<std::vector<std::string>> ListDirectory(const std::string& dir);

Status RemoveFileIfExists(const std::string& path);

bool FileExists(const std::string& path);

/// Size in bytes; IOError when the file cannot be stat'd.
Result<uint64_t> FileSize(const std::string& path);

/// fsync(2) wrappers. SyncDirectory makes renames/creates in `dir` durable.
Status SyncFd(int fd, const std::string& what);
Status SyncDirectory(const std::string& dir);

}  // namespace weber

#endif  // WEBER_COMMON_FILE_UTIL_H_

#include "common/json_writer.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace weber {

std::string JsonWriter::Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) return;
  if (stack_.back() && !pending_key_) {
    assert(false && "JsonWriter: value in object without Key()");
    return;
  }
  if (!stack_.back() && has_items_.back()) os_ << ",";
  if (!stack_.back()) has_items_.back() = true;
  pending_key_ = false;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  os_ << "{";
  stack_.push_back(true);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  assert(!stack_.empty() && stack_.back());
  os_ << "}";
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  os_ << "[";
  stack_.push_back(false);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  assert(!stack_.empty() && !stack_.back());
  os_ << "]";
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  assert(!stack_.empty() && stack_.back() && !pending_key_);
  if (has_items_.back()) os_ << ",";
  has_items_.back() = true;
  os_ << "\"" << Escape(key) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  os_ << "\"" << Escape(value) << "\"";
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    os_ << "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::Number(long long value) {
  BeforeValue();
  os_ << value;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  os_ << (value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  os_ << "null";
  return *this;
}

}  // namespace weber

// weber::obs metrics: a process-wide registry of counters, gauges, and
// fixed-bucket histograms with a Prometheus text exporter.
//
// Design (see DESIGN.md, "Observability"):
//   * Counters stripe their increments across cache-line-padded atomics
//     indexed by a per-thread hash, so the hot path is one relaxed
//     fetch_add with no sharing between threads that land on different
//     stripes. Reads sum the stripes; totals are exact, ordering is not.
//   * Histograms use a fixed set of upper bounds chosen at registration;
//     Observe is a binary search plus two relaxed atomic adds (bucket and
//     count) and a CAS loop for the running sum.
//   * Gauges are a single atomic double. Callback metrics pull their value
//     from a std::function at export time — the bridge for subsystems that
//     already keep their own counters (cache, batcher, durability).
//   * The registry groups metrics into families (same name, one label pair
//     per instance) and renders them in registration order as Prometheus
//     text exposition: `# HELP` / `# TYPE` headers followed by samples.
//     Non-finite callback values are exported as 0 so the payload never
//     carries NaN/Inf.
//
// The latency helpers at the top (Percentile, LatencySummary,
// LatencyReservoir) are the shared summary math used by the serving
// layer's stats JSON and by weber_loadgen: nearest-rank percentiles with
// linear interpolation over a Vitter algorithm-R reservoir.

#ifndef WEBER_COMMON_METRICS_H_
#define WEBER_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace weber {
namespace obs {

// ---------------------------------------------------------------------------
// Latency summary helpers

/// Interpolated percentile of an ascending-sorted sample vector.
/// `q` in [0, 1]. Uses the nearest-rank position q * (n - 1) with linear
/// interpolation between the two bracketing samples, so p99 of [1..10] is
/// 9.91 rather than the truncated 9.0. Returns 0.0 on an empty vector.
double Percentile(const std::vector<double>& sorted, double q);

/// Summary of a latency distribution. `count` is the number of events
/// observed (which may exceed the number of retained samples when the
/// source is a reservoir); count == 0 means no samples at all and every
/// other field is 0.
struct LatencySummary {
  long long count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;

  bool no_samples() const { return count == 0; }
};

/// Summarizes a full sample set (not a reservoir): sorts a copy and fills
/// mean/p50/p95/p99 with interpolated percentiles. Empty input yields the
/// all-zero summary with count == 0.
LatencySummary Summarize(const std::vector<double>& samples_ms);

/// Thread-safe bounded-memory latency reservoir (Vitter's algorithm R).
/// Keeps an unbiased sample of up to 2^14 observations plus the exact
/// count and sum, so mean is exact and percentiles are estimated from the
/// reservoir.
class LatencyReservoir {
 public:
  void Record(double ms);
  LatencySummary Summary() const;

 private:
  static constexpr size_t kReservoirSize = 1 << 14;

  mutable std::mutex mu_;
  std::vector<double> samples_;
  long long count_ = 0;
  double total_ms_ = 0.0;
  uint64_t rng_state_ = 0x5A17ED1ULL;
};

// ---------------------------------------------------------------------------
// Metric primitives

/// Monotonic counter. Increment is a single relaxed fetch_add on a
/// per-thread stripe; Value sums the stripes (exact, eventually ordered).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(long long delta = 1) {
    stripes_[StripeIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  long long Value() const {
    long long total = 0;
    for (const Stripe& s : stripes_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr size_t kStripes = 8;  // power of two
  struct alignas(64) Stripe {
    std::atomic<long long> value{0};
  };

  static size_t StripeIndex();

  Stripe stripes_[kStripes];
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bounds are inclusive upper edges in ascending
/// order; an implicit +Inf bucket catches the tail. Observe is lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  struct Snapshot {
    std::vector<double> bounds;          ///< upper edges, ascending
    std::vector<long long> buckets;      ///< bounds.size() + 1 (+Inf last)
    long long count = 0;
    double sum = 0.0;
  };
  Snapshot Snap() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<long long>> buckets_;  // bounds_.size() + 1
  std::atomic<long long> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency bucket edges in milliseconds (sub-ms to 10s).
std::vector<double> DefaultLatencyBucketsMs();

// ---------------------------------------------------------------------------
// Registry

enum class MetricType { kCounter, kGauge, kHistogram };

/// Owns metrics and renders them as Prometheus text exposition. Metrics
/// with the same name form one family (one # HELP / # TYPE header) and are
/// distinguished by a single optional label pair per instance. Returned
/// pointers are stable for the registry's lifetime. Registration takes a
/// mutex; the returned primitives are the lock-free hot path.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates. Re-registering the same (name, label) pair returns
  /// the existing metric. Registering a name that already exists with a
  /// different type logs a warning and returns a detached metric that is
  /// never exported, so call sites need no error handling.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const std::string& label_key = "",
                      const std::string& label_value = "");
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const std::string& label_key = "",
                  const std::string& label_value = "");
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds,
                          const std::string& label_key = "",
                          const std::string& label_value = "");

  /// Pull-style metric: `fn` is invoked at export time. `type` must be
  /// kCounter or kGauge and only controls the advertised # TYPE.
  void RegisterCallback(const std::string& name, const std::string& help,
                        MetricType type, std::function<double()> fn,
                        const std::string& label_key = "",
                        const std::string& label_value = "");

  /// Renders every registered family in registration order as Prometheus
  /// text exposition. Every emitted value is finite (non-finite callback
  /// results are clamped to 0).
  void WritePrometheusText(std::ostream& os) const;

  /// Number of registered families (for tests).
  size_t FamilyCount() const;

  /// Process-wide default registry.
  static MetricsRegistry& Global();

 private:
  struct Instance;
  struct Family;

  Family* FindOrCreateFamily(const std::string& name, const std::string& help,
                             MetricType type);
  Instance* FindInstance(Family* family, const std::string& label_key,
                         const std::string& label_value);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Family>> families_;
  /// Metrics handed out on a type clash; owned but never exported.
  std::vector<std::unique_ptr<Counter>> detached_counters_;
  std::vector<std::unique_ptr<Gauge>> detached_gauges_;
  std::vector<std::unique_ptr<Histogram>> detached_histograms_;
};

}  // namespace obs
}  // namespace weber

#endif  // WEBER_COMMON_METRICS_H_

// weber::obs tracing: scoped spans with request IDs and slow-span logging.
//
// A TraceCollector hands out monotonically increasing request IDs and keeps
// the most recent spans in a bounded ring buffer. Spans are recorded by
// RAII ScopedSpan guards; the request ID is threaded through call chains
// (including hops across the micro-batcher's flush thread) via an explicit
// thread-local, so deep layers never need an extra parameter.
//
// Everything degrades to a no-op when the collector pointer is null: a
// ScopedSpan constructed with nullptr reads no clock and records nothing,
// which is how instrumented code stays free when tracing is off.
//
// Slow-request logging: a collector configured with slow_ms > 0 emits a
// WEBER_LOG(WARNING) line for every span at or over the threshold and
// counts it, giving operators a zero-config way to spot outliers.

#ifndef WEBER_COMMON_TRACE_H_
#define WEBER_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace weber {
namespace obs {

/// One completed span. `name` must be a string literal (stored by pointer).
struct TraceSpan {
  const char* name = "";
  uint64_t request_id = 0;
  /// Milliseconds since the collector's epoch (its construction time).
  double start_ms = 0.0;
  double duration_ms = 0.0;
};

struct TraceOptions {
  /// Spans retained in the ring buffer (oldest overwritten first).
  size_t capacity = 4096;
  /// Spans at or over this duration are counted and logged at WARNING
  /// severity (0 = no slow logging).
  double slow_ms = 0.0;
};

/// Thread-safe span sink with bounded memory. Record is a mutex-guarded
/// ring-buffer store — cheap at request granularity, not meant for
/// per-pair-score instrumentation.
class TraceCollector {
 public:
  explicit TraceCollector(TraceOptions options = {});

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Next request ID (starts at 1; 0 means "no request context").
  uint64_t NextRequestId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Milliseconds elapsed since the collector was created (steady clock).
  double NowMs() const;

  void Record(const char* name, uint64_t request_id, double start_ms,
              double duration_ms);

  /// The retained spans, oldest first.
  std::vector<TraceSpan> Spans() const;

  long long spans_recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  long long slow_spans() const {
    return slow_.load(std::memory_order_relaxed);
  }
  double slow_ms() const { return options_.slow_ms; }

 private:
  TraceOptions options_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> next_id_{0};
  std::atomic<long long> recorded_{0};
  std::atomic<long long> slow_{0};

  mutable std::mutex mu_;
  std::vector<TraceSpan> ring_;  // guarded by mu_
  size_t ring_next_ = 0;         // guarded by mu_
  bool ring_full_ = false;       // guarded by mu_
};

/// Sets the ambient request ID for the calling thread. Instrumented layers
/// below read it via CurrentRequestId() so request identity survives call
/// chains without signature changes. Returns the previous value.
uint64_t SetCurrentRequestId(uint64_t id);
uint64_t CurrentRequestId();

/// RAII scope restoring the previous ambient request ID on exit; used when
/// a worker thread processes items on behalf of several requests.
class RequestIdScope {
 public:
  explicit RequestIdScope(uint64_t id) : previous_(SetCurrentRequestId(id)) {}
  ~RequestIdScope() { SetCurrentRequestId(previous_); }
  RequestIdScope(const RequestIdScope&) = delete;
  RequestIdScope& operator=(const RequestIdScope&) = delete;

 private:
  uint64_t previous_;
};

/// Times a scope and records it on destruction (or at End()). A null
/// collector makes construction and destruction free of clock reads.
class ScopedSpan {
 public:
  ScopedSpan(TraceCollector* collector, const char* name)
      : collector_(collector), name_(name) {
    if (collector_ != nullptr) {
      request_id_ = CurrentRequestId();
      start_ms_ = collector_->NowMs();
    }
  }
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Records the span now; further End() calls are no-ops.
  void End() {
    if (collector_ == nullptr) return;
    collector_->Record(name_, request_id_, start_ms_,
                       collector_->NowMs() - start_ms_);
    collector_ = nullptr;
  }

 private:
  TraceCollector* collector_;
  const char* name_;
  uint64_t request_id_ = 0;
  double start_ms_ = 0.0;
};

}  // namespace obs
}  // namespace weber

#endif  // WEBER_COMMON_TRACE_H_

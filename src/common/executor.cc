#include "common/executor.h"

#include <algorithm>
#include <atomic>

namespace weber {

Executor::Executor(int num_threads, size_t queue_cap)
    : queue_cap_(queue_cap) {
  const int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::future<void> Executor::Submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> done = wrapped.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(wrapped));
  }
  work_available_.notify_one();
  return done;
}

Result<std::future<void>> Executor::TrySubmit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> done = wrapped.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_cap_ > 0 && queue_.size() >= queue_cap_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("executor queue full (", queue_.size(),
                                 " of ", queue_cap_, " tasks waiting)");
    }
    queue_.push_back(std::move(wrapped));
  }
  work_available_.notify_one();
  return done;
}

void Executor::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  // A shared index hands out iterations; the caller participates so the
  // loop completes even when every worker is busy elsewhere.
  auto next = std::make_shared<std::atomic<int>>(0);
  auto run = [next, n, &fn] {
    for (;;) {
      int i = next->fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  std::vector<std::future<void>> joined;
  const int helpers = std::min<int>(num_threads(), n) - 1;
  joined.reserve(helpers);
  for (int t = 0; t < helpers; ++t) joined.push_back(Submit(run));
  run();
  for (auto& f : joined) f.wait();
}

int Executor::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

void Executor::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace weber

// Minimal command-line flag parsing for the CLI tools.
//
//   FlagParser flags;
//   flags.AddString("dataset", "", "path to a WEBER dataset file");
//   flags.AddInt("runs", 5, "number of randomized runs");
//   flags.AddBool("regions", true, "use region criteria");
//   WEBER_RETURN_NOT_OK(flags.Parse(argc, argv));
//   std::string path = flags.GetString("dataset");
//
// Accepted syntax: --name=value, --name value, --bool_flag, --nobool_flag.
// Non-flag arguments are collected as positional arguments.

#ifndef WEBER_COMMON_FLAGS_H_
#define WEBER_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace weber {

/// Declarative flag registry + parser. Not thread-safe; build, parse, read.
class FlagParser {
 public:
  void AddString(const std::string& name, std::string default_value,
                 std::string help);
  void AddInt(const std::string& name, int default_value, std::string help);
  void AddDouble(const std::string& name, double default_value,
                 std::string help);
  void AddBool(const std::string& name, bool default_value, std::string help);

  /// Parses argv (skipping argv[0]). Returns InvalidArgument on unknown
  /// flags, missing values, or unparseable values.
  Status Parse(int argc, const char* const* argv);

  /// Typed accessors; the flag must have been declared with the matching
  /// type (asserted in debug builds, default-constructed otherwise).
  std::string GetString(const std::string& name) const;
  int GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// True if the flag was explicitly set on the command line.
  bool WasSet(const std::string& name) const;

  /// Arguments that are not flags, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders a --help style usage block.
  std::string Usage(const std::string& program_description) const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string help;
    std::string string_value;
    int int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    std::string default_repr;
    bool was_set = false;
  };

  Status SetValue(Flag* flag, const std::string& name,
                  const std::string& value);

  std::map<std::string, Flag> flags_;  // ordered for stable Usage output
  std::vector<std::string> positional_;
};

}  // namespace weber

#endif  // WEBER_COMMON_FLAGS_H_

#include "common/logging.h"

#include <cstring>

namespace weber {

LogLevel Logger::level_ = LogLevel::kWarning;

namespace {

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void Logger::Emit(LogLevel level, const char* file, int line,
                  const std::string& message) {
  std::cerr << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
            << "] " << message << "\n";
}

}  // namespace weber

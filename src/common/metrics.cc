#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>

#include "common/logging.h"

namespace weber {
namespace obs {

// ---------------------------------------------------------------------------
// Latency summary helpers

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

LatencySummary Summarize(const std::vector<double>& samples_ms) {
  LatencySummary out;
  out.count = static_cast<long long>(samples_ms.size());
  if (samples_ms.empty()) return out;
  std::vector<double> sorted = samples_ms;
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  for (double s : sorted) total += s;
  out.mean_ms = total / static_cast<double>(sorted.size());
  out.p50_ms = Percentile(sorted, 0.50);
  out.p95_ms = Percentile(sorted, 0.95);
  out.p99_ms = Percentile(sorted, 0.99);
  return out;
}

void LatencyReservoir::Record(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  ++count_;
  total_ms_ += ms;
  if (samples_.size() < kReservoirSize) {
    samples_.push_back(ms);
  } else {
    // Vitter's algorithm R: replace a random slot with probability k/n.
    rng_state_ += 0x9E3779B97F4A7C15ULL;
    uint64_t z = rng_state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    uint64_t slot = z % static_cast<uint64_t>(count_);
    if (slot < kReservoirSize) samples_[slot] = ms;
  }
}

LatencySummary LatencyReservoir::Summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  LatencySummary out;
  out.count = count_;
  if (count_ == 0) return out;
  out.mean_ms = total_ms_ / static_cast<double>(count_);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  out.p50_ms = Percentile(sorted, 0.50);
  out.p95_ms = Percentile(sorted, 0.95);
  out.p99_ms = Percentile(sorted, 0.99);
  return out;
}

// ---------------------------------------------------------------------------
// Metric primitives

size_t Counter::StripeIndex() {
  static thread_local const size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return index & (kStripes - 1);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.buckets.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    snap.buckets.push_back(b.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

std::vector<double> DefaultLatencyBucketsMs() {
  return {0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500,
          5000, 10000};
}

// ---------------------------------------------------------------------------
// Registry

namespace {

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

/// Formats a sample value; non-finite values are clamped to 0 so the
/// exposition never carries NaN/Inf.
std::string FormatValue(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

std::string FormatValue(long long value) { return std::to_string(value); }

/// Escapes a label value per the exposition format: backslash, quote, and
/// newline must be backslash-escaped.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string LabelClause(const std::string& key, const std::string& value) {
  if (key.empty()) return "";
  return "{" + key + "=\"" + EscapeLabelValue(value) + "\"}";
}

/// As LabelClause but with an extra `le` pair appended (histograms).
std::string BucketLabelClause(const std::string& key, const std::string& value,
                              const std::string& le) {
  std::string out = "{";
  if (!key.empty()) {
    out += key + "=\"" + EscapeLabelValue(value) + "\",";
  }
  out += "le=\"" + le + "\"}";
  return out;
}

}  // namespace

struct MetricsRegistry::Instance {
  std::string label_key;
  std::string label_value;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
  std::function<double()> callback;
};

struct MetricsRegistry::Family {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<std::unique_ptr<Instance>> instances;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Family* MetricsRegistry::FindOrCreateFamily(
    const std::string& name, const std::string& help, MetricType type) {
  for (auto& family : families_) {
    if (family->name == name) {
      if (family->type != type) return nullptr;
      return family.get();
    }
  }
  auto family = std::make_unique<Family>();
  family->name = name;
  family->help = help;
  family->type = type;
  families_.push_back(std::move(family));
  return families_.back().get();
}

MetricsRegistry::Instance* MetricsRegistry::FindInstance(
    Family* family, const std::string& label_key,
    const std::string& label_value) {
  for (auto& instance : family->instances) {
    if (instance->label_key == label_key &&
        instance->label_value == label_value) {
      return instance.get();
    }
  }
  auto instance = std::make_unique<Instance>();
  instance->label_key = label_key;
  instance->label_value = label_value;
  family->instances.push_back(std::move(instance));
  return family->instances.back().get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const std::string& label_key,
                                     const std::string& label_value) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = FindOrCreateFamily(name, help, MetricType::kCounter);
  if (family == nullptr) {
    WEBER_LOG(WARNING) << "metric '" << name
                       << "' re-registered with a different type; returning "
                          "a detached counter";
    detached_counters_.push_back(std::make_unique<Counter>());
    return detached_counters_.back().get();
  }
  Instance* instance = FindInstance(family, label_key, label_value);
  if (!instance->counter) instance->counter = std::make_unique<Counter>();
  return instance->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const std::string& label_key,
                                 const std::string& label_value) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = FindOrCreateFamily(name, help, MetricType::kGauge);
  if (family == nullptr) {
    WEBER_LOG(WARNING) << "metric '" << name
                       << "' re-registered with a different type; returning "
                          "a detached gauge";
    detached_gauges_.push_back(std::make_unique<Gauge>());
    return detached_gauges_.back().get();
  }
  Instance* instance = FindInstance(family, label_key, label_value);
  if (!instance->gauge) instance->gauge = std::make_unique<Gauge>();
  return instance->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds,
                                         const std::string& label_key,
                                         const std::string& label_value) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = FindOrCreateFamily(name, help, MetricType::kHistogram);
  if (family == nullptr) {
    WEBER_LOG(WARNING) << "metric '" << name
                       << "' re-registered with a different type; returning "
                          "a detached histogram";
    detached_histograms_.push_back(
        std::make_unique<Histogram>(std::move(bounds)));
    return detached_histograms_.back().get();
  }
  Instance* instance = FindInstance(family, label_key, label_value);
  if (!instance->histogram) {
    instance->histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return instance->histogram.get();
}

void MetricsRegistry::RegisterCallback(const std::string& name,
                                       const std::string& help,
                                       MetricType type,
                                       std::function<double()> fn,
                                       const std::string& label_key,
                                       const std::string& label_value) {
  if (type == MetricType::kHistogram) {
    WEBER_LOG(WARNING) << "callback metric '" << name
                       << "' cannot be a histogram; registering as gauge";
    type = MetricType::kGauge;
  }
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = FindOrCreateFamily(name, help, type);
  if (family == nullptr) {
    WEBER_LOG(WARNING) << "metric '" << name
                       << "' re-registered with a different type; dropping "
                          "callback";
    return;
  }
  Instance* instance = FindInstance(family, label_key, label_value);
  instance->callback = std::move(fn);
}

void MetricsRegistry::WritePrometheusText(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& family : families_) {
    os << "# HELP " << family->name << ' ' << family->help << '\n';
    os << "# TYPE " << family->name << ' ' << TypeName(family->type) << '\n';
    for (const auto& instance : family->instances) {
      const std::string labels =
          LabelClause(instance->label_key, instance->label_value);
      if (instance->histogram) {
        const Histogram::Snapshot snap = instance->histogram->Snap();
        long long cumulative = 0;
        for (size_t i = 0; i < snap.bounds.size(); ++i) {
          cumulative += snap.buckets[i];
          os << family->name << "_bucket"
             << BucketLabelClause(instance->label_key, instance->label_value,
                                  FormatValue(snap.bounds[i]))
             << ' ' << FormatValue(cumulative) << '\n';
        }
        cumulative += snap.buckets.back();
        os << family->name << "_bucket"
           << BucketLabelClause(instance->label_key, instance->label_value,
                                "+Inf")
           << ' ' << FormatValue(cumulative) << '\n';
        os << family->name << "_sum" << labels << ' ' << FormatValue(snap.sum)
           << '\n';
        os << family->name << "_count" << labels << ' '
           << FormatValue(snap.count) << '\n';
      } else if (instance->callback) {
        os << family->name << labels << ' '
           << FormatValue(instance->callback()) << '\n';
      } else if (instance->counter) {
        os << family->name << labels << ' '
           << FormatValue(instance->counter->Value()) << '\n';
      } else if (instance->gauge) {
        os << family->name << labels << ' '
           << FormatValue(instance->gauge->Value()) << '\n';
      }
    }
  }
}

size_t MetricsRegistry::FamilyCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return families_.size();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace weber

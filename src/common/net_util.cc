#include "common/net_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

namespace weber {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

double RemainingMs(Clock::time_point deadline) {
  return std::chrono::duration<double, std::milli>(deadline - Clock::now())
      .count();
}

int PollBudgetMs(double ms) {
  return std::max(1, static_cast<int>(std::ceil(ms)));
}

Status SetNonBlocking(int fd, bool nonblocking) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return Status::IOError("fcntl(F_GETFL): ", std::strerror(errno));
  }
  flags = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    return Status::IOError("fcntl(F_SETFL): ", std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Result<int> DialTcp(const std::string& host, int port, double timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket(): ", std::string(std::strerror(errno)));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad IPv4 address '", host, "'");
  }
  if (timeout_ms <= 0) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      const std::string error = std::strerror(errno);
      ::close(fd);
      return Status::IOError("connect(", host, ":", port, "): ", error);
    }
    return fd;
  }
  // Bounded connect: non-blocking connect, poll for writability, read the
  // outcome from SO_ERROR, restore blocking mode.
  if (Status st = SetNonBlocking(fd, true); !st.ok()) {
    ::close(fd);
    return st;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 &&
      errno != EINPROGRESS) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("connect(", host, ":", port, "): ", error);
  }
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(timeout_ms));
  while (true) {
    const double left = RemainingMs(deadline);
    if (left <= 0) {
      ::close(fd);
      return Status::DeadlineExceeded("connect(", host, ":", port,
                                      ") timed out after ", timeout_ms, " ms");
    }
    pollfd pfd = {fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, PollBudgetMs(left));
    if (ready < 0) {
      if (errno == EINTR) continue;
      const std::string error = std::strerror(errno);
      ::close(fd);
      return Status::IOError("poll(connect): ", error);
    }
    if (ready == 0) continue;  // re-check the remaining budget
    break;
  }
  int err = 0;
  socklen_t err_len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0 || err != 0) {
    const std::string error = std::strerror(err != 0 ? err : errno);
    ::close(fd);
    return Status::IOError("connect(", host, ":", port, "): ", error);
  }
  if (Status st = SetNonBlocking(fd, false); !st.ok()) {
    ::close(fd);
    return st;
  }
  return fd;
}

Status SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IOError("send(): ", std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status LineSocket::Connect(const std::string& host, int port,
                           double timeout_ms) {
  Close();
  WEBER_ASSIGN_OR_RETURN(int fd, DialTcp(host, port, timeout_ms));
  fd_ = fd;
  buffer_.clear();
  return Status::OK();
}

void LineSocket::Adopt(int fd) {
  Close();
  fd_ = fd;
  buffer_.clear();
}

Status LineSocket::SendLine(const std::string& line) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string payload = line;
  payload += '\n';
  return SendAll(fd_, payload.data(), payload.size());
}

Result<std::string> LineSocket::ReadLine(double timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  char chunk[4096];
  const bool bounded = timeout_ms > 0;
  const Clock::time_point deadline =
      bounded ? Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(timeout_ms))
              : Clock::time_point();
  while (true) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (bounded) {
      const double left = RemainingMs(deadline);
      if (left <= 0) {
        return Status::DeadlineExceeded("read timed out after ", timeout_ms,
                                        " ms");
      }
      pollfd pfd = {fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, PollBudgetMs(left));
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("poll(read): ", std::strerror(errno));
      }
      if (ready == 0) continue;  // loop re-checks the budget
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::IOError("connection closed");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

void LineSocket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void LineSocket::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace net
}  // namespace weber

#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace weber {

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  const char* ws = " \t\r\n\f\v";
  size_t b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return std::string_view();
  size_t e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t pos = 0;
  for (;;) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      return out;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

bool ParseDouble(std::string_view s, double* out) {
  s = TrimWhitespace(s);
  if (s.empty()) return false;
  // std::from_chars for double is not universally available; use strtod on a
  // NUL-terminated copy.
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseInt(std::string_view s, int* out) {
  s = TrimWhitespace(s);
  if (s.empty()) return false;
  int v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace weber

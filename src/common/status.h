// Status: error-signalling return type used across the WEBER library.
//
// Follows the Arrow/RocksDB idiom: functions that can fail return a Status
// (or a Result<T>, see result.h) instead of throwing exceptions. A Status is
// cheap to copy in the OK case (single pointer-sized enum + empty string).

#ifndef WEBER_COMMON_STATUS_H_
#define WEBER_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace weber {

/// Error categories. Kept deliberately small; the message carries detail.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIOError = 6,
  kCorruption = 7,
  kNotImplemented = 8,
  kInternal = 9,
  kDeadlineExceeded = 10,
  kUnavailable = 11,
};

/// Returns a short human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Stable process exit code for a status code, so scripted CLI callers can
/// branch on the failure class: 0=OK, 2=InvalidArgument, 3=IOError,
/// 4=Corruption, 5=NotFound, 6=FailedPrecondition, 7=OutOfRange,
/// 8=AlreadyExists, 9=NotImplemented, 10=Internal, 11=DeadlineExceeded,
/// 12=Unavailable. (1 is reserved for failures outside the Status
/// taxonomy.)
int ExitCodeForStatus(StatusCode code);

/// Outcome of an operation: a code plus an explanatory message.
///
/// Typical usage:
///
///   Status s = collection.Load(path);
///   if (!s.ok()) return s;  // propagate
///
/// Construct errors through the named factories:
///
///   return Status::InvalidArgument("k must be positive, got ", k);
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// The explanatory message; empty for OK statuses.
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  static Status OK() { return Status(); }

  template <typename... Args>
  static Status InvalidArgument(Args&&... args) {
    return Make(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return Make(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return Make(StatusCode::kAlreadyExists, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status OutOfRange(Args&&... args) {
    return Make(StatusCode::kOutOfRange, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status FailedPrecondition(Args&&... args) {
    return Make(StatusCode::kFailedPrecondition, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status IOError(Args&&... args) {
    return Make(StatusCode::kIOError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Corruption(Args&&... args) {
    return Make(StatusCode::kCorruption, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotImplemented(Args&&... args) {
    return Make(StatusCode::kNotImplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Make(StatusCode::kInternal, std::forward<Args>(args)...);
  }
  /// The operation's deadline passed before (or while) it ran.
  template <typename... Args>
  static Status DeadlineExceeded(Args&&... args) {
    return Make(StatusCode::kDeadlineExceeded, std::forward<Args>(args)...);
  }
  /// The service is overloaded or a breaker is open; retrying later is safe
  /// because the request was rejected before any state changed.
  template <typename... Args>
  static Status Unavailable(Args&&... args) {
    return Make(StatusCode::kUnavailable, std::forward<Args>(args)...);
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  template <typename... Args>
  static Status Make(StatusCode code, Args&&... args) {
    std::string msg;
    (AppendTo(&msg, std::forward<Args>(args)), ...);
    return Status(code, std::move(msg));
  }

  static void AppendTo(std::string* out, std::string_view piece) {
    out->append(piece);
  }
  static void AppendTo(std::string* out, const char* piece) { out->append(piece); }
  // Mutable char* (e.g. strerror) would otherwise bind the numeric template.
  static void AppendTo(std::string* out, char* piece) { out->append(piece); }
  static void AppendTo(std::string* out, const std::string& piece) {
    out->append(piece);
  }
  template <typename T>
  static void AppendTo(std::string* out, const T& value) {
    out->append(std::to_string(value));
  }

  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status from the current function.
#define WEBER_RETURN_NOT_OK(expr)              \
  do {                                         \
    ::weber::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace weber

#endif  // WEBER_COMMON_STATUS_H_

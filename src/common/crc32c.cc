#include "common/crc32c.h"

namespace weber {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // Castagnoli, reflected

struct Crc32cTables {
  uint32_t t[4][256];

  constexpr Crc32cTables() : t{} {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    // Slicing tables: t[k][b] = crc of byte b followed by k zero bytes.
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

constexpr Crc32cTables kTables;

}  // namespace

uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Process 4 bytes at a time via the slicing tables.
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = kTables.t[3][crc & 0xFF] ^ kTables.t[2][(crc >> 8) & 0xFF] ^
          kTables.t[1][(crc >> 16) & 0xFF] ^ kTables.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n--) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

}  // namespace weber

// Minimal leveled logger for library diagnostics.
//
// Usage:  WEBER_LOG(INFO) << "resolved " << n << " documents";
// Default level is WARNING so library users see nothing unless they opt in
// via Logger::SetLevel(LogLevel::kInfo).

#ifndef WEBER_COMMON_LOGGING_H_
#define WEBER_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace weber {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Process-wide logging configuration. Writes to stderr.
class Logger {
 public:
  static LogLevel level() { return level_; }
  static void SetLevel(LogLevel level) { level_ = level; }

  /// Internal: emits one formatted line.
  static void Emit(LogLevel level, const char* file, int line,
                   const std::string& message);

 private:
  static LogLevel level_;
};

/// Internal: accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Logger::Emit(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

#define WEBER_LOG_DEBUG ::weber::LogLevel::kDebug
#define WEBER_LOG_INFO ::weber::LogLevel::kInfo
#define WEBER_LOG_WARNING ::weber::LogLevel::kWarning
#define WEBER_LOG_ERROR ::weber::LogLevel::kError

#define WEBER_LOG(severity)                                     \
  if (WEBER_LOG_##severity < ::weber::Logger::level()) {        \
  } else                                                        \
    ::weber::LogMessage(WEBER_LOG_##severity, __FILE__, __LINE__)

}  // namespace weber

#endif  // WEBER_COMMON_LOGGING_H_

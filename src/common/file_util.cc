#include "common/file_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace weber {

namespace fs = std::filesystem;

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open ", path, " for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("read failed on ", path);
  }
  return std::move(buffer).str();
}

Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       bool sync) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open(", tmp, "): ", std::strerror(errno));
  }
  size_t written = 0;
  while (written < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + written,
                        contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string error = std::strerror(errno);
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IOError("write(", tmp, "): ", error);
    }
    written += static_cast<size_t>(n);
  }
  if (sync) {
    if (Status st = SyncFd(fd, tmp); !st.ok()) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return st;
    }
  }
  if (::close(fd) != 0) {
    const std::string error = std::strerror(errno);
    ::unlink(tmp.c_str());
    return Status::IOError("close(", tmp, "): ", error);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string error = std::strerror(errno);
    ::unlink(tmp.c_str());
    return Status::IOError("rename(", tmp, " -> ", path, "): ", error);
  }
  if (sync) {
    const fs::path parent = fs::path(path).parent_path();
    WEBER_RETURN_NOT_OK(
        SyncDirectory(parent.empty() ? "." : parent.string()));
  }
  return Status::OK();
}

Status CreateDirectories(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return Status::IOError("mkdir -p ", path, ": ", ec.message());
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDirectory(const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IOError("list ", dir, ": ", ec.message());
  }
  std::vector<std::string> names;
  for (const auto& entry : it) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError("unlink(", path, "): ", std::strerror(errno));
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Result<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  const uint64_t size = fs::file_size(path, ec);
  if (ec) {
    return Status::IOError("stat ", path, ": ", ec.message());
  }
  return size;
}

Status SyncFd(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    return Status::IOError("fsync(", what, "): ", std::strerror(errno));
  }
  return Status::OK();
}

Status SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError("open(", dir, "): ", std::strerror(errno));
  }
  Status st = SyncFd(fd, dir);
  ::close(fd);
  return st;
}

}  // namespace weber

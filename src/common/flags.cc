#include "common/flags.h"

#include <cassert>

#include "common/string_util.h"

namespace weber {

void FlagParser::AddString(const std::string& name, std::string default_value,
                           std::string help) {
  Flag flag;
  flag.type = Type::kString;
  flag.help = std::move(help);
  flag.default_repr = "\"" + default_value + "\"";
  flag.string_value = std::move(default_value);
  flags_[name] = std::move(flag);
}

void FlagParser::AddInt(const std::string& name, int default_value,
                        std::string help) {
  Flag flag;
  flag.type = Type::kInt;
  flag.help = std::move(help);
  flag.int_value = default_value;
  flag.default_repr = std::to_string(default_value);
  flags_[name] = std::move(flag);
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           std::string help) {
  Flag flag;
  flag.type = Type::kDouble;
  flag.help = std::move(help);
  flag.double_value = default_value;
  flag.default_repr = FormatDouble(default_value, 3);
  flags_[name] = std::move(flag);
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         std::string help) {
  Flag flag;
  flag.type = Type::kBool;
  flag.help = std::move(help);
  flag.bool_value = default_value;
  flag.default_repr = default_value ? "true" : "false";
  flags_[name] = std::move(flag);
}

Status FlagParser::SetValue(Flag* flag, const std::string& name,
                            const std::string& value) {
  flag->was_set = true;
  switch (flag->type) {
    case Type::kString:
      flag->string_value = value;
      return Status::OK();
    case Type::kInt:
      if (!ParseInt(value, &flag->int_value)) {
        return Status::InvalidArgument("--", name, ": expected int, got '",
                                       value, "'");
      }
      return Status::OK();
    case Type::kDouble:
      if (!ParseDouble(value, &flag->double_value)) {
        return Status::InvalidArgument("--", name, ": expected number, got '",
                                       value, "'");
      }
      return Status::OK();
    case Type::kBool:
      if (value == "true" || value == "1") {
        flag->bool_value = true;
      } else if (value == "false" || value == "0") {
        flag->bool_value = false;
      } else {
        return Status::InvalidArgument("--", name,
                                       ": expected true/false, got '", value,
                                       "'");
      }
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string name, value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }

    auto it = flags_.find(name);
    if (it == flags_.end()) {
      // --noflag for booleans.
      if (StartsWith(name, "no")) {
        auto no_it = flags_.find(name.substr(2));
        if (no_it != flags_.end() && no_it->second.type == Type::kBool &&
            !has_value) {
          no_it->second.bool_value = false;
          no_it->second.was_set = true;
          continue;
        }
      }
      return Status::InvalidArgument("unknown flag --", name);
    }
    Flag& flag = it->second;

    if (!has_value) {
      if (flag.type == Type::kBool) {
        flag.bool_value = true;
        flag.was_set = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("--", name, ": missing value");
      }
      value = argv[++i];
    }
    WEBER_RETURN_NOT_OK(SetValue(&flag, name, value));
  }
  return Status::OK();
}

std::string FlagParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  assert(it != flags_.end() && it->second.type == Type::kString);
  return it == flags_.end() ? std::string() : it->second.string_value;
}

int FlagParser::GetInt(const std::string& name) const {
  auto it = flags_.find(name);
  assert(it != flags_.end() && it->second.type == Type::kInt);
  return it == flags_.end() ? 0 : it->second.int_value;
}

double FlagParser::GetDouble(const std::string& name) const {
  auto it = flags_.find(name);
  assert(it != flags_.end() && it->second.type == Type::kDouble);
  return it == flags_.end() ? 0.0 : it->second.double_value;
}

bool FlagParser::GetBool(const std::string& name) const {
  auto it = flags_.find(name);
  assert(it != flags_.end() && it->second.type == Type::kBool);
  return it == flags_.end() ? false : it->second.bool_value;
}

bool FlagParser::WasSet(const std::string& name) const {
  auto it = flags_.find(name);
  return it != flags_.end() && it->second.was_set;
}

std::string FlagParser::Usage(const std::string& program_description) const {
  std::string out = program_description + "\n\nflags:\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name + "  (default " + flag.default_repr + ")\n      " +
           flag.help + "\n";
  }
  return out;
}

}  // namespace weber

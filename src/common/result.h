// Result<T>: value-or-Status return type (Arrow's arrow::Result idiom).

#ifndef WEBER_COMMON_RESULT_H_
#define WEBER_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace weber {

/// Holds either a successfully produced T or the Status describing why the
/// value could not be produced.
///
///   Result<Dataset> r = Dataset::Load(path);
///   if (!r.ok()) return r.status();
///   Dataset d = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure). Constructing a
  /// Result from an OK status is a programming error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The failure status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// The held value; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Shorthand accessors mirroring arrow::Result.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value if ok, otherwise the supplied default.
  T ValueOr(T fallback) const& { return ok() ? std::get<T>(repr_) : fallback; }

 private:
  std::variant<Status, T> repr_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its status.
#define WEBER_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie()

#define WEBER_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define WEBER_ASSIGN_OR_RETURN_NAME(a, b) WEBER_ASSIGN_OR_RETURN_CONCAT(a, b)
#define WEBER_ASSIGN_OR_RETURN(lhs, expr) \
  WEBER_ASSIGN_OR_RETURN_IMPL(            \
      WEBER_ASSIGN_OR_RETURN_NAME(_weber_result_, __LINE__), lhs, expr)

}  // namespace weber

#endif  // WEBER_COMMON_RESULT_H_

#include "common/status.h"

namespace weber {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

int ExitCodeForStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 2;
    case StatusCode::kIOError:
      return 3;
    case StatusCode::kCorruption:
      return 4;
    case StatusCode::kNotFound:
      return 5;
    case StatusCode::kFailedPrecondition:
      return 6;
    case StatusCode::kOutOfRange:
      return 7;
    case StatusCode::kAlreadyExists:
      return 8;
    case StatusCode::kNotImplemented:
      return 9;
    case StatusCode::kInternal:
      return 10;
    case StatusCode::kDeadlineExceeded:
      return 11;
    case StatusCode::kUnavailable:
      return 12;
  }
  return 1;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out.append(": ");
  out.append(msg_);
  return out;
}

}  // namespace weber

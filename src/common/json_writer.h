// Minimal streaming JSON writer, for exporting experiment results and
// resolutions to downstream analysis (plots, notebooks). Write-only — the
// library never needs to parse JSON.

#ifndef WEBER_COMMON_JSON_WRITER_H_
#define WEBER_COMMON_JSON_WRITER_H_

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace weber {

/// Emits syntactically valid JSON with proper string escaping and
/// locale-independent number formatting.
///
///   JsonWriter json(os);
///   json.BeginObject();
///   json.Key("name").String("cohen");
///   json.Key("fp").Number(0.8774);
///   json.Key("sizes").BeginArray();
///   json.Number(3).Number(2);
///   json.EndArray();
///   json.EndObject();
///
/// The writer tracks nesting and inserts commas automatically. Misuse
/// (e.g. Key at array level) is the caller's bug; assertions fire in debug
/// builds.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Writes an object key; must be followed by exactly one value.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Number(long long value);
  JsonWriter& Number(int value) { return Number(static_cast<long long>(value)); }
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Escapes a string per RFC 8259 (quotes, backslashes, control chars).
  static std::string Escape(std::string_view s);

 private:
  void BeforeValue();

  std::ostream& os_;
  /// One entry per open container: true = object, false = array.
  std::vector<bool> stack_;
  /// Whether the current container already holds a value.
  std::vector<bool> has_items_;
  bool pending_key_ = false;
};

}  // namespace weber

#endif  // WEBER_COMMON_JSON_WRITER_H_

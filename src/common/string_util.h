// Small string helpers shared across the library.

#ifndef WEBER_COMMON_STRING_UTIL_H_
#define WEBER_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace weber {

/// ASCII lowercasing (the library treats text as ASCII-folded UTF-8; bytes
/// outside [A-Z] are passed through).
std::string ToLowerAscii(std::string_view s);

/// ASCII uppercasing.
std::string ToUpperAscii(std::string_view s);

/// Removes leading and trailing whitespace (space, tab, CR, LF, FF, VT).
std::string_view TrimWhitespace(std::string_view s);

/// Splits on a single character; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on any whitespace run; empty pieces are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins pieces with the given separator.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Formats a double with the given number of decimals (fixed notation).
std::string FormatDouble(double value, int decimals);

/// Parses a double; returns false on malformed input (trailing junk counts
/// as malformed).
bool ParseDouble(std::string_view s, double* out);

/// Parses an int; returns false on malformed input.
bool ParseInt(std::string_view s, int* out);

}  // namespace weber

#endif  // WEBER_COMMON_STRING_UTIL_H_

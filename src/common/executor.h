// Executor: a fixed-size worker pool with a shared task queue, the one
// thread-spawning primitive of the library. Experiment fan-out and the
// serving subsystem's background compactions both run on it, so thread
// creation happens once per pool instead of once per unit of work.

#ifndef WEBER_COMMON_EXECUTOR_H_
#define WEBER_COMMON_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"

namespace weber {

/// Fixed worker threads draining a FIFO task queue. Submit is thread-safe
/// and may be called from inside a task (tasks must not *wait* on tasks
/// scheduled behind them, or the pool can deadlock at low thread counts).
///
///   Executor pool(4);
///   auto done = pool.Submit([] { ... });
///   done.wait();
///
/// The destructor finishes every task already submitted, then joins.
class Executor {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1). With `queue_cap` > 0,
  /// TrySubmit rejects once that many tasks are waiting (admission
  /// control); Submit itself stays unbounded.
  explicit Executor(int num_threads, size_t queue_cap = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueues a task; the future resolves when it has run. Tasks must not
  /// throw (the library communicates failure via Status, not exceptions).
  std::future<void> Submit(std::function<void()> task);

  /// As Submit, but subject to the queue cap: when `queue_cap` tasks are
  /// already waiting the task is rejected immediately with Unavailable
  /// instead of queueing without bound — the caller sheds load (or answers
  /// OVERLOADED) rather than hiding it in latency. With no cap configured
  /// this is exactly Submit.
  Result<std::future<void>> TrySubmit(std::function<void()> task);

  /// Tasks rejected by TrySubmit since construction.
  long long rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

  size_t queue_cap() const { return queue_cap_; }

  /// Runs fn(i) for every i in [0, n) across the pool and blocks until all
  /// calls return. The calling thread also works, so this is safe to call
  /// even when the pool's workers are busy or `num_threads` is 1.
  void ParallelFor(int n, const std::function<void(int)>& fn);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Tasks waiting in the queue (diagnostics; racy by nature).
  int QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::packaged_task<void()>> queue_;
  bool shutting_down_ = false;
  size_t queue_cap_ = 0;
  std::atomic<long long> rejected_{0};
  std::vector<std::thread> workers_;
};

}  // namespace weber

#endif  // WEBER_COMMON_EXECUTOR_H_

// Entropy-based informativeness metrics — the paper's stated future work
// (Section VII: "address the effect of incomplete information available in
// the Web pages on the accuracy of the similarity functions, by considering
// entropy based metrics, similar to [29]").
//
// The idea: a near-empty page gives the similarity functions almost nothing
// to work with, so decisions on pairs involving such pages are close to
// guesses. Quantifying page information content lets the resolver treat
// those decisions with appropriate caution.

#ifndef WEBER_ML_ENTROPY_H_
#define WEBER_ML_ENTROPY_H_

#include <vector>

namespace weber {
namespace ml {

/// Shannon entropy (in bits) of a discrete distribution. Non-positive
/// entries are ignored; the input need not be normalized (it is normalized
/// internally). Returns 0 for empty or degenerate input.
double ShannonEntropy(const std::vector<double>& weights);

/// Entropy normalized by the maximum log2(k) over the k positive entries,
/// in [0, 1]. 1 = uniform (maximally diverse), 0 = concentrated on one
/// entry (or fewer than two positive entries).
double NormalizedEntropy(const std::vector<double>& weights);

/// Perplexity: 2^entropy, the "effective number of distinct items".
double Perplexity(const std::vector<double>& weights);

}  // namespace ml
}  // namespace weber

#endif  // WEBER_ML_ENTROPY_H_

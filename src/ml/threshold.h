// Optimal-threshold learning (Section IV-A): "we have chosen a threshold,
// which — based on the training set — maximizes the number of correct
// decisions".

#ifndef WEBER_ML_THRESHOLD_H_
#define WEBER_ML_THRESHOLD_H_

#include <vector>

#include "common/result.h"
#include "ml/region_model.h"

namespace weber {
namespace ml {

struct ThresholdFit {
  /// Decision rule: link iff similarity >= threshold.
  double threshold = 0.5;
  /// Fraction of training pairs decided correctly at this threshold.
  double train_accuracy = 0.0;
};

/// Scans all candidate cut points (midpoints between adjacent distinct
/// training values, plus the extremes 0 and 1) and returns the threshold
/// maximizing training accuracy. Ties prefer the lowest threshold, which
/// favors recall on unseen pairs. Returns InvalidArgument on empty input.
Result<ThresholdFit> FitOptimalThreshold(
    const std::vector<LabeledSimilarity>& training);

/// Accuracy of the rule "link iff value >= threshold" on a labeled sample.
double ThresholdAccuracy(const std::vector<LabeledSimilarity>& sample,
                         double threshold);

}  // namespace ml
}  // namespace weber

#endif  // WEBER_ML_THRESHOLD_H_

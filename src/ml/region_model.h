// RegionModel / RegionAccuracyModel: the paper's core data-engineering
// device (Section IV-A). The similarity value space [0,1] is partitioned
// into regions — either equal-width sub-intervals or 1-D k-means clusters —
// and each region carries an accuracy estimate: the fraction of training
// pairs falling in the region that are true links.

#ifndef WEBER_ML_REGION_MODEL_H_
#define WEBER_ML_REGION_MODEL_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace weber {
namespace ml {

/// One labeled training observation: a similarity value and whether the pair
/// is a true link ("link existence").
struct LabeledSimilarity {
  double value = 0.0;
  bool link = false;
};

/// How the value space is partitioned.
enum class RegionScheme : int {
  kEqualWidth = 0,  ///< [0,0.1), [0.1,0.2), ..., [0.9,1]
  kKMeans = 1,      ///< 1-D k-means cluster heads with midpoint boundaries
};

std::string RegionSchemeToString(RegionScheme scheme);

/// Partition of [0,1] into contiguous regions.
class RegionModel {
 public:
  /// `bins` equal-width sub-intervals of [0, 1].
  static RegionModel EqualWidth(int bins);

  /// Regions induced by 1-D k-means on training values: region r spans the
  /// midpoints around center r. Returns InvalidArgument on empty input or
  /// k < 1.
  static Result<RegionModel> KMeansRegions(const std::vector<double>& values,
                                           int k, Rng* rng);

  int num_regions() const { return static_cast<int>(centers_.size()); }

  /// Region index for a value (values are clamped into [0,1]).
  int RegionOf(double value) const;

  /// Representative value (center) of a region.
  double center(int region) const { return centers_[region]; }

  /// Upper boundaries of each region except the last (ascending). The
  /// figure-1 style "dotted lines".
  const std::vector<double>& boundaries() const { return boundaries_; }

 private:
  std::vector<double> centers_;     // ascending
  std::vector<double> boundaries_;  // size = centers_.size() - 1
};

/// RegionModel plus per-region accuracy estimates learned from a training
/// sample.
class RegionAccuracyModel {
 public:
  /// Fits per-region accuracies. Regions that receive no training samples
  /// fall back to the global link rate of the training set (the prior).
  /// Returns InvalidArgument when `training` is empty.
  static Result<RegionAccuracyModel> Fit(
      RegionModel regions, const std::vector<LabeledSimilarity>& training);

  /// Convenience: equal-width regions fitted in one call.
  static Result<RegionAccuracyModel> FitEqualWidth(
      const std::vector<LabeledSimilarity>& training, int bins);

  /// Convenience: k-means regions derived from the training values and
  /// fitted in one call.
  static Result<RegionAccuracyModel> FitKMeans(
      const std::vector<LabeledSimilarity>& training, int k, Rng* rng);

  /// Estimated probability that a pair with this similarity value is a true
  /// link (the region's accuracy-of-link-existence).
  double LinkProbability(double value) const {
    return accuracy_[regions_.RegionOf(value)];
  }

  /// The paper's region decision rule: link iff the region's link rate is at
  /// least 0.5 ("if this value is lower than 0.5 then ... the majority pairs
  /// should not be considered as a link").
  bool Decide(double value) const { return LinkProbability(value) >= 0.5; }

  /// Accuracy of the *decision* made in this value's region: the majority
  /// rate max(p, 1-p). Used when ranking decision graphs.
  double DecisionAccuracy(double value) const {
    double p = LinkProbability(value);
    return p >= 0.5 ? p : 1.0 - p;
  }

  const RegionModel& regions() const { return regions_; }
  const std::vector<double>& region_accuracies() const { return accuracy_; }
  const std::vector<int>& region_sample_counts() const { return counts_; }
  double prior_link_rate() const { return prior_; }

 private:
  RegionModel regions_;
  std::vector<double> accuracy_;  // per region: fraction of links
  std::vector<int> counts_;       // per region: training sample count
  double prior_ = 0.0;
};

}  // namespace ml
}  // namespace weber

#endif  // WEBER_ML_REGION_MODEL_H_

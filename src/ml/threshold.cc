#include "ml/threshold.h"

#include <algorithm>
#include <cmath>

namespace weber {
namespace ml {

double ThresholdAccuracy(const std::vector<LabeledSimilarity>& sample,
                         double threshold) {
  if (sample.empty()) return 0.0;
  int correct = 0;
  for (const LabeledSimilarity& s : sample) {
    bool decision = s.value >= threshold;
    if (decision == s.link) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(sample.size());
}

Result<ThresholdFit> FitOptimalThreshold(
    const std::vector<LabeledSimilarity>& training) {
  if (training.empty()) {
    return Status::InvalidArgument("FitOptimalThreshold: empty training set");
  }
  std::vector<LabeledSimilarity> sorted = training;
  std::sort(sorted.begin(), sorted.end(),
            [](const LabeledSimilarity& a, const LabeledSimilarity& b) {
              return a.value < b.value;
            });
  const int n = static_cast<int>(sorted.size());
  int total_links = 0;
  for (const LabeledSimilarity& s : sorted) total_links += s.link ? 1 : 0;

  // Sweep the cut from below the minimum upward. With the cut before index
  // i (i.e. the first i samples are decided "no link"):
  //   correct(i) = (non-links among first i) + (links among the rest).
  // Candidate thresholds are midpoints between adjacent distinct values;
  // cut at i=0 corresponds to threshold 0 (everything linked).
  ThresholdFit best;
  best.threshold = 0.0;
  int links_below = 0;   // links among the first i samples
  int correct0 = total_links;  // i = 0: all decided "link"
  best.train_accuracy = static_cast<double>(correct0) / n;

  for (int i = 1; i <= n; ++i) {
    links_below += sorted[i - 1].link ? 1 : 0;
    const int nonlinks_below = i - links_below;
    const int links_above = total_links - links_below;
    const int correct = nonlinks_below + links_above;
    // The threshold realizing this cut must be > value[i-1] and
    // <= value[i]. Skip cuts that fall between equal values.
    double cut;
    if (i == n) {
      cut = std::nextafter(sorted[n - 1].value, 2.0);
      if (cut > 1.0) cut = 1.0 + 1e-12;
    } else {
      if (sorted[i].value <= sorted[i - 1].value) continue;
      cut = (sorted[i - 1].value + sorted[i].value) / 2.0;
    }
    double acc = static_cast<double>(correct) / n;
    if (acc > best.train_accuracy + 1e-12) {
      best.train_accuracy = acc;
      best.threshold = cut;
    }
  }
  return best;
}

}  // namespace ml
}  // namespace weber

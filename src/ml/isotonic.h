// Isotonic regression via the pool-adjacent-violators algorithm (PAV).
//
// Methodologically this sits exactly between the paper's two decision
// devices: the optimal threshold assumes the link probability is a step
// 0/1 function of the similarity value, free regions (Section IV-A) assume
// nothing, and isotonic regression assumes only *monotonicity* — the link
// probability never decreases as similarity grows. For functions that are
// genuinely monotone it uses the training sample more efficiently than
// regions; for the non-monotone functions the paper showcases (Figure 1)
// it cannot express the dip and regions win. The ablation benchmark
// measures exactly this trade-off.

#ifndef WEBER_ML_ISOTONIC_H_
#define WEBER_ML_ISOTONIC_H_

#include <vector>

#include "common/result.h"
#include "ml/region_model.h"

namespace weber {
namespace ml {

/// A fitted non-decreasing step function from similarity values to link
/// probabilities.
class IsotonicModel {
 public:
  /// Fits by PAV on (value, link) pairs: finds the non-decreasing function
  /// minimizing squared error against the 0/1 labels. Returns
  /// InvalidArgument on empty input.
  static Result<IsotonicModel> Fit(
      const std::vector<LabeledSimilarity>& training);

  /// Predicted link probability at `value` (step function evaluated at the
  /// greatest knot <= value; values below the first knot get the first
  /// level).
  double LinkProbability(double value) const;

  /// Number of constant segments after pooling.
  int num_segments() const { return static_cast<int>(levels_.size()); }

  /// Segment start values (ascending) and their fitted levels
  /// (non-decreasing).
  const std::vector<double>& knots() const { return knots_; }
  const std::vector<double>& levels() const { return levels_; }

 private:
  std::vector<double> knots_;   // segment start values, ascending
  std::vector<double> levels_;  // fitted probabilities, non-decreasing
};

}  // namespace ml
}  // namespace weber

#endif  // WEBER_ML_ISOTONIC_H_

#include "ml/isotonic.h"

#include <algorithm>

namespace weber {
namespace ml {

Result<IsotonicModel> IsotonicModel::Fit(
    const std::vector<LabeledSimilarity>& training) {
  if (training.empty()) {
    return Status::InvalidArgument("IsotonicModel: empty training set");
  }
  std::vector<LabeledSimilarity> sorted = training;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const LabeledSimilarity& a, const LabeledSimilarity& b) {
                     return a.value < b.value;
                   });

  // Pool-adjacent-violators over blocks of (sum, count, start_value).
  struct Block {
    double sum;
    int count;
    double start;
    double mean() const { return sum / count; }
  };
  std::vector<Block> blocks;
  blocks.reserve(sorted.size());
  for (const LabeledSimilarity& s : sorted) {
    blocks.push_back({s.link ? 1.0 : 0.0, 1, s.value});
    // Merge while the monotonicity constraint is violated.
    while (blocks.size() >= 2 &&
           blocks[blocks.size() - 2].mean() >= blocks.back().mean()) {
      Block last = blocks.back();
      blocks.pop_back();
      blocks.back().sum += last.sum;
      blocks.back().count += last.count;
    }
  }

  IsotonicModel model;
  model.knots_.reserve(blocks.size());
  model.levels_.reserve(blocks.size());
  for (const Block& b : blocks) {
    model.knots_.push_back(b.start);
    model.levels_.push_back(b.mean());
  }
  return model;
}

double IsotonicModel::LinkProbability(double value) const {
  // Greatest knot <= value.
  auto it = std::upper_bound(knots_.begin(), knots_.end(), value);
  if (it == knots_.begin()) return levels_.front();
  return levels_[static_cast<size_t>(it - knots_.begin()) - 1];
}

}  // namespace ml
}  // namespace weber

#include "ml/kmeans1d.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

namespace weber {
namespace ml {

namespace {

std::vector<double> KMeansPlusPlusSeed(const std::vector<double>& values,
                                       int k, Rng* rng) {
  std::vector<double> centers;
  centers.reserve(k);
  centers.push_back(values[rng->UniformUint64(values.size())]);
  std::vector<double> d2(values.size());
  while (static_cast<int>(centers.size()) < k) {
    double total = 0.0;
    for (size_t i = 0; i < values.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (double c : centers) {
        best = std::min(best, (values[i] - c) * (values[i] - c));
      }
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) break;  // all points coincide with some center
    int pick = rng->Categorical(d2);
    if (pick < 0) break;
    centers.push_back(values[pick]);
  }
  return centers;
}

}  // namespace

int NearestCenter(const std::vector<double>& centers, double value) {
  // Binary search over ascending centers, then compare the two candidates.
  auto it = std::lower_bound(centers.begin(), centers.end(), value);
  if (it == centers.begin()) return 0;
  if (it == centers.end()) return static_cast<int>(centers.size()) - 1;
  int hi = static_cast<int>(it - centers.begin());
  int lo = hi - 1;
  return (value - centers[lo]) <= (centers[hi] - value) ? lo : hi;
}

Result<KMeans1DResult> KMeans1D(const std::vector<double>& values, int k,
                                Rng* rng, const KMeans1DOptions& options) {
  if (k < 1) return Status::InvalidArgument("KMeans1D: k must be >= 1, got ", k);
  if (values.empty()) return Status::InvalidArgument("KMeans1D: empty input");

  // Cap k at the number of distinct values; more clusters than distinct
  // values would leave empty clusters forever.
  std::set<double> distinct(values.begin(), values.end());
  k = std::min<int>(k, static_cast<int>(distinct.size()));

  KMeans1DResult best;
  best.inertia = std::numeric_limits<double>::infinity();

  for (int restart = 0; restart < std::max(1, options.restarts); ++restart) {
    std::vector<double> centers = KMeansPlusPlusSeed(values, k, rng);
    std::sort(centers.begin(), centers.end());
    centers.erase(std::unique(centers.begin(), centers.end()), centers.end());

    int iter = 0;
    for (; iter < options.max_iterations; ++iter) {
      // Assignment + update in one pass: accumulate per-center sums.
      std::vector<double> sum(centers.size(), 0.0);
      std::vector<int> count(centers.size(), 0);
      for (double v : values) {
        int c = NearestCenter(centers, v);
        sum[c] += v;
        count[c] += 1;
      }
      double max_shift = 0.0;
      std::vector<double> updated;
      updated.reserve(centers.size());
      for (size_t c = 0; c < centers.size(); ++c) {
        if (count[c] == 0) continue;  // drop empty cluster
        double nc = sum[c] / count[c];
        max_shift = std::max(max_shift, std::fabs(nc - centers[c]));
        updated.push_back(nc);
      }
      std::sort(updated.begin(), updated.end());
      updated.erase(std::unique(updated.begin(), updated.end()), updated.end());
      centers = std::move(updated);
      if (max_shift <= options.tolerance) break;
    }

    double inertia = 0.0;
    for (double v : values) {
      double c = centers[NearestCenter(centers, v)];
      inertia += (v - c) * (v - c);
    }
    if (inertia < best.inertia) {
      best.centers = centers;
      best.inertia = inertia;
      best.iterations = iter;
    }
  }
  return best;
}

}  // namespace ml
}  // namespace weber

// One-dimensional k-means, used to derive value-space regions from training
// similarity values (Section IV-A, method 2).

#ifndef WEBER_ML_KMEANS1D_H_
#define WEBER_ML_KMEANS1D_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace weber {
namespace ml {

struct KMeans1DOptions {
  int max_iterations = 100;
  /// Convergence: stop when no center moves by more than this.
  double tolerance = 1e-9;
  /// Number of k-means++ restarts; best inertia wins.
  int restarts = 4;
};

struct KMeans1DResult {
  /// Cluster centers in ascending order. May hold fewer than the requested
  /// k when the data has fewer distinct values.
  std::vector<double> centers;
  /// Sum of squared distances to the assigned centers.
  double inertia = 0.0;
  int iterations = 0;
};

/// Runs Lloyd's algorithm with k-means++ seeding on scalar data.
/// Returns InvalidArgument when k < 1 or `values` is empty.
Result<KMeans1DResult> KMeans1D(const std::vector<double>& values, int k,
                                Rng* rng, const KMeans1DOptions& options = {});

/// Index of the center nearest to `value` (centers must be non-empty and
/// ascending; ties break toward the lower index).
int NearestCenter(const std::vector<double>& centers, double value);

}  // namespace ml
}  // namespace weber

#endif  // WEBER_ML_KMEANS1D_H_

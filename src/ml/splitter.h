// Training-set sampling (Section V-A2: "we use 10% of the complete dataset
// as the training set ... on each run we randomly choose the training subset
// from the complete dataset").

#ifndef WEBER_ML_SPLITTER_H_
#define WEBER_ML_SPLITTER_H_

#include <vector>

#include "common/random.h"

namespace weber {
namespace ml {

/// Samples a training subset of the documents of one block.
///
/// Returns the sorted indices of ceil(fraction * n) randomly chosen
/// documents, with a floor of `minimum` (clamped to n). Labeled training
/// *pairs* are all pairs among the returned documents.
std::vector<int> SampleTrainingDocuments(int n, double fraction, Rng* rng,
                                         int minimum = 2);

/// All unordered pairs (i, j), i < j, over the given document indices.
std::vector<std::pair<int, int>> PairsAmong(const std::vector<int>& docs);

/// Samples a training subset of the block's document *pairs* directly:
/// ceil(fraction * n*(n-1)/2) distinct unordered pairs, uniformly without
/// replacement, with a floor of `minimum` (clamped to the pair count).
/// This is the paper's "10% of the complete dataset" protocol when the
/// dataset is read as the set of pairwise decisions.
std::vector<std::pair<int, int>> SampleTrainingPairs(int n, double fraction,
                                                     Rng* rng,
                                                     int minimum = 10);

}  // namespace ml
}  // namespace weber

#endif  // WEBER_ML_SPLITTER_H_

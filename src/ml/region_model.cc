#include "ml/region_model.h"

#include <algorithm>
#include <cmath>

#include "ml/kmeans1d.h"

namespace weber {
namespace ml {

std::string RegionSchemeToString(RegionScheme scheme) {
  switch (scheme) {
    case RegionScheme::kEqualWidth:
      return "equal-width";
    case RegionScheme::kKMeans:
      return "k-means";
  }
  return "unknown";
}

RegionModel RegionModel::EqualWidth(int bins) {
  bins = std::max(1, bins);
  RegionModel m;
  m.centers_.reserve(bins);
  m.boundaries_.reserve(bins - 1);
  const double width = 1.0 / bins;
  for (int b = 0; b < bins; ++b) {
    m.centers_.push_back((b + 0.5) * width);
    if (b + 1 < bins) m.boundaries_.push_back((b + 1) * width);
  }
  return m;
}

Result<RegionModel> RegionModel::KMeansRegions(
    const std::vector<double>& values, int k, Rng* rng) {
  WEBER_ASSIGN_OR_RETURN(KMeans1DResult result, KMeans1D(values, k, rng));
  RegionModel m;
  m.centers_ = std::move(result.centers);
  for (size_t i = 0; i + 1 < m.centers_.size(); ++i) {
    m.boundaries_.push_back((m.centers_[i] + m.centers_[i + 1]) / 2.0);
  }
  return m;
}

int RegionModel::RegionOf(double value) const {
  value = std::clamp(value, 0.0, 1.0);
  // First boundary strictly greater than value gives the region index.
  auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), value);
  return static_cast<int>(it - boundaries_.begin());
}

Result<RegionAccuracyModel> RegionAccuracyModel::Fit(
    RegionModel regions, const std::vector<LabeledSimilarity>& training) {
  if (training.empty()) {
    return Status::InvalidArgument("RegionAccuracyModel: empty training set");
  }
  RegionAccuracyModel model;
  model.regions_ = std::move(regions);
  const int r = model.regions_.num_regions();
  model.counts_.assign(r, 0);
  std::vector<int> links(r, 0);
  int total_links = 0;
  for (const LabeledSimilarity& s : training) {
    int region = model.regions_.RegionOf(s.value);
    model.counts_[region] += 1;
    if (s.link) {
      links[region] += 1;
      ++total_links;
    }
  }
  model.prior_ =
      static_cast<double>(total_links) / static_cast<double>(training.size());
  model.accuracy_.assign(r, model.prior_);
  for (int i = 0; i < r; ++i) {
    if (model.counts_[i] > 0) {
      model.accuracy_[i] =
          static_cast<double>(links[i]) / static_cast<double>(model.counts_[i]);
    }
  }
  return model;
}

Result<RegionAccuracyModel> RegionAccuracyModel::FitEqualWidth(
    const std::vector<LabeledSimilarity>& training, int bins) {
  return Fit(RegionModel::EqualWidth(bins), training);
}

Result<RegionAccuracyModel> RegionAccuracyModel::FitKMeans(
    const std::vector<LabeledSimilarity>& training, int k, Rng* rng) {
  std::vector<double> values;
  values.reserve(training.size());
  for (const LabeledSimilarity& s : training) values.push_back(s.value);
  WEBER_ASSIGN_OR_RETURN(RegionModel regions,
                         RegionModel::KMeansRegions(values, k, rng));
  return Fit(std::move(regions), training);
}

}  // namespace ml
}  // namespace weber

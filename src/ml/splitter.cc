#include "ml/splitter.h"

#include <algorithm>
#include <cmath>

namespace weber {
namespace ml {

std::vector<int> SampleTrainingDocuments(int n, double fraction, Rng* rng,
                                         int minimum) {
  if (n <= 0) return {};
  int k = static_cast<int>(std::ceil(fraction * n));
  k = std::clamp(k, std::min(minimum, n), n);
  std::vector<int> sample = rng->SampleWithoutReplacement(n, k);
  std::sort(sample.begin(), sample.end());
  return sample;
}

std::vector<std::pair<int, int>> SampleTrainingPairs(int n, double fraction,
                                                     Rng* rng, int minimum) {
  if (n < 2) return {};
  const long long total = static_cast<long long>(n) * (n - 1) / 2;
  long long k = static_cast<long long>(std::ceil(fraction * total));
  k = std::clamp<long long>(k, std::min<long long>(minimum, total), total);
  // Sample pair offsets without replacement, then decode offset -> (i, j)
  // with i < j using the row-major upper-triangle layout.
  std::vector<int> offsets =
      rng->SampleWithoutReplacement(static_cast<int>(total),
                                    static_cast<int>(k));
  std::sort(offsets.begin(), offsets.end());
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(offsets.size());
  int i = 0;
  long long row_start = 0;           // offset of pair (i, i+1)
  long long row_len = n - 1;         // pairs in row i
  for (int offset : offsets) {
    while (offset >= row_start + row_len) {
      row_start += row_len;
      ++i;
      row_len = n - 1 - i;
    }
    int j = i + 1 + static_cast<int>(offset - row_start);
    pairs.emplace_back(i, j);
  }
  return pairs;
}

std::vector<std::pair<int, int>> PairsAmong(const std::vector<int>& docs) {
  std::vector<std::pair<int, int>> pairs;
  const size_t n = docs.size();
  if (n >= 2) pairs.reserve(n * (n - 1) / 2);
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      pairs.emplace_back(docs[a], docs[b]);
    }
  }
  return pairs;
}

}  // namespace ml
}  // namespace weber

#include "ml/entropy.h"

#include <cmath>

namespace weber {
namespace ml {

double ShannonEntropy(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return 0.0;
  double entropy = 0.0;
  for (double w : weights) {
    if (w <= 0.0) continue;
    double p = w / total;
    entropy -= p * std::log2(p);
  }
  return entropy < 0.0 ? 0.0 : entropy;
}

double NormalizedEntropy(const std::vector<double>& weights) {
  int positive = 0;
  for (double w : weights) {
    if (w > 0.0) ++positive;
  }
  if (positive < 2) return 0.0;
  return ShannonEntropy(weights) / std::log2(static_cast<double>(positive));
}

double Perplexity(const std::vector<double>& weights) {
  return std::exp2(ShannonEntropy(weights));
}

}  // namespace ml
}  // namespace weber

// Checksummed shard snapshot files. A snapshot is the durable form of one
// compaction result: the batch-computed partition over the exact document
// set the compaction saw. Files are written atomically (temp + rename via
// WriteFileAtomic), so a crash mid-write never leaves a partial file under
// a snapshot name; a bit flip after the fact is caught by the trailing
// CRC32C, and recovery falls back to the next-newest snapshot.
//
// Layout (all integers little-endian):
//
//   magic   "WSNP"                    4 bytes
//   format  u32 (currently 1)         4 bytes
//   version u64                       8 bytes
//   threshold f64 (IEEE-754 bits)     8 bytes
//   n       u32                       4 bytes
//   canonical_ids  i32 × n
//   labels         i32 × n
//   crc32c over all preceding bytes   4 bytes
//
// Fault point: `serve.snapshot.write` fails the write before any bytes
// reach disk.

#ifndef WEBER_DURABILITY_SNAPSHOT_FILE_H_
#define WEBER_DURABILITY_SNAPSHOT_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace weber {
namespace durability {

struct ShardSnapshotData {
  /// Monotonic per-shard snapshot version; the file name embeds it.
  uint64_t version = 0;
  /// Calibrated match threshold the partition was computed under.
  double threshold = 0.0;
  /// Canonical document ids in the arrival order the compaction saw.
  std::vector<int32_t> canonical_ids;
  /// Cluster label per position of `canonical_ids` (same length).
  std::vector<int32_t> labels;
};

/// Serializes `data` to the exact on-disk byte layout (magic through the
/// trailing CRC32C). Shard migration streams these bytes over the wire so
/// a migrated snapshot is bit-for-bit what a local compaction would have
/// written. InvalidArgument when ids and labels disagree in length.
Result<std::string> EncodeSnapshotPayload(const ShardSnapshotData& data);

/// Inverse of EncodeSnapshotPayload with full structural and checksum
/// validation; `origin` names the source in error messages (a file path
/// or a peer endpoint). Any failure is Status::Corruption.
Result<ShardSnapshotData> DecodeSnapshotPayload(const std::string& payload,
                                                const std::string& origin);

/// Serializes and writes `data` atomically; with `sync`, durable on return.
Status WriteSnapshotFile(const std::string& path,
                         const ShardSnapshotData& data, bool sync);

/// Reads and fully validates a snapshot file. Any structural or checksum
/// failure is Status::Corruption — the caller treats the file as absent.
Result<ShardSnapshotData> ReadSnapshotFile(const std::string& path);

/// "snapshot-0000000042.snap" for version 42.
std::string SnapshotFileName(uint64_t version);

/// Parses a name produced by SnapshotFileName; false for anything else.
bool ParseSnapshotFileName(const std::string& name, uint64_t* version);

}  // namespace durability
}  // namespace weber

#endif  // WEBER_DURABILITY_SNAPSHOT_FILE_H_

#include "durability/shard_log.h"

#include <algorithm>

#include "common/file_util.h"

namespace weber {
namespace durability {

namespace {

constexpr char kWalFileName[] = "wal.log";

}  // namespace

Result<std::unique_ptr<ShardLog>> ShardLog::Open(
    const std::string& dir, const ShardLogOptions& options,
    RecoveredShard* recovered) {
  *recovered = RecoveredShard();
  WEBER_RETURN_NOT_OK(CreateDirectories(dir));

  // Newest verifiable snapshot wins; corrupt files are counted and skipped.
  WEBER_ASSIGN_OR_RETURN(const std::vector<std::string> names,
                         ListDirectory(dir));
  std::vector<std::pair<uint64_t, std::string>> snapshots;
  for (const std::string& name : names) {
    uint64_t version = 0;
    if (ParseSnapshotFileName(name, &version)) {
      snapshots.emplace_back(version, name);
    }
  }
  std::sort(snapshots.rbegin(), snapshots.rend());
  for (const auto& [version, name] : snapshots) {
    Result<ShardSnapshotData> data = ReadSnapshotFile(dir + "/" + name);
    if (data.ok()) {
      recovered->snapshot = std::move(data).ValueOrDie();
      recovered->snapshot_loaded = true;
      recovered->stats.snapshot_loaded = true;
      recovered->stats.snapshot_version = version;
      break;
    }
    ++recovered->stats.corrupt_snapshots;
    if (recovered->stats.detail.empty()) {
      recovered->stats.detail = data.status().message();
    }
  }

  const std::string wal_path = dir + "/" + kWalFileName;
  WEBER_ASSIGN_OR_RETURN(
      const WalReplayResult replay,
      ReplayWal(wal_path, [recovered](std::string_view payload) -> Status {
        // A payload that passed its CRC but fails to decode is real
        // corruption the checksum cannot explain away — fail recovery
        // loudly rather than guess.
        WEBER_ASSIGN_OR_RETURN(WalRecord record, WalRecord::Decode(payload));
        recovered->records.push_back(std::move(record));
        return Status::OK();
      }));
  recovered->stats.wal_records = replay.records;
  recovered->stats.wal_torn_tail = replay.torn_tail;
  recovered->stats.wal_corrupt = replay.corrupt;
  if (!replay.detail.empty()) {
    if (!recovered->stats.detail.empty()) recovered->stats.detail += "; ";
    recovered->stats.detail += replay.detail;
  }

  WEBER_ASSIGN_OR_RETURN(
      std::unique_ptr<WalWriter> wal,
      WalWriter::Open(wal_path, options.fsync, replay.valid_bytes));
  return std::unique_ptr<ShardLog>(
      new ShardLog(dir, options, std::move(wal)));
}

Status ShardLog::Append(const WalRecord& record) {
  return wal_->Append(record.Encode());
}

Status ShardLog::Sync() { return wal_->Sync(); }

Status ShardLog::PublishSnapshot(const ShardSnapshotData& data,
                                 bool covers_all) {
  const std::string path = dir_ + "/" + SnapshotFileName(data.version);
  const bool sync = options_.fsync != FsyncPolicy::kNever;
  WEBER_RETURN_NOT_OK(WriteSnapshotFile(path, data, sync));
  ++snapshots_written_;

  if (covers_all && wal_->bytes() > options_.wal_truncate_bytes) {
    // Every logged document is inside the snapshot, so the log is pure
    // redundancy — restart it instead of letting it grow without bound.
    WEBER_RETURN_NOT_OK(wal_->Restart());
    ++wal_truncations_;
  } else if (covers_all) {
    // Cheap alternative to a truncate: replaying Assigns followed by this
    // AdoptPartition reconstructs exactly the snapshot's partition.
    WEBER_RETURN_NOT_OK(
        Append(WalRecord::AdoptPartition(data.version, data.labels)));
  }
  // When !covers_all, documents arrived during the compaction; their Assign
  // records (and any later partition) must survive in the log untouched.

  WEBER_RETURN_NOT_OK(Append(WalRecord::SnapshotPublished(data.version)));
  WEBER_RETURN_NOT_OK(Sync());
  return PruneSnapshots(data.version);
}

Status ShardLog::ResetToImport(const ShardSnapshotData& data,
                               const std::vector<WalRecord>& tail) {
  const bool sync = options_.fsync != FsyncPolicy::kNever;
  WEBER_RETURN_NOT_OK(WriteSnapshotFile(
      dir_ + "/" + SnapshotFileName(data.version), data, sync));
  ++snapshots_written_;
  // The old WAL describes the replaced state; restart before the tail so
  // replay sees only records that belong to the imported snapshot.
  WEBER_RETURN_NOT_OK(wal_->Restart());
  ++wal_truncations_;
  for (const WalRecord& record : tail) {
    WEBER_RETURN_NOT_OK(Append(record));
  }
  WEBER_RETURN_NOT_OK(Append(WalRecord::SnapshotPublished(data.version)));
  WEBER_RETURN_NOT_OK(Sync());
  // PruneSnapshots only removes versions <= newest; an import may carry a
  // *lower* version than what this directory held before, so sweep every
  // other snapshot file explicitly or recovery would resurrect stale state.
  WEBER_ASSIGN_OR_RETURN(const std::vector<std::string> names,
                         ListDirectory(dir_));
  for (const std::string& name : names) {
    uint64_t version = 0;
    if (ParseSnapshotFileName(name, &version) && version != data.version) {
      WEBER_RETURN_NOT_OK(RemoveFileIfExists(dir_ + "/" + name));
    }
  }
  return Status::OK();
}

Status ShardLog::PruneSnapshots(uint64_t newest_version) {
  if (options_.keep_snapshots <= 0) {
    return Status::OK();
  }
  WEBER_ASSIGN_OR_RETURN(const std::vector<std::string> names,
                         ListDirectory(dir_));
  std::vector<uint64_t> versions;
  for (const std::string& name : names) {
    uint64_t version = 0;
    if (ParseSnapshotFileName(name, &version) && version <= newest_version) {
      versions.push_back(version);
    }
  }
  std::sort(versions.rbegin(), versions.rend());
  for (size_t i = static_cast<size_t>(options_.keep_snapshots);
       i < versions.size(); ++i) {
    WEBER_RETURN_NOT_OK(
        RemoveFileIfExists(dir_ + "/" + SnapshotFileName(versions[i])));
  }
  return Status::OK();
}

}  // namespace durability
}  // namespace weber

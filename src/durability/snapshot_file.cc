#include "durability/snapshot_file.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/crc32c.h"
#include "common/fault_injection.h"
#include "common/file_util.h"

namespace weber {
namespace durability {

namespace {

constexpr char kMagic[4] = {'W', 'S', 'N', 'P'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8 + 4;

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24);
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

}  // namespace

Result<std::string> EncodeSnapshotPayload(const ShardSnapshotData& data) {
  if (data.canonical_ids.size() != data.labels.size()) {
    return Status::InvalidArgument("snapshot has ", data.canonical_ids.size(),
                                   " canonical ids but ", data.labels.size(),
                                   " labels");
  }
  std::string out;
  out.reserve(kHeaderBytes + 8 * data.canonical_ids.size() + 4);
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, kFormatVersion);
  PutU64(&out, data.version);
  uint64_t threshold_bits = 0;
  static_assert(sizeof(threshold_bits) == sizeof(data.threshold));
  std::memcpy(&threshold_bits, &data.threshold, sizeof(threshold_bits));
  PutU64(&out, threshold_bits);
  PutU32(&out, static_cast<uint32_t>(data.canonical_ids.size()));
  for (int32_t id : data.canonical_ids) {
    PutU32(&out, static_cast<uint32_t>(id));
  }
  for (int32_t label : data.labels) {
    PutU32(&out, static_cast<uint32_t>(label));
  }
  PutU32(&out, Crc32c(out.data(), out.size()));
  return out;
}

Result<ShardSnapshotData> DecodeSnapshotPayload(const std::string& payload,
                                                const std::string& origin) {
  if (payload.size() < kHeaderBytes + 4) {
    return Status::Corruption("snapshot ", origin, " is ", payload.size(),
                              " bytes, below the minimum of ",
                              kHeaderBytes + 4);
  }
  if (std::memcmp(payload.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("snapshot ", origin, " has a bad magic number");
  }
  const uint32_t stored_crc = GetU32(payload.data() + payload.size() - 4);
  if (Crc32c(payload.data(), payload.size() - 4) != stored_crc) {
    return Status::Corruption("snapshot ", origin, " failed its checksum");
  }
  const char* p = payload.data() + 4;
  const uint32_t format = GetU32(p);
  if (format != kFormatVersion) {
    return Status::Corruption("snapshot ", origin, " has format version ",
                              format, ", expected ", kFormatVersion);
  }
  ShardSnapshotData data;
  data.version = GetU64(p + 4);
  const uint64_t threshold_bits = GetU64(p + 12);
  std::memcpy(&data.threshold, &threshold_bits, sizeof(data.threshold));
  const uint32_t n = GetU32(p + 20);
  if (payload.size() != kHeaderBytes + 8ull * n + 4) {
    return Status::Corruption("snapshot ", origin, " declares ", n,
                              " documents but is ", payload.size(),
                              " bytes");
  }
  data.canonical_ids.reserve(n);
  data.labels.reserve(n);
  const char* ids = payload.data() + kHeaderBytes;
  const char* labels = ids + 4ull * n;
  for (uint32_t i = 0; i < n; ++i) {
    data.canonical_ids.push_back(static_cast<int32_t>(GetU32(ids + 4 * i)));
  }
  for (uint32_t i = 0; i < n; ++i) {
    data.labels.push_back(static_cast<int32_t>(GetU32(labels + 4 * i)));
  }
  return data;
}

Status WriteSnapshotFile(const std::string& path,
                         const ShardSnapshotData& data, bool sync) {
  WEBER_RETURN_NOT_OK(faults::MaybeFail("serve.snapshot.write"));
  WEBER_ASSIGN_OR_RETURN(const std::string out, EncodeSnapshotPayload(data));
  return WriteFileAtomic(path, out, sync);
}

Result<ShardSnapshotData> ReadSnapshotFile(const std::string& path) {
  WEBER_ASSIGN_OR_RETURN(const std::string contents, ReadFileToString(path));
  return DecodeSnapshotPayload(contents, path);
}

std::string SnapshotFileName(uint64_t version) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "snapshot-%010" PRIu64 ".snap", version);
  return buf;
}

bool ParseSnapshotFileName(const std::string& name, uint64_t* version) {
  uint64_t v = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "snapshot-%" SCNu64 ".snap%n", &v,
                  &consumed) != 1) {
    return false;
  }
  if (static_cast<size_t>(consumed) != name.size()) {
    return false;
  }
  *version = v;
  return true;
}

}  // namespace durability
}  // namespace weber

// Durable storage for one resolution shard: a directory holding the shard's
// write-ahead log (`wal.log`) plus its checksummed snapshot files. ShardLog
// owns the recovery sequence on open —
//
//   1. load the newest snapshot that verifies (corrupt ones are counted and
//      skipped, falling back to older versions, then to "no snapshot");
//   2. replay the full WAL through WalRecord::Decode, classifying a torn
//      tail (truncated silently) vs a corrupt record (replay stops at the
//      last valid prefix);
//   3. reopen the WAL for appending at the verified prefix.
//
// The WAL is never rotated at snapshot time — documents that arrive while a
// compaction is in flight live only in the log, so rotating would lose
// them. Instead the log is restarted (truncated to empty) only when a
// published snapshot provably covers every logged document, and otherwise
// an AdoptPartition record is appended so replay reconstructs the same
// partition the snapshot holds. Replay is idempotent against the loaded
// snapshot: the service skips Assign records for documents the snapshot
// already covers.

#ifndef WEBER_DURABILITY_SHARD_LOG_H_
#define WEBER_DURABILITY_SHARD_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "durability/snapshot_file.h"
#include "durability/wal.h"

namespace weber {
namespace durability {

struct ShardLogOptions {
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  /// Restart (empty) the WAL at snapshot publication only once it exceeds
  /// this size; below it, appending an AdoptPartition record is cheaper
  /// than an extra truncate + fsync per compaction.
  uint64_t wal_truncate_bytes = 1ull << 20;
  /// Newest snapshot files kept after each publication.
  int keep_snapshots = 2;
};

struct ShardRecoveryStats {
  bool snapshot_loaded = false;
  uint64_t snapshot_version = 0;
  /// Snapshot files that failed validation and were skipped.
  long long corrupt_snapshots = 0;
  long long wal_records = 0;
  bool wal_torn_tail = false;
  bool wal_corrupt = false;
  std::string detail;
};

/// Everything recovery salvaged from a shard directory, for the service to
/// rebuild in-memory state from.
struct RecoveredShard {
  bool snapshot_loaded = false;
  ShardSnapshotData snapshot;
  /// Valid WAL records in log order (the full log, not just a tail — the
  /// consumer deduplicates against the snapshot).
  std::vector<WalRecord> records;
  ShardRecoveryStats stats;
};

class ShardLog {
 public:
  /// Opens (creating if needed) the shard directory, runs recovery, and
  /// returns a log ready for appending. `recovered` receives the salvaged
  /// state; it is written even when absent state was found (empty result).
  static Result<std::unique_ptr<ShardLog>> Open(const std::string& dir,
                                                const ShardLogOptions& options,
                                                RecoveredShard* recovered);

  /// Appends one record to the WAL (durable per the fsync policy).
  Status Append(const WalRecord& record);

  /// Group-commit barrier: force appended records to disk.
  Status Sync();

  /// Makes a compaction result durable: writes the snapshot file, then
  /// either restarts the WAL (when `covers_all` and the log has grown past
  /// wal_truncate_bytes) or logs the adopted partition, then marks the
  /// snapshot published and prunes old snapshot files.
  Status PublishSnapshot(const ShardSnapshotData& data, bool covers_all);

  /// Replaces the shard's entire durable state with an imported snapshot
  /// plus its WAL tail (shard migration): writes the snapshot file,
  /// restarts the WAL, re-appends the tail records durably, then removes
  /// every other snapshot file — including *newer*-versioned leftovers a
  /// previous incarnation may have written, which recovery would otherwise
  /// prefer over the imported state. A crash mid-sequence leaves the
  /// directory recoverable (stale but structurally valid), which is safe
  /// because the router only flips ownership after the import acks.
  Status ResetToImport(const ShardSnapshotData& data,
                       const std::vector<WalRecord>& tail);

  const std::string& dir() const { return dir_; }
  uint64_t wal_bytes() const { return wal_->bytes(); }
  long long wal_appends() const { return wal_->appends(); }
  long long wal_syncs() const { return wal_->syncs(); }
  long long snapshots_written() const { return snapshots_written_; }
  long long wal_truncations() const { return wal_truncations_; }

 private:
  ShardLog(std::string dir, ShardLogOptions options,
           std::unique_ptr<WalWriter> wal)
      : dir_(std::move(dir)), options_(options), wal_(std::move(wal)) {}

  Status PruneSnapshots(uint64_t newest_version);

  const std::string dir_;
  const ShardLogOptions options_;
  std::unique_ptr<WalWriter> wal_;
  long long snapshots_written_ = 0;
  long long wal_truncations_ = 0;
};

}  // namespace durability
}  // namespace weber

#endif  // WEBER_DURABILITY_SHARD_LOG_H_

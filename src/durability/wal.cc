#include "durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32c.h"
#include "common/fault_injection.h"
#include "common/file_util.h"

namespace weber {
namespace durability {

namespace {

constexpr size_t kRecordHeaderBytes = 8;  // [len u32][crc u32]

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24);
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

Status WriteAll(int fd, const char* data, size_t n, const std::string& what) {
  size_t written = 0;
  while (written < n) {
    ssize_t r = ::write(fd, data + written, n - written);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write(", what, "): ", std::strerror(errno));
    }
    written += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name) {
  if (name == "never") return FsyncPolicy::kNever;
  if (name == "batch") return FsyncPolicy::kBatch;
  if (name == "always") return FsyncPolicy::kAlways;
  return Status::InvalidArgument("unknown fsync policy '", name,
                                 "' (expected never|batch|always)");
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kAlways:
      return "always";
  }
  return "unknown";
}

std::string WalRecord::Encode() const {
  std::string out;
  out.push_back(static_cast<char>(type));
  switch (type) {
    case Type::kAssign:
      PutU32(&out, static_cast<uint32_t>(doc));
      break;
    case Type::kAdoptPartition:
      PutU64(&out, version);
      PutU32(&out, static_cast<uint32_t>(labels.size()));
      for (int32_t label : labels) {
        PutU32(&out, static_cast<uint32_t>(label));
      }
      break;
    case Type::kSnapshotPublished:
      PutU64(&out, version);
      break;
  }
  return out;
}

Result<WalRecord> WalRecord::Decode(std::string_view payload) {
  if (payload.empty()) {
    return Status::Corruption("empty WAL record payload");
  }
  WalRecord record;
  const uint8_t raw_type = static_cast<uint8_t>(payload[0]);
  const char* p = payload.data() + 1;
  const size_t rest = payload.size() - 1;
  switch (raw_type) {
    case static_cast<uint8_t>(Type::kAssign): {
      if (rest != 4) {
        return Status::Corruption("Assign record has ", rest,
                                  " payload bytes, want 4");
      }
      record.type = Type::kAssign;
      record.doc = static_cast<int32_t>(GetU32(p));
      return record;
    }
    case static_cast<uint8_t>(Type::kAdoptPartition): {
      if (rest < 12) {
        return Status::Corruption("AdoptPartition record has ", rest,
                                  " payload bytes, want >= 12");
      }
      record.type = Type::kAdoptPartition;
      record.version = GetU64(p);
      const uint32_t n = GetU32(p + 8);
      if (rest != 12 + 4ull * n) {
        return Status::Corruption("AdoptPartition record declares ", n,
                                  " labels but has ", rest, " payload bytes");
      }
      record.labels.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        record.labels.push_back(static_cast<int32_t>(GetU32(p + 12 + 4 * i)));
      }
      return record;
    }
    case static_cast<uint8_t>(Type::kSnapshotPublished): {
      if (rest != 8) {
        return Status::Corruption("SnapshotPublished record has ", rest,
                                  " payload bytes, want 8");
      }
      record.type = Type::kSnapshotPublished;
      record.version = GetU64(p);
      return record;
    }
    default:
      return Status::Corruption("unknown WAL record type ",
                                static_cast<int>(raw_type));
  }
}

WalRecord WalRecord::Assign(int32_t doc) {
  WalRecord r;
  r.type = Type::kAssign;
  r.doc = doc;
  return r;
}

WalRecord WalRecord::AdoptPartition(uint64_t version,
                                    std::vector<int32_t> labels) {
  WalRecord r;
  r.type = Type::kAdoptPartition;
  r.version = version;
  r.labels = std::move(labels);
  return r;
}

WalRecord WalRecord::SnapshotPublished(uint64_t version) {
  WalRecord r;
  r.type = Type::kSnapshotPublished;
  r.version = version;
  return r;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   FsyncPolicy policy,
                                                   uint64_t valid_length) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open(", path, "): ", std::strerror(errno));
  }
  // Drop any torn or corrupt tail beyond the replay-verified prefix so new
  // records append to a clean end of log.
  if (::ftruncate(fd, static_cast<off_t>(valid_length)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("ftruncate(", path, "): ", error);
  }
  if (::lseek(fd, static_cast<off_t>(valid_length), SEEK_SET) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("lseek(", path, "): ", error);
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(path, policy, fd, valid_length));
}

WalWriter::~WalWriter() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WalWriter::Append(std::string_view payload) {
  WEBER_RETURN_NOT_OK(faults::MaybeFail("serve.wal.append"));
  std::string header;
  PutU32(&header, static_cast<uint32_t>(payload.size()));
  PutU32(&header, Crc32c(payload.data(), payload.size()));

  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) {
    return Status::FailedPrecondition("WAL writer for ", path_, " is closed");
  }
  // One write() for the whole record keeps the torn-tail window to a single
  // syscall; the kernel may still split it, which replay tolerates.
  std::string record = std::move(header);
  record.append(payload.data(), payload.size());
  WEBER_RETURN_NOT_OK(WriteAll(fd_, record.data(), record.size(), path_));
  bytes_ += record.size();
  ++appends_;
  dirty_ = true;
  if (policy_ == FsyncPolicy::kAlways) {
    return SyncLocked();
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return SyncLocked();
}

Status WalWriter::SyncLocked() {
  if (policy_ == FsyncPolicy::kNever || !dirty_) {
    return Status::OK();
  }
  WEBER_RETURN_NOT_OK(faults::MaybeFail("serve.wal.fsync"));
  if (fd_ < 0) {
    return Status::FailedPrecondition("WAL writer for ", path_, " is closed");
  }
  WEBER_RETURN_NOT_OK(SyncFd(fd_, path_));
  dirty_ = false;
  ++syncs_;
  return Status::OK();
}

Status WalWriter::Restart() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) {
    return Status::FailedPrecondition("WAL writer for ", path_, " is closed");
  }
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IOError("ftruncate(", path_, "): ", std::strerror(errno));
  }
  if (::lseek(fd_, 0, SEEK_SET) < 0) {
    return Status::IOError("lseek(", path_, "): ", std::strerror(errno));
  }
  bytes_ = 0;
  if (policy_ != FsyncPolicy::kNever) {
    WEBER_RETURN_NOT_OK(SyncFd(fd_, path_));
    dirty_ = false;
    ++syncs_;
  }
  return Status::OK();
}

uint64_t WalWriter::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

long long WalWriter::appends() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appends_;
}

long long WalWriter::syncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return syncs_;
}

Result<WalReplayResult> ReplayWal(
    const std::string& path,
    const std::function<Status(std::string_view payload)>& fn) {
  WalReplayResult result;
  if (!FileExists(path)) {
    return result;
  }
  WEBER_ASSIGN_OR_RETURN(const std::string contents, ReadFileToString(path));

  size_t offset = 0;
  while (offset < contents.size()) {
    const size_t remaining = contents.size() - offset;
    if (remaining < kRecordHeaderBytes) {
      result.torn_tail = true;
      result.detail = "file ends inside a record header at offset " +
                      std::to_string(offset);
      break;
    }
    const uint32_t len = GetU32(contents.data() + offset);
    const uint32_t stored_crc = GetU32(contents.data() + offset + 4);
    if (static_cast<uint64_t>(len) > remaining - kRecordHeaderBytes) {
      // Either the append was torn mid-payload or the length header itself
      // is corrupt; both leave the tail unusable. A flipped length bit that
      // still fits in the file is caught by the CRC below.
      result.torn_tail = true;
      result.detail = "record at offset " + std::to_string(offset) +
                      " declares " + std::to_string(len) +
                      " bytes but only " +
                      std::to_string(remaining - kRecordHeaderBytes) +
                      " remain";
      break;
    }
    const std::string_view payload(contents.data() + offset +
                                       kRecordHeaderBytes,
                                   len);
    if (Crc32c(payload.data(), payload.size()) != stored_crc) {
      result.corrupt = true;
      result.detail = "checksum mismatch on record at offset " +
                      std::to_string(offset);
      break;
    }
    WEBER_RETURN_NOT_OK(faults::MaybeFail("serve.wal.replay"));
    WEBER_RETURN_NOT_OK(fn(payload));
    ++result.records;
    offset += kRecordHeaderBytes + len;
    result.valid_bytes = offset;
  }
  return result;
}

}  // namespace durability
}  // namespace weber

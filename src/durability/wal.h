// Per-shard write-ahead log for weber::serve (see DESIGN.md, "Durability &
// recovery").
//
// On-disk format: a flat sequence of length-prefixed, checksummed records
//
//   [payload_len u32 LE][crc32c(payload) u32 LE][payload bytes]
//
// with no file header, so the empty file is a valid empty log. The write
// path appends a record *before* the in-memory mutation it describes; a
// record is considered durable once the append (and, per FsyncPolicy, the
// fsync) returned OK. Replay walks the file front to back and stops at the
// first record that does not verify:
//
//   * torn tail — the file ends inside a header or payload (the classic
//     crash-mid-append shape). The valid prefix is kept and the tail is
//     truncated away before new appends.
//   * corruption — the stored CRC32C does not match the payload (bit flip,
//     including flips in the length header, which misdirect the CRC check).
//     Replay stops at the last valid prefix and reports it.
//
// Fault points (weber::faults): `serve.wal.append` fails the append before
// any bytes are written, `serve.wal.fsync` fails the fsync after the bytes
// are written, `serve.wal.replay` fails recovery per record.
//
// WalWriter is internally synchronized (one mutex around fd operations):
// the serving layer appends under its shard lock but calls Sync() from
// batch-flush and shutdown paths outside it.

#ifndef WEBER_DURABILITY_WAL_H_
#define WEBER_DURABILITY_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace weber {
namespace durability {

/// When appended records reach the disk.
enum class FsyncPolicy : int {
  kNever = 0,   ///< never fsync; page cache only (benchmarks, tests)
  kBatch = 1,   ///< fsync at group boundaries (micro-batch flush, snapshot
                ///< publication, shutdown) — the group-commit default
  kAlways = 2,  ///< fsync after every append; an acked write is durable
};

Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name);
const char* FsyncPolicyName(FsyncPolicy policy);

/// One logical operation in a shard's log.
struct WalRecord {
  enum class Type : uint8_t {
    kAssign = 1,             ///< document acknowledged into the live partition
    kAdoptPartition = 2,     ///< live partition replaced by a compaction result
    kSnapshotPublished = 3,  ///< snapshot file `version` became durable
  };

  Type type = Type::kAssign;
  /// kAssign: canonical block document id.
  int32_t doc = -1;
  /// kAdoptPartition / kSnapshotPublished: snapshot version.
  uint64_t version = 0;
  /// kAdoptPartition: cluster label per arrival position.
  std::vector<int32_t> labels;

  std::string Encode() const;
  static Result<WalRecord> Decode(std::string_view payload);

  static WalRecord Assign(int32_t doc);
  static WalRecord AdoptPartition(uint64_t version,
                                  std::vector<int32_t> labels);
  static WalRecord SnapshotPublished(uint64_t version);
};

/// Append-only writer over one log file. Open() positions at
/// `valid_length` — the prefix replay verified — truncating any torn or
/// corrupt tail beyond it.
class WalWriter {
 public:
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 FsyncPolicy policy,
                                                 uint64_t valid_length);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one checksummed record; fsyncs when the policy is kAlways.
  Status Append(std::string_view payload);

  /// Forces appended records to disk (no-op under kNever).
  Status Sync();

  /// Restarts the log as empty (after a snapshot made its contents
  /// redundant). Durable before return when the policy is not kNever.
  Status Restart();

  uint64_t bytes() const;
  long long appends() const;
  long long syncs() const;

 private:
  WalWriter(std::string path, FsyncPolicy policy, int fd, uint64_t bytes)
      : path_(std::move(path)), policy_(policy), fd_(fd), bytes_(bytes) {}

  Status SyncLocked();

  const std::string path_;
  const FsyncPolicy policy_;

  mutable std::mutex mu_;
  int fd_ = -1;
  uint64_t bytes_ = 0;
  bool dirty_ = false;
  long long appends_ = 0;
  long long syncs_ = 0;
};

struct WalReplayResult {
  /// Records that verified and were delivered to the callback.
  long long records = 0;
  /// Length of the verified prefix; the writer truncates to this.
  uint64_t valid_bytes = 0;
  /// The file ended mid-record (crash during append).
  bool torn_tail = false;
  /// A record failed its checksum; replay stopped at the valid prefix.
  bool corrupt = false;
  std::string detail;
};

/// Replays every valid record through `fn` in log order. A missing file is
/// an empty log. A non-OK status from `fn` (including the armed
/// `serve.wal.replay` fault, which is checked before each delivery) aborts
/// the replay and is returned as-is.
Result<WalReplayResult> ReplayWal(
    const std::string& path,
    const std::function<Status(std::string_view payload)>& fn);

}  // namespace durability
}  // namespace weber

#endif  // WEBER_DURABILITY_WAL_H_

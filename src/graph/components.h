// Connected components / transitive closure over decision graphs.

#ifndef WEBER_GRAPH_COMPONENTS_H_
#define WEBER_GRAPH_COMPONENTS_H_

#include <utility>
#include <vector>

#include "graph/clustering.h"
#include "graph/pair_matrix.h"

namespace weber {
namespace graph {

/// An undirected decision graph over n nodes: a boolean per pair ("these two
/// pages are the same person").
using DecisionGraph = PairMatrix<char>;

/// Connected components of an explicit edge list over n nodes.
Clustering ConnectedComponents(int n, const std::vector<std::pair<int, int>>& edges);

/// Connected components of a decision graph, i.e. the transitive closure
/// clustering the paper applies as its final step (Section IV-C).
Clustering TransitiveClosure(const DecisionGraph& g);

/// Counts the edges set in a decision graph.
long long CountEdges(const DecisionGraph& g);

}  // namespace graph
}  // namespace weber

#endif  // WEBER_GRAPH_COMPONENTS_H_

#include "graph/clustering.h"

#include <cstddef>
#include <unordered_map>

namespace weber {
namespace graph {

Clustering Clustering::FromLabels(const std::vector<int>& labels) {
  Clustering c;
  c.labels_.resize(labels.size());
  std::unordered_map<int, int> canonical;
  for (size_t i = 0; i < labels.size(); ++i) {
    auto [it, inserted] =
        canonical.emplace(labels[i], static_cast<int>(canonical.size()));
    c.labels_[i] = it->second;
  }
  c.num_clusters_ = static_cast<int>(canonical.size());
  return c;
}

Clustering Clustering::Singletons(int n) {
  Clustering c;
  c.labels_.resize(n);
  for (int i = 0; i < n; ++i) c.labels_[i] = i;
  c.num_clusters_ = n;
  return c;
}

Clustering Clustering::OneCluster(int n) {
  Clustering c;
  c.labels_.assign(n, 0);
  c.num_clusters_ = n > 0 ? 1 : 0;
  return c;
}

std::vector<std::vector<int>> Clustering::Groups() const {
  std::vector<std::vector<int>> groups(num_clusters_);
  for (int i = 0; i < num_items(); ++i) groups[labels_[i]].push_back(i);
  return groups;
}

long long Clustering::NumIntraPairs() const {
  std::vector<long long> sizes(num_clusters_, 0);
  for (int label : labels_) sizes[label] += 1;
  long long pairs = 0;
  for (long long s : sizes) pairs += s * (s - 1) / 2;
  return pairs;
}

}  // namespace graph
}  // namespace weber

// Disjoint-set forest with path compression and union by size.

#ifndef WEBER_GRAPH_UNION_FIND_H_
#define WEBER_GRAPH_UNION_FIND_H_

#include <numeric>
#include <vector>

namespace weber {
namespace graph {

/// Classic union-find over n elements (0..n-1).
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  /// Representative of x's set (with path compression).
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of a and b; returns true if they were distinct.
  bool Union(int a, int b) {
    int ra = Find(a);
    int rb = Find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    return true;
  }

  bool Connected(int a, int b) { return Find(a) == Find(b); }

  /// Size of x's set.
  int SetSize(int x) { return size_[Find(x)]; }

  int num_elements() const { return static_cast<int>(parent_.size()); }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
};

}  // namespace graph
}  // namespace weber

#endif  // WEBER_GRAPH_UNION_FIND_H_

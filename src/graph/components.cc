#include "graph/components.h"

#include "graph/union_find.h"

namespace weber {
namespace graph {

Clustering ConnectedComponents(
    int n, const std::vector<std::pair<int, int>>& edges) {
  UnionFind uf(n);
  for (const auto& [a, b] : edges) uf.Union(a, b);
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) labels[i] = uf.Find(i);
  return Clustering::FromLabels(labels);
}

Clustering TransitiveClosure(const DecisionGraph& g) {
  const int n = g.size();
  UnionFind uf(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (g.Get(i, j)) uf.Union(i, j);
    }
  }
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) labels[i] = uf.Find(i);
  return Clustering::FromLabels(labels);
}

long long CountEdges(const DecisionGraph& g) {
  long long count = 0;
  for (char v : g.data()) count += (v != 0);
  return count;
}

}  // namespace graph
}  // namespace weber

#include "graph/correlation_clustering.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <vector>

namespace weber {
namespace graph {

namespace {

/// One pass of CC-Pivot: repeatedly pick a random unclustered pivot and
/// absorb its positive unclustered neighbours.
std::vector<int> PivotPass(const SimilarityMatrix& p, double threshold,
                           Rng* rng) {
  const int n = p.size();
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  rng->Shuffle(&order);
  std::vector<int> labels(n, -1);
  int next_label = 0;
  for (int pivot : order) {
    if (labels[pivot] != -1) continue;
    labels[pivot] = next_label;
    for (int j = 0; j < n; ++j) {
      if (labels[j] == -1 && p.Get(pivot, j) > threshold) {
        labels[j] = next_label;
      }
    }
    ++next_label;
  }
  return labels;
}

/// Greedy best-move local search: for each node, the gain of moving it to
/// each existing cluster (or a fresh singleton) is evaluated; the best
/// strictly-improving move is applied. Runs until a round makes no move or
/// the round budget is exhausted.
void LocalSearch(const SimilarityMatrix& p, double threshold, int rounds,
                 std::vector<int>* labels) {
  const int n = p.size();
  for (int round = 0; round < rounds; ++round) {
    bool moved = false;
    for (int v = 0; v < n; ++v) {
      // Affinity of v toward each cluster: sum over members u of
      // (p(v,u) - threshold). Moving v to the cluster with the highest
      // positive affinity minimizes v's disagreement contribution.
      std::unordered_map<int, double> affinity;
      for (int u = 0; u < n; ++u) {
        if (u == v) continue;
        affinity[(*labels)[u]] += p.Get(v, u) - threshold;
      }
      int best_cluster = -1;  // -1 = fresh singleton, affinity 0
      double best_affinity = 0.0;
      for (const auto& [cluster, a] : affinity) {
        if (a > best_affinity + 1e-12 ||
            (a >= best_affinity - 1e-12 && cluster == (*labels)[v])) {
          best_affinity = a;
          best_cluster = cluster;
        }
      }
      int target = best_cluster;
      if (target == -1) {
        // Best move is a fresh singleton. If v is already alone in its
        // cluster (no other node shares its label), that is a no-op.
        if (affinity.find((*labels)[v]) == affinity.end()) continue;
        target = n + v;  // a label not currently in use
      }
      if (target != (*labels)[v]) {
        (*labels)[v] = target;
        moved = true;
      }
    }
    if (!moved) break;
  }
}

}  // namespace

double CorrelationCost(const SimilarityMatrix& probabilities,
                       const Clustering& clustering,
                       double positive_threshold) {
  const int n = probabilities.size();
  double cost = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double p = probabilities.Get(i, j);
      const bool together = clustering.SameCluster(i, j);
      const bool positive = p > positive_threshold;
      if (together != positive) cost += std::abs(p - positive_threshold);
    }
  }
  return cost;
}

Clustering CorrelationClustering(const SimilarityMatrix& probabilities,
                                 const CorrelationClusteringOptions& options) {
  const int n = probabilities.size();
  if (n == 0) return Clustering::FromLabels({});
  Rng rng(options.seed);

  Clustering best = Clustering::Singletons(n);
  double best_cost = std::numeric_limits<double>::infinity();
  const int restarts = std::max(1, options.pivot_restarts);
  for (int r = 0; r < restarts; ++r) {
    std::vector<int> labels =
        PivotPass(probabilities, options.positive_threshold, &rng);
    LocalSearch(probabilities, options.positive_threshold,
                options.local_search_rounds, &labels);
    Clustering c = Clustering::FromLabels(labels);
    double cost = CorrelationCost(probabilities, c, options.positive_threshold);
    if (cost < best_cost) {
      best_cost = cost;
      best = std::move(c);
    }
  }
  return best;
}

}  // namespace graph
}  // namespace weber

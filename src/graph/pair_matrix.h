// PairMatrix: dense symmetric matrix over item pairs. Blocks in Web people
// search hold at most a few hundred pages, so a dense representation of the
// complete weighted graph G_w^{fi} (Section IV-C) is both simplest and
// fastest.

#ifndef WEBER_GRAPH_PAIR_MATRIX_H_
#define WEBER_GRAPH_PAIR_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace weber {
namespace graph {

/// Symmetric n x n matrix storing the strict upper triangle; the diagonal is
/// implicitly `diagonal_value` (1.0 for similarity matrices).
template <typename T>
class PairMatrix {
 public:
  PairMatrix() = default;

  explicit PairMatrix(int n, T init = T(), T diagonal_value = T(1))
      : n_(n),
        diagonal_(diagonal_value),
        data_(static_cast<size_t>(n) * (n - 1) / 2, init) {
    assert(n >= 0);
  }

  int size() const { return n_; }

  /// Number of stored (unordered, off-diagonal) pairs.
  size_t num_pairs() const { return data_.size(); }

  T Get(int i, int j) const {
    if (i == j) return diagonal_;
    return data_[Index(i, j)];
  }

  void Set(int i, int j, T value) {
    assert(i != j);
    data_[Index(i, j)] = value;
  }

  /// Raw pair storage, ordered by Index(i, j): pair (i, j), i < j, lives at
  /// offset i*n - i*(i+1)/2 + (j - i - 1).
  const std::vector<T>& data() const { return data_; }
  std::vector<T>& data() { return data_; }

  /// Linear offset of the unordered pair {i, j}, i != j.
  size_t Index(int i, int j) const {
    assert(i != j && i >= 0 && j >= 0 && i < n_ && j < n_);
    if (i > j) std::swap(i, j);
    return static_cast<size_t>(i) * n_ - static_cast<size_t>(i) * (i + 1) / 2 +
           (j - i - 1);
  }

 private:
  int n_ = 0;
  T diagonal_ = T(1);
  std::vector<T> data_;
};

/// Similarity / link-probability matrices.
using SimilarityMatrix = PairMatrix<double>;

}  // namespace graph
}  // namespace weber

#endif  // WEBER_GRAPH_PAIR_MATRIX_H_

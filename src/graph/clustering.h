// Clustering: a partition of n items, the output type of entity resolution
// and the input type of the evaluation metrics.

#ifndef WEBER_GRAPH_CLUSTERING_H_
#define WEBER_GRAPH_CLUSTERING_H_

#include <vector>

namespace weber {
namespace graph {

/// Partition of items 0..n-1 into clusters, stored as a label per item.
/// Labels are canonicalized to 0..k-1 in order of first appearance.
class Clustering {
 public:
  Clustering() = default;

  /// Builds from arbitrary integer labels (canonicalized).
  static Clustering FromLabels(const std::vector<int>& labels);

  /// The all-singletons partition of n items.
  static Clustering Singletons(int n);

  /// The single-cluster partition of n items.
  static Clustering OneCluster(int n);

  int num_items() const { return static_cast<int>(labels_.size()); }
  int num_clusters() const { return num_clusters_; }

  /// Canonical label of an item.
  int label(int item) const { return labels_[item]; }

  const std::vector<int>& labels() const { return labels_; }

  /// Items grouped by cluster, clusters ordered by canonical label, items
  /// ascending within each cluster.
  std::vector<std::vector<int>> Groups() const;

  /// True iff items a and b share a cluster.
  bool SameCluster(int a, int b) const { return labels_[a] == labels_[b]; }

  /// Number of unordered co-clustered pairs.
  long long NumIntraPairs() const;

  bool operator==(const Clustering& other) const {
    return labels_ == other.labels_;
  }

 private:
  std::vector<int> labels_;
  int num_clusters_ = 0;
};

}  // namespace graph
}  // namespace weber

#endif  // WEBER_GRAPH_CLUSTERING_H_

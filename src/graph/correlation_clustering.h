// Correlation clustering (Bansal, Blum, Chawla, Machine Learning 2004) —
// the alternative final clustering step the paper experimented with
// (Section IV-C). Minimizes disagreements: a "+" pair split across clusters
// or a "-" pair kept together each costs its confidence weight.

#ifndef WEBER_GRAPH_CORRELATION_CLUSTERING_H_
#define WEBER_GRAPH_CORRELATION_CLUSTERING_H_

#include "common/random.h"
#include "graph/clustering.h"
#include "graph/pair_matrix.h"

namespace weber {
namespace graph {

struct CorrelationClusteringOptions {
  /// Number of random-pivot restarts; the lowest-cost run wins.
  int pivot_restarts = 8;
  /// Rounds of best-move local search after pivoting (0 disables).
  int local_search_rounds = 4;
  /// Link probabilities above this are "+" edges, below are "-" edges; the
  /// margin |p - 0.5| is the edge confidence weight.
  double positive_threshold = 0.5;
  uint64_t seed = 0xC0FFEEULL;
};

/// Disagreement cost of a clustering against link probabilities: for each
/// pair, cost |p - threshold| is paid when the clustering contradicts the
/// edge sign.
double CorrelationCost(const SimilarityMatrix& probabilities,
                       const Clustering& clustering,
                       double positive_threshold = 0.5);

/// Approximate minimum-disagreement clustering via randomized Pivot
/// (CC-Pivot, 3-approximation in expectation on unweighted graphs) plus
/// greedy single-node move local search.
Clustering CorrelationClustering(const SimilarityMatrix& probabilities,
                                 const CorrelationClusteringOptions& options = {});

}  // namespace graph
}  // namespace weber

#endif  // WEBER_GRAPH_CORRELATION_CLUSTERING_H_

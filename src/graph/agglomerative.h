// Hierarchical agglomerative clustering over a pairwise similarity /
// link-probability matrix — one of the "several other clustering
// techniques" the paper experimented with for the final step of Algorithm 1
// (Section IV-C), and the classic alternative to transitive closure: it
// stops merging when no remaining pair of clusters is similar enough,
// instead of chaining through weak links.

#ifndef WEBER_GRAPH_AGGLOMERATIVE_H_
#define WEBER_GRAPH_AGGLOMERATIVE_H_

#include <string_view>

#include "graph/clustering.h"
#include "graph/pair_matrix.h"

namespace weber {
namespace graph {

/// How the similarity of two clusters is derived from item similarities.
enum class Linkage : int {
  kSingle = 0,    ///< max over cross pairs (chains like transitive closure)
  kComplete = 1,  ///< min over cross pairs (most conservative)
  kAverage = 2,   ///< mean over cross pairs (UPGMA)
};

std::string_view LinkageToString(Linkage linkage);

struct AgglomerativeOptions {
  Linkage linkage = Linkage::kAverage;
  /// Merging stops when the best cluster-pair similarity drops below this.
  double stop_threshold = 0.5;
};

/// Bottom-up clustering: start from singletons, repeatedly merge the most
/// similar pair of clusters until the best similarity falls below the stop
/// threshold. O(n^3) time, O(n^2) space — ample for Web-people-search
/// blocks (n <= a few hundred).
Clustering AgglomerativeClustering(const SimilarityMatrix& similarities,
                                   const AgglomerativeOptions& options = {});

}  // namespace graph
}  // namespace weber

#endif  // WEBER_GRAPH_AGGLOMERATIVE_H_

#include "graph/agglomerative.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace weber {
namespace graph {

std::string_view LinkageToString(Linkage linkage) {
  switch (linkage) {
    case Linkage::kSingle:
      return "single";
    case Linkage::kComplete:
      return "complete";
    case Linkage::kAverage:
      return "average";
  }
  return "unknown";
}

namespace {

/// Lance-Williams style cluster-similarity update for the three linkages,
/// maintained on a dense cluster-by-cluster matrix with cluster sizes.
double Combine(Linkage linkage, double sim_a, double sim_b, int size_a,
               int size_b) {
  switch (linkage) {
    case Linkage::kSingle:
      return std::max(sim_a, sim_b);
    case Linkage::kComplete:
      return std::min(sim_a, sim_b);
    case Linkage::kAverage:
      return (sim_a * size_a + sim_b * size_b) /
             static_cast<double>(size_a + size_b);
  }
  return 0.0;
}

}  // namespace

Clustering AgglomerativeClustering(const SimilarityMatrix& similarities,
                                   const AgglomerativeOptions& options) {
  const int n = similarities.size();
  if (n == 0) return Clustering::FromLabels({});
  if (n == 1) return Clustering::Singletons(1);

  // Active cluster list: each active cluster has a representative slot in a
  // dense similarity table; merged clusters are deactivated.
  std::vector<std::vector<double>> sim(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) sim[i][j] = similarities.Get(i, j);
    }
  }
  std::vector<bool> active(n, true);
  std::vector<int> size(n, 1);
  std::vector<int> member_of(n);
  for (int i = 0; i < n; ++i) member_of[i] = i;

  for (int round = 0; round < n - 1; ++round) {
    // Find the best active pair.
    double best = -std::numeric_limits<double>::infinity();
    int ba = -1, bb = -1;
    for (int a = 0; a < n; ++a) {
      if (!active[a]) continue;
      for (int b = a + 1; b < n; ++b) {
        if (!active[b]) continue;
        if (sim[a][b] > best) {
          best = sim[a][b];
          ba = a;
          bb = b;
        }
      }
    }
    if (ba < 0 || best < options.stop_threshold) break;

    // Merge bb into ba.
    for (int c = 0; c < n; ++c) {
      if (!active[c] || c == ba || c == bb) continue;
      sim[ba][c] = sim[c][ba] =
          Combine(options.linkage, sim[ba][c], sim[bb][c], size[ba], size[bb]);
    }
    size[ba] += size[bb];
    active[bb] = false;
    for (int i = 0; i < n; ++i) {
      if (member_of[i] == bb) member_of[i] = ba;
    }
  }
  return Clustering::FromLabels(member_of);
}

}  // namespace graph
}  // namespace weber

#!/usr/bin/env bash
# Tier-1 check: configure, build, and run the test suite in a normal
# build, then again with AddressSanitizer + UBSan, then run the
# concurrency-heavy serving/executor tests under ThreadSanitizer
# (all via WEBER_SANITIZE).
#
# Usage: scripts/check.sh [--normal-only|--sanitize-only|--tsan-only]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
MODE="${1:-all}"

# The concurrent subsystems exercised under TSan: the serving layer
# (service, server, cache, batcher), the shared executor pool, and the
# incremental resolver the serving hot path drives.
TSAN_FILTER='ResolutionService|LineServer|SimilarityCache|Batcher|Collector|Executor|ParallelFor|Incremental'

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
}

if [[ "$MODE" != "--sanitize-only" && "$MODE" != "--tsan-only" ]]; then
  echo "==> normal build"
  run_suite build
  ctest --test-dir build --output-on-failure -j "$JOBS"
fi

if [[ "$MODE" != "--normal-only" && "$MODE" != "--tsan-only" ]]; then
  echo "==> sanitized build (address;undefined)"
  run_suite build-asan -DWEBER_SANITIZE="address;undefined"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

if [[ "$MODE" != "--normal-only" && "$MODE" != "--sanitize-only" ]]; then
  echo "==> thread-sanitized build (serve + executor tests)"
  run_suite build-tsan -DWEBER_SANITIZE=thread
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
      -R "$TSAN_FILTER"
fi

echo "==> all checks passed"

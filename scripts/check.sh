#!/usr/bin/env bash
# Tier-1 check: configure, build, and run the test suite in a normal
# build, then again with AddressSanitizer + UBSan (WEBER_SANITIZE).
#
# Usage: scripts/check.sh [--normal-only|--sanitize-only]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
MODE="${1:-all}"

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

if [[ "$MODE" != "--sanitize-only" ]]; then
  echo "==> normal build"
  run_suite build
fi

if [[ "$MODE" != "--normal-only" ]]; then
  echo "==> sanitized build (address;undefined)"
  run_suite build-asan -DWEBER_SANITIZE="address;undefined"
fi

echo "==> all checks passed"

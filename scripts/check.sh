#!/usr/bin/env bash
# Tier-1 check: configure, build, and run the test suite in a normal
# build, then again with AddressSanitizer + UBSan, then run the
# concurrency-heavy serving/executor tests under ThreadSanitizer
# (all via WEBER_SANITIZE).
#
# Usage: scripts/check.sh
#          [--normal-only|--sanitize-only|--tsan-only|--crash-only|
#           --overload-only|--obs-only|--router-only|--match-only|
#           --migrate-only|--rebalance-only|--hotpath-only]
#
# --crash-only: the durability gauntlet under ASan/UBSan — the WAL /
# snapshot / recovery unit tests plus repeated seeded SIGKILL-and-recover
# cycles through weber_crashtest.
#
# --overload-only: the overload-protection suite under ASan/UBSan — the
# deadline/breaker/admission unit tests plus the serve_overload_smoke
# latency-chaos storm (baseline -> open-loop overload -> recovery).
#
# --obs-only: the observability suite under ASan/UBSan — metrics registry,
# trace spans, the stats/metrics schema tests, and the serve CLI smoke
# that exercises the metrics verb end to end.
#
# --match-only: the clean-clean matching suite under ASan/UBSan — the
# bipartite matchers, two-collection generator, matching metrics, the
# `match` serve-verb tests, the stdio smoke, and a matcher-race run
# through the shipped binary.
#
# --migrate-only: the live-migration suite under ASan/UBSan — the
# export/import framing and service tests, the route-override router
# tests, and 3 seeded runs of the migration drill (SIGKILL the source
# mid-copy and mid-flip, assert rollback/completion, zero acked-write
# loss, and dump byte-identity through the router).
#
# --hotpath-only: the compiled hot path under ASan/UBSan — the kernel
# bit-equality / decision-fuzz / end-to-end equivalence tests (which force
# both the scalar and, when available, the AVX2 kernels internally), the
# vector-similarity regression tests for the numeric edge cases the batch
# audit flushed out, the compiled serve-match test, and a smoke run of the
# hotpath benchmark asserting it emits well-formed JSON.
#
# --rebalance-only: the fleet self-healing suite under ASan/UBSan — the
# rebalance/drain/state-file/promotion router tests, the admin-verb race
# test, and 3 seeded runs of the self-healing drill (SIGKILL a rebalance
# source mid-export, the router mid-plan, and a block's owner for good;
# assert rollback, state-file recovery, standby promotion, and zero
# acked-write loss).
#
# --router-only: the fleet-routing suite under ASan/UBSan — the
# health-machine / route-order / failover unit tests, the shared response
# parser tests, and the 3-backend kill drill (SIGKILL a backend mid-storm
# through weber::router, assert zero acked-write loss and reads served
# throughout).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
MODE="${1:-all}"

# The concurrent subsystems exercised under TSan: the serving layer
# (service, server, cache, batcher), the shared executor pool, the
# incremental resolver the serving hot path drives, and the observability
# primitives (striped counters, trace ring buffer, registry export).
TSAN_FILTER='ResolutionService|LineServer|SimilarityCache|Batcher|Collector|Executor|ParallelFor|Incremental|RequestDeadline|CircuitBreaker|BreakerStateName|ServerOverload|CounterTest|MetricsRegistry|TraceCollector|ScopedSpan|RequestId|StatsSchema|RouterEndToEnd|BackendHealth|ResolutionServiceMatch|LineServerMatch|MigrateService|MigrateWire|RebalanceService|ConcurrentAdmin|CompiledPath'

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
}

if [[ "$MODE" == "--crash-only" ]]; then
  echo "==> crash-recovery gauntlet (address;undefined)"
  run_suite build-asan -DWEBER_SANITIZE="address;undefined"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -R 'Crc32c|Wal|SnapshotFile|ShardLog|DurableService|serve_crash_smoke|serve_sigterm_smoke'
  scratch="build-asan/crash_cycles"
  rm -rf "$scratch"
  mkdir -p "$scratch"
  ./build-asan/tools/weber generate --preset=tiny --out="$scratch"
  for seed in 1 2 3; do
    echo "==> crashtest: 20 SIGKILL/recover cycles, seed $seed"
    rm -rf "$scratch/store"
    ./build-asan/tools/weber_crashtest \
      --dataset="$scratch/dataset.txt" \
      --gazetteer="$scratch/gazetteer.txt" \
      --serve_bin=./build-asan/tools/weber_serve \
      --data_dir="$scratch/store" --cycles=20 --seed="$seed"
  done
  echo "==> crash checks passed"
  exit 0
fi

if [[ "$MODE" == "--overload-only" ]]; then
  echo "==> overload-protection suite (address;undefined)"
  run_suite build-asan -DWEBER_SANITIZE="address;undefined"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -R 'RequestDeadline|CircuitBreaker|BreakerStateName|ServerOverload|Overload|Deadline|TrySubmit|Jitter|Oversized|serve_overload_smoke'
  echo "==> overload checks passed"
  exit 0
fi

if [[ "$MODE" == "--obs-only" ]]; then
  echo "==> observability suite (address;undefined)"
  run_suite build-asan -DWEBER_SANITIZE="address;undefined"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -R 'Percentile|Summarize|LatencyReservoir|CounterTest|GaugeTest|HistogramTest|MetricsRegistry|TraceCollector|ScopedSpan|RequestId|StatsSchema|MetricsVerb|serve_cli_smoke'
  echo "==> observability checks passed"
  exit 0
fi

if [[ "$MODE" == "--match-only" ]]; then
  echo "==> clean-clean matching suite (address;undefined)"
  run_suite build-asan -DWEBER_SANITIZE="address;undefined"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -R 'ThresholdMatcher|GreedyMatcher|OptimalMatcher|SymmetricBest|Matching|MakeMatcherByName|MatchingMetrics|CleanCleanGenerator|MatchRace|MatchProtocol|ResolutionServiceMatch|LineServerMatch|Generator|Metric|serve_match_smoke'
  echo "==> matcher race smoke (shipped binary)"
  scratch="build-asan/match_race"
  rm -rf "$scratch"
  mkdir -p "$scratch"
  ./build-asan/tools/weber matchrace --preset=tiny --seed=41 \
    --json="$scratch/BENCH_matchrace.json"
  grep -q '"matchers"' "$scratch/BENCH_matchrace.json"
  echo "==> match checks passed"
  exit 0
fi

if [[ "$MODE" == "--router-only" ]]; then
  echo "==> fleet-routing suite (address;undefined)"
  run_suite build-asan -DWEBER_SANITIZE="address;undefined"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -R 'BackendHealth|ParseEndpoint|RouteOrder|RouterEndToEnd|ParseResponse|MetricsFraming|ParseDumpResponse|FormatRequest|serve_fleet_smoke'
  scratch="build-asan/fleet_drill"
  rm -rf "$scratch"
  mkdir -p "$scratch"
  ./build-asan/tools/weber generate --preset=tiny --out="$scratch"
  for seed in 1 2 3; do
    echo "==> fleet drill: 3 backends, SIGKILL + restart mid-storm, seed $seed"
    rm -rf "$scratch/store"
    ./build-asan/tools/weber_crashtest \
      --dataset="$scratch/dataset.txt" \
      --gazetteer="$scratch/gazetteer.txt" \
      --serve_bin=./build-asan/tools/weber_serve \
      --data_dir="$scratch/store" --fleet=3 --writers=4 --kill_at=0.3 \
      --seed="$seed" --out="$scratch/BENCH_fleet.json"
  done
  echo "==> router checks passed"
  exit 0
fi

if [[ "$MODE" == "--migrate-only" ]]; then
  echo "==> live-migration suite (address;undefined)"
  run_suite build-asan -DWEBER_SANITIZE="address;undefined"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -R 'ExportFrame|ExportHeader|ImportBlob|HexCodec|MigrateService|MigrateWire|RouterEndToEnd|DialTcp|LineSocket|serve_migrate_smoke'
  scratch="build-asan/migrate_drill"
  rm -rf "$scratch"
  mkdir -p "$scratch"
  ./build-asan/tools/weber generate --preset=tiny --out="$scratch"
  for seed in 1 2 3; do
    echo "==> migrate drill: SIGKILL mid-copy + mid-flip, seed $seed"
    rm -rf "$scratch/store"
    ./build-asan/tools/weber_crashtest \
      --dataset="$scratch/dataset.txt" \
      --gazetteer="$scratch/gazetteer.txt" \
      --serve_bin=./build-asan/tools/weber_serve \
      --data_dir="$scratch/store" --migrate --writers=4 \
      --seed="$seed" --out="$scratch/BENCH_migrate.json"
  done
  echo "==> migrate checks passed"
  exit 0
fi

if [[ "$MODE" == "--hotpath-only" ]]; then
  echo "==> compiled hot-path suite (address;undefined)"
  run_suite build-asan -DWEBER_SANITIZE="address;undefined"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -R 'CompiledPath|VectorSimilarity|SparseVector|SimilarityFunctions|ResolutionServiceMatch|Decision'
  echo "==> hotpath bench smoke (quick mode)"
  scratch="build-asan/hotpath_smoke"
  rm -rf "$scratch"
  mkdir -p "$scratch"
  ./build-asan/bench/hotpath --quick "$scratch/BENCH_hotpath.json"
  grep -q '"compiled_scalar_pairs_per_sec"' "$scratch/BENCH_hotpath.json"
  grep -q '"avx2_speedup"' "$scratch/BENCH_hotpath.json"
  echo "==> hotpath checks passed"
  exit 0
fi

if [[ "$MODE" == "--rebalance-only" ]]; then
  echo "==> fleet self-healing suite (address;undefined)"
  run_suite build-asan -DWEBER_SANITIZE="address;undefined"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -R 'RebalanceService|ConcurrentAdmin|RouterEndToEnd|ParseRequest|StatsSchema'
  scratch="build-asan/rebalance_drill"
  rm -rf "$scratch"
  mkdir -p "$scratch"
  ./build-asan/tools/weber generate --preset=tiny --out="$scratch"
  for seed in 1 2 3; do
    echo "==> self-healing drill: source, router, and owner kills, seed $seed"
    rm -rf "$scratch/store"
    ./build-asan/tools/weber_crashtest \
      --dataset="$scratch/dataset.txt" \
      --gazetteer="$scratch/gazetteer.txt" \
      --serve_bin=./build-asan/tools/weber_serve \
      --router_bin=./build-asan/tools/weber_router \
      --data_dir="$scratch/store" --rebalance --writers=4 \
      --seed="$seed" --out="$scratch/BENCH_rebalance.json"
  done
  echo "==> rebalance checks passed"
  exit 0
fi

if [[ "$MODE" != "--sanitize-only" && "$MODE" != "--tsan-only" ]]; then
  echo "==> normal build"
  run_suite build
  ctest --test-dir build --output-on-failure -j "$JOBS"
fi

if [[ "$MODE" != "--normal-only" && "$MODE" != "--tsan-only" ]]; then
  echo "==> sanitized build (address;undefined)"
  run_suite build-asan -DWEBER_SANITIZE="address;undefined"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

if [[ "$MODE" != "--normal-only" && "$MODE" != "--sanitize-only" ]]; then
  echo "==> thread-sanitized build (serve + executor tests)"
  run_suite build-tsan -DWEBER_SANITIZE=thread
  # scripts/tsan.supp silences the documented libstdc++ _Sp_atomic false
  # positive (atomic<shared_ptr> uses a lock bit TSan cannot see).
  TSAN_OPTIONS="halt_on_error=1 suppressions=$(pwd)/scripts/tsan.supp" \
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
      -R "$TSAN_FILTER"
fi

echo "==> all checks passed"

file(REMOVE_RECURSE
  "CMakeFiles/inspect_criteria.dir/inspect_criteria.cpp.o"
  "CMakeFiles/inspect_criteria.dir/inspect_criteria.cpp.o.d"
  "inspect_criteria"
  "inspect_criteria.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_criteria.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

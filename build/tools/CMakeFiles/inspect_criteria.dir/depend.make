# Empty dependencies file for inspect_criteria.
# This may be replaced when dependencies are built.

# Empty dependencies file for inspect_functions.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/weber_cli.dir/weber_cli.cpp.o"
  "CMakeFiles/weber_cli.dir/weber_cli.cpp.o.d"
  "weber"
  "weber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weber_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for weber_cli.
# This may be replaced when dependencies are built.

# Empty dependencies file for weber_eval.
# This may be replaced when dependencies are built.

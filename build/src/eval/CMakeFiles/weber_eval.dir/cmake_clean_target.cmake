file(REMOVE_RECURSE
  "libweber_eval.a"
)

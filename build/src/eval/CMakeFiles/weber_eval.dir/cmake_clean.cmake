file(REMOVE_RECURSE
  "CMakeFiles/weber_eval.dir/calibration.cc.o"
  "CMakeFiles/weber_eval.dir/calibration.cc.o.d"
  "CMakeFiles/weber_eval.dir/metrics.cc.o"
  "CMakeFiles/weber_eval.dir/metrics.cc.o.d"
  "CMakeFiles/weber_eval.dir/significance.cc.o"
  "CMakeFiles/weber_eval.dir/significance.cc.o.d"
  "libweber_eval.a"
  "libweber_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weber_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/weber_extract.dir/aho_corasick.cc.o"
  "CMakeFiles/weber_extract.dir/aho_corasick.cc.o.d"
  "CMakeFiles/weber_extract.dir/feature_extractor.cc.o"
  "CMakeFiles/weber_extract.dir/feature_extractor.cc.o.d"
  "CMakeFiles/weber_extract.dir/gazetteer.cc.o"
  "CMakeFiles/weber_extract.dir/gazetteer.cc.o.d"
  "CMakeFiles/weber_extract.dir/url.cc.o"
  "CMakeFiles/weber_extract.dir/url.cc.o.d"
  "libweber_extract.a"
  "libweber_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weber_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libweber_extract.a"
)

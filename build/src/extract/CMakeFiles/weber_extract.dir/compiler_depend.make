# Empty compiler generated dependencies file for weber_extract.
# This may be replaced when dependencies are built.

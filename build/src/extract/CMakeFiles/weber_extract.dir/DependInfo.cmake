
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extract/aho_corasick.cc" "src/extract/CMakeFiles/weber_extract.dir/aho_corasick.cc.o" "gcc" "src/extract/CMakeFiles/weber_extract.dir/aho_corasick.cc.o.d"
  "/root/repo/src/extract/feature_extractor.cc" "src/extract/CMakeFiles/weber_extract.dir/feature_extractor.cc.o" "gcc" "src/extract/CMakeFiles/weber_extract.dir/feature_extractor.cc.o.d"
  "/root/repo/src/extract/gazetteer.cc" "src/extract/CMakeFiles/weber_extract.dir/gazetteer.cc.o" "gcc" "src/extract/CMakeFiles/weber_extract.dir/gazetteer.cc.o.d"
  "/root/repo/src/extract/url.cc" "src/extract/CMakeFiles/weber_extract.dir/url.cc.o" "gcc" "src/extract/CMakeFiles/weber_extract.dir/url.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/weber_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/weber_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/weber_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libweber_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/weber_common.dir/flags.cc.o"
  "CMakeFiles/weber_common.dir/flags.cc.o.d"
  "CMakeFiles/weber_common.dir/json_writer.cc.o"
  "CMakeFiles/weber_common.dir/json_writer.cc.o.d"
  "CMakeFiles/weber_common.dir/logging.cc.o"
  "CMakeFiles/weber_common.dir/logging.cc.o.d"
  "CMakeFiles/weber_common.dir/random.cc.o"
  "CMakeFiles/weber_common.dir/random.cc.o.d"
  "CMakeFiles/weber_common.dir/status.cc.o"
  "CMakeFiles/weber_common.dir/status.cc.o.d"
  "CMakeFiles/weber_common.dir/string_util.cc.o"
  "CMakeFiles/weber_common.dir/string_util.cc.o.d"
  "CMakeFiles/weber_common.dir/table_printer.cc.o"
  "CMakeFiles/weber_common.dir/table_printer.cc.o.d"
  "libweber_common.a"
  "libweber_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weber_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

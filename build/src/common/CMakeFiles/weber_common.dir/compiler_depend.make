# Empty compiler generated dependencies file for weber_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/weber_graph.dir/agglomerative.cc.o"
  "CMakeFiles/weber_graph.dir/agglomerative.cc.o.d"
  "CMakeFiles/weber_graph.dir/clustering.cc.o"
  "CMakeFiles/weber_graph.dir/clustering.cc.o.d"
  "CMakeFiles/weber_graph.dir/components.cc.o"
  "CMakeFiles/weber_graph.dir/components.cc.o.d"
  "CMakeFiles/weber_graph.dir/correlation_clustering.cc.o"
  "CMakeFiles/weber_graph.dir/correlation_clustering.cc.o.d"
  "libweber_graph.a"
  "libweber_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weber_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libweber_graph.a"
)

# Empty dependencies file for weber_graph.
# This may be replaced when dependencies are built.

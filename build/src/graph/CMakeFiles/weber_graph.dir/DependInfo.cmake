
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/agglomerative.cc" "src/graph/CMakeFiles/weber_graph.dir/agglomerative.cc.o" "gcc" "src/graph/CMakeFiles/weber_graph.dir/agglomerative.cc.o.d"
  "/root/repo/src/graph/clustering.cc" "src/graph/CMakeFiles/weber_graph.dir/clustering.cc.o" "gcc" "src/graph/CMakeFiles/weber_graph.dir/clustering.cc.o.d"
  "/root/repo/src/graph/components.cc" "src/graph/CMakeFiles/weber_graph.dir/components.cc.o" "gcc" "src/graph/CMakeFiles/weber_graph.dir/components.cc.o.d"
  "/root/repo/src/graph/correlation_clustering.cc" "src/graph/CMakeFiles/weber_graph.dir/correlation_clustering.cc.o" "gcc" "src/graph/CMakeFiles/weber_graph.dir/correlation_clustering.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/weber_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/weber_corpus.dir/dataset_io.cc.o"
  "CMakeFiles/weber_corpus.dir/dataset_io.cc.o.d"
  "CMakeFiles/weber_corpus.dir/generator.cc.o"
  "CMakeFiles/weber_corpus.dir/generator.cc.o.d"
  "CMakeFiles/weber_corpus.dir/presets.cc.o"
  "CMakeFiles/weber_corpus.dir/presets.cc.o.d"
  "CMakeFiles/weber_corpus.dir/resolution_io.cc.o"
  "CMakeFiles/weber_corpus.dir/resolution_io.cc.o.d"
  "CMakeFiles/weber_corpus.dir/stats.cc.o"
  "CMakeFiles/weber_corpus.dir/stats.cc.o.d"
  "CMakeFiles/weber_corpus.dir/word_factory.cc.o"
  "CMakeFiles/weber_corpus.dir/word_factory.cc.o.d"
  "libweber_corpus.a"
  "libweber_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weber_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

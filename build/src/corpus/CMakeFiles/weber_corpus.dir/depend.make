# Empty dependencies file for weber_corpus.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/dataset_io.cc" "src/corpus/CMakeFiles/weber_corpus.dir/dataset_io.cc.o" "gcc" "src/corpus/CMakeFiles/weber_corpus.dir/dataset_io.cc.o.d"
  "/root/repo/src/corpus/generator.cc" "src/corpus/CMakeFiles/weber_corpus.dir/generator.cc.o" "gcc" "src/corpus/CMakeFiles/weber_corpus.dir/generator.cc.o.d"
  "/root/repo/src/corpus/presets.cc" "src/corpus/CMakeFiles/weber_corpus.dir/presets.cc.o" "gcc" "src/corpus/CMakeFiles/weber_corpus.dir/presets.cc.o.d"
  "/root/repo/src/corpus/resolution_io.cc" "src/corpus/CMakeFiles/weber_corpus.dir/resolution_io.cc.o" "gcc" "src/corpus/CMakeFiles/weber_corpus.dir/resolution_io.cc.o.d"
  "/root/repo/src/corpus/stats.cc" "src/corpus/CMakeFiles/weber_corpus.dir/stats.cc.o" "gcc" "src/corpus/CMakeFiles/weber_corpus.dir/stats.cc.o.d"
  "/root/repo/src/corpus/word_factory.cc" "src/corpus/CMakeFiles/weber_corpus.dir/word_factory.cc.o" "gcc" "src/corpus/CMakeFiles/weber_corpus.dir/word_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/weber_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/weber_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/weber_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/weber_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/weber_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

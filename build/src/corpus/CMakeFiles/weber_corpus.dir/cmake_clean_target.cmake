file(REMOVE_RECURSE
  "libweber_corpus.a"
)

# Empty compiler generated dependencies file for weber_text.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/weber_text.dir/analyzer.cc.o"
  "CMakeFiles/weber_text.dir/analyzer.cc.o.d"
  "CMakeFiles/weber_text.dir/inverted_index.cc.o"
  "CMakeFiles/weber_text.dir/inverted_index.cc.o.d"
  "CMakeFiles/weber_text.dir/person_name.cc.o"
  "CMakeFiles/weber_text.dir/person_name.cc.o.d"
  "CMakeFiles/weber_text.dir/phonetic.cc.o"
  "CMakeFiles/weber_text.dir/phonetic.cc.o.d"
  "CMakeFiles/weber_text.dir/porter_stemmer.cc.o"
  "CMakeFiles/weber_text.dir/porter_stemmer.cc.o.d"
  "CMakeFiles/weber_text.dir/sparse_vector.cc.o"
  "CMakeFiles/weber_text.dir/sparse_vector.cc.o.d"
  "CMakeFiles/weber_text.dir/stopwords.cc.o"
  "CMakeFiles/weber_text.dir/stopwords.cc.o.d"
  "CMakeFiles/weber_text.dir/string_similarity.cc.o"
  "CMakeFiles/weber_text.dir/string_similarity.cc.o.d"
  "CMakeFiles/weber_text.dir/tfidf.cc.o"
  "CMakeFiles/weber_text.dir/tfidf.cc.o.d"
  "CMakeFiles/weber_text.dir/tokenizer.cc.o"
  "CMakeFiles/weber_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/weber_text.dir/vector_similarity.cc.o"
  "CMakeFiles/weber_text.dir/vector_similarity.cc.o.d"
  "CMakeFiles/weber_text.dir/vocabulary.cc.o"
  "CMakeFiles/weber_text.dir/vocabulary.cc.o.d"
  "libweber_text.a"
  "libweber_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weber_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

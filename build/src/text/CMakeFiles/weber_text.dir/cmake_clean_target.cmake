file(REMOVE_RECURSE
  "libweber_text.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/weber_ml.dir/entropy.cc.o"
  "CMakeFiles/weber_ml.dir/entropy.cc.o.d"
  "CMakeFiles/weber_ml.dir/isotonic.cc.o"
  "CMakeFiles/weber_ml.dir/isotonic.cc.o.d"
  "CMakeFiles/weber_ml.dir/kmeans1d.cc.o"
  "CMakeFiles/weber_ml.dir/kmeans1d.cc.o.d"
  "CMakeFiles/weber_ml.dir/region_model.cc.o"
  "CMakeFiles/weber_ml.dir/region_model.cc.o.d"
  "CMakeFiles/weber_ml.dir/splitter.cc.o"
  "CMakeFiles/weber_ml.dir/splitter.cc.o.d"
  "CMakeFiles/weber_ml.dir/threshold.cc.o"
  "CMakeFiles/weber_ml.dir/threshold.cc.o.d"
  "libweber_ml.a"
  "libweber_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weber_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libweber_ml.a"
)

# Empty dependencies file for weber_ml.
# This may be replaced when dependencies are built.

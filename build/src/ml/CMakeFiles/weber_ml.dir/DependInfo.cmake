
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/entropy.cc" "src/ml/CMakeFiles/weber_ml.dir/entropy.cc.o" "gcc" "src/ml/CMakeFiles/weber_ml.dir/entropy.cc.o.d"
  "/root/repo/src/ml/isotonic.cc" "src/ml/CMakeFiles/weber_ml.dir/isotonic.cc.o" "gcc" "src/ml/CMakeFiles/weber_ml.dir/isotonic.cc.o.d"
  "/root/repo/src/ml/kmeans1d.cc" "src/ml/CMakeFiles/weber_ml.dir/kmeans1d.cc.o" "gcc" "src/ml/CMakeFiles/weber_ml.dir/kmeans1d.cc.o.d"
  "/root/repo/src/ml/region_model.cc" "src/ml/CMakeFiles/weber_ml.dir/region_model.cc.o" "gcc" "src/ml/CMakeFiles/weber_ml.dir/region_model.cc.o.d"
  "/root/repo/src/ml/splitter.cc" "src/ml/CMakeFiles/weber_ml.dir/splitter.cc.o" "gcc" "src/ml/CMakeFiles/weber_ml.dir/splitter.cc.o.d"
  "/root/repo/src/ml/threshold.cc" "src/ml/CMakeFiles/weber_ml.dir/threshold.cc.o" "gcc" "src/ml/CMakeFiles/weber_ml.dir/threshold.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/weber_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

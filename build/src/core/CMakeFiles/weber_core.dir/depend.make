# Empty dependencies file for weber_core.
# This may be replaced when dependencies are built.

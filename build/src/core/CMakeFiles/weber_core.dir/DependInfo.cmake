
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/active_sampling.cc" "src/core/CMakeFiles/weber_core.dir/active_sampling.cc.o" "gcc" "src/core/CMakeFiles/weber_core.dir/active_sampling.cc.o.d"
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/weber_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/weber_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/blocking.cc" "src/core/CMakeFiles/weber_core.dir/blocking.cc.o" "gcc" "src/core/CMakeFiles/weber_core.dir/blocking.cc.o.d"
  "/root/repo/src/core/candidate_blocking.cc" "src/core/CMakeFiles/weber_core.dir/candidate_blocking.cc.o" "gcc" "src/core/CMakeFiles/weber_core.dir/candidate_blocking.cc.o.d"
  "/root/repo/src/core/combiner.cc" "src/core/CMakeFiles/weber_core.dir/combiner.cc.o" "gcc" "src/core/CMakeFiles/weber_core.dir/combiner.cc.o.d"
  "/root/repo/src/core/composed_functions.cc" "src/core/CMakeFiles/weber_core.dir/composed_functions.cc.o" "gcc" "src/core/CMakeFiles/weber_core.dir/composed_functions.cc.o.d"
  "/root/repo/src/core/decision.cc" "src/core/CMakeFiles/weber_core.dir/decision.cc.o" "gcc" "src/core/CMakeFiles/weber_core.dir/decision.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/weber_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/weber_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/incremental.cc" "src/core/CMakeFiles/weber_core.dir/incremental.cc.o" "gcc" "src/core/CMakeFiles/weber_core.dir/incremental.cc.o.d"
  "/root/repo/src/core/resolver.cc" "src/core/CMakeFiles/weber_core.dir/resolver.cc.o" "gcc" "src/core/CMakeFiles/weber_core.dir/resolver.cc.o.d"
  "/root/repo/src/core/standard_functions.cc" "src/core/CMakeFiles/weber_core.dir/standard_functions.cc.o" "gcc" "src/core/CMakeFiles/weber_core.dir/standard_functions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/weber_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/weber_text.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/weber_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/weber_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/weber_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/weber_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/weber_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

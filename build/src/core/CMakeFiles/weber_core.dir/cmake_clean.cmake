file(REMOVE_RECURSE
  "CMakeFiles/weber_core.dir/active_sampling.cc.o"
  "CMakeFiles/weber_core.dir/active_sampling.cc.o.d"
  "CMakeFiles/weber_core.dir/baselines.cc.o"
  "CMakeFiles/weber_core.dir/baselines.cc.o.d"
  "CMakeFiles/weber_core.dir/blocking.cc.o"
  "CMakeFiles/weber_core.dir/blocking.cc.o.d"
  "CMakeFiles/weber_core.dir/candidate_blocking.cc.o"
  "CMakeFiles/weber_core.dir/candidate_blocking.cc.o.d"
  "CMakeFiles/weber_core.dir/combiner.cc.o"
  "CMakeFiles/weber_core.dir/combiner.cc.o.d"
  "CMakeFiles/weber_core.dir/composed_functions.cc.o"
  "CMakeFiles/weber_core.dir/composed_functions.cc.o.d"
  "CMakeFiles/weber_core.dir/decision.cc.o"
  "CMakeFiles/weber_core.dir/decision.cc.o.d"
  "CMakeFiles/weber_core.dir/experiment.cc.o"
  "CMakeFiles/weber_core.dir/experiment.cc.o.d"
  "CMakeFiles/weber_core.dir/incremental.cc.o"
  "CMakeFiles/weber_core.dir/incremental.cc.o.d"
  "CMakeFiles/weber_core.dir/resolver.cc.o"
  "CMakeFiles/weber_core.dir/resolver.cc.o.d"
  "CMakeFiles/weber_core.dir/standard_functions.cc.o"
  "CMakeFiles/weber_core.dir/standard_functions.cc.o.d"
  "libweber_core.a"
  "libweber_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weber_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

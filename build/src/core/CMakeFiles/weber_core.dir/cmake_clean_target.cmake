file(REMOVE_RECURSE
  "libweber_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/kmeans1d_test.dir/kmeans1d_test.cc.o"
  "CMakeFiles/kmeans1d_test.dir/kmeans1d_test.cc.o.d"
  "kmeans1d_test"
  "kmeans1d_test.pdb"
  "kmeans1d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmeans1d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

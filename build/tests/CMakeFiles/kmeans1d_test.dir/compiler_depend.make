# Empty compiler generated dependencies file for kmeans1d_test.
# This may be replaced when dependencies are built.

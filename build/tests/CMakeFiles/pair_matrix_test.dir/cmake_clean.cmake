file(REMOVE_RECURSE
  "CMakeFiles/pair_matrix_test.dir/pair_matrix_test.cc.o"
  "CMakeFiles/pair_matrix_test.dir/pair_matrix_test.cc.o.d"
  "pair_matrix_test"
  "pair_matrix_test.pdb"
  "pair_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pair_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

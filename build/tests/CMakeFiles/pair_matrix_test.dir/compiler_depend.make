# Empty compiler generated dependencies file for pair_matrix_test.
# This may be replaced when dependencies are built.

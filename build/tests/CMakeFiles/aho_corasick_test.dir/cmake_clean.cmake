file(REMOVE_RECURSE
  "CMakeFiles/aho_corasick_test.dir/aho_corasick_test.cc.o"
  "CMakeFiles/aho_corasick_test.dir/aho_corasick_test.cc.o.d"
  "aho_corasick_test"
  "aho_corasick_test.pdb"
  "aho_corasick_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aho_corasick_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for aho_corasick_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/active_sampling_test.dir/active_sampling_test.cc.o"
  "CMakeFiles/active_sampling_test.dir/active_sampling_test.cc.o.d"
  "active_sampling_test"
  "active_sampling_test.pdb"
  "active_sampling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

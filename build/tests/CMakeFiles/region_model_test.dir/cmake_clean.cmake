file(REMOVE_RECURSE
  "CMakeFiles/region_model_test.dir/region_model_test.cc.o"
  "CMakeFiles/region_model_test.dir/region_model_test.cc.o.d"
  "region_model_test"
  "region_model_test.pdb"
  "region_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

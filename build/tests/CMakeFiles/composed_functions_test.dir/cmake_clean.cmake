file(REMOVE_RECURSE
  "CMakeFiles/composed_functions_test.dir/composed_functions_test.cc.o"
  "CMakeFiles/composed_functions_test.dir/composed_functions_test.cc.o.d"
  "composed_functions_test"
  "composed_functions_test.pdb"
  "composed_functions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composed_functions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for composed_functions_test.
# This may be replaced when dependencies are built.

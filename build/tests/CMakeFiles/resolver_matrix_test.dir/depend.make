# Empty dependencies file for resolver_matrix_test.
# This may be replaced when dependencies are built.

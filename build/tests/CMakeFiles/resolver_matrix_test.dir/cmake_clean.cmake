file(REMOVE_RECURSE
  "CMakeFiles/resolver_matrix_test.dir/resolver_matrix_test.cc.o"
  "CMakeFiles/resolver_matrix_test.dir/resolver_matrix_test.cc.o.d"
  "resolver_matrix_test"
  "resolver_matrix_test.pdb"
  "resolver_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolver_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

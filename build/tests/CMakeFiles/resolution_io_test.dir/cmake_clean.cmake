file(REMOVE_RECURSE
  "CMakeFiles/resolution_io_test.dir/resolution_io_test.cc.o"
  "CMakeFiles/resolution_io_test.dir/resolution_io_test.cc.o.d"
  "resolution_io_test"
  "resolution_io_test.pdb"
  "resolution_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolution_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/person_name_test.dir/person_name_test.cc.o"
  "CMakeFiles/person_name_test.dir/person_name_test.cc.o.d"
  "person_name_test"
  "person_name_test.pdb"
  "person_name_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/person_name_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for person_name_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/experiment_json_test.dir/experiment_json_test.cc.o"
  "CMakeFiles/experiment_json_test.dir/experiment_json_test.cc.o.d"
  "experiment_json_test"
  "experiment_json_test.pdb"
  "experiment_json_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

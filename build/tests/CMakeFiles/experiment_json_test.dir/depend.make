# Empty dependencies file for experiment_json_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/feature_extractor_test.dir/feature_extractor_test.cc.o"
  "CMakeFiles/feature_extractor_test.dir/feature_extractor_test.cc.o.d"
  "feature_extractor_test"
  "feature_extractor_test.pdb"
  "feature_extractor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_extractor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

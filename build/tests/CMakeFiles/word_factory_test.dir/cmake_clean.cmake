file(REMOVE_RECURSE
  "CMakeFiles/word_factory_test.dir/word_factory_test.cc.o"
  "CMakeFiles/word_factory_test.dir/word_factory_test.cc.o.d"
  "word_factory_test"
  "word_factory_test.pdb"
  "word_factory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word_factory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

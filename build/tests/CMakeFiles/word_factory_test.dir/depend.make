# Empty dependencies file for word_factory_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/similarity_functions_test.dir/similarity_functions_test.cc.o"
  "CMakeFiles/similarity_functions_test.dir/similarity_functions_test.cc.o.d"
  "similarity_functions_test"
  "similarity_functions_test.pdb"
  "similarity_functions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similarity_functions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for combiner_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/combiner_test.dir/combiner_test.cc.o"
  "CMakeFiles/combiner_test.dir/combiner_test.cc.o.d"
  "combiner_test"
  "combiner_test.pdb"
  "combiner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for isotonic_test.
# This may be replaced when dependencies are built.

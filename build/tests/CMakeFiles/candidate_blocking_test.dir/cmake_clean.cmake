file(REMOVE_RECURSE
  "CMakeFiles/candidate_blocking_test.dir/candidate_blocking_test.cc.o"
  "CMakeFiles/candidate_blocking_test.dir/candidate_blocking_test.cc.o.d"
  "candidate_blocking_test"
  "candidate_blocking_test.pdb"
  "candidate_blocking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candidate_blocking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for candidate_blocking_test.
# This may be replaced when dependencies are built.

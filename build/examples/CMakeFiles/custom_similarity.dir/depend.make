# Empty dependencies file for custom_similarity.
# This may be replaced when dependencies are built.

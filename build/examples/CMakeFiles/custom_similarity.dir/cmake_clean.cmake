file(REMOVE_RECURSE
  "CMakeFiles/custom_similarity.dir/custom_similarity.cpp.o"
  "CMakeFiles/custom_similarity.dir/custom_similarity.cpp.o.d"
  "custom_similarity"
  "custom_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for weps_task.
# This may be replaced when dependencies are built.

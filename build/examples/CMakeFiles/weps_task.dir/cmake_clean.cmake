file(REMOVE_RECURSE
  "CMakeFiles/weps_task.dir/weps_task.cpp.o"
  "CMakeFiles/weps_task.dir/weps_task.cpp.o.d"
  "weps_task"
  "weps_task.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weps_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

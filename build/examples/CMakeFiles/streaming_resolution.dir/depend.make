# Empty dependencies file for streaming_resolution.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/streaming_resolution.dir/streaming_resolution.cpp.o"
  "CMakeFiles/streaming_resolution.dir/streaming_resolution.cpp.o.d"
  "streaming_resolution"
  "streaming_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

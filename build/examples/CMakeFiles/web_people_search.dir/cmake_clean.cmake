file(REMOVE_RECURSE
  "CMakeFiles/web_people_search.dir/web_people_search.cpp.o"
  "CMakeFiles/web_people_search.dir/web_people_search.cpp.o.d"
  "web_people_search"
  "web_people_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_people_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for web_people_search.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/accuracy_regions.dir/accuracy_regions.cpp.o"
  "CMakeFiles/accuracy_regions.dir/accuracy_regions.cpp.o.d"
  "accuracy_regions"
  "accuracy_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

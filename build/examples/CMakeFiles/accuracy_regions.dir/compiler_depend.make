# Empty compiler generated dependencies file for accuracy_regions.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig3_weps_results.dir/fig3_weps_results.cpp.o"
  "CMakeFiles/fig3_weps_results.dir/fig3_weps_results.cpp.o.d"
  "fig3_weps_results"
  "fig3_weps_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_weps_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig3_weps_results.
# This may be replaced when dependencies are built.

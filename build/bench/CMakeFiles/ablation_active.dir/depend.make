# Empty dependencies file for ablation_active.
# This may be replaced when dependencies are built.

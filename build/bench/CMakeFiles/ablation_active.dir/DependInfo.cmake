
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_active.cpp" "bench/CMakeFiles/ablation_active.dir/ablation_active.cpp.o" "gcc" "bench/CMakeFiles/ablation_active.dir/ablation_active.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/weber_core.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/weber_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/weber_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/weber_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/weber_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/weber_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/weber_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/weber_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

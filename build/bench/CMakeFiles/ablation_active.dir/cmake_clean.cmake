file(REMOVE_RECURSE
  "CMakeFiles/ablation_active.dir/ablation_active.cpp.o"
  "CMakeFiles/ablation_active.dir/ablation_active.cpp.o.d"
  "ablation_active"
  "ablation_active.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_active.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for extended_functions.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/extended_functions.dir/extended_functions.cpp.o"
  "CMakeFiles/extended_functions.dir/extended_functions.cpp.o.d"
  "extended_functions"
  "extended_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table3_per_name.
# This may be replaced when dependencies are built.

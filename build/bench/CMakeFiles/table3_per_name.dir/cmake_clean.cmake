file(REMOVE_RECURSE
  "CMakeFiles/table3_per_name.dir/table3_per_name.cpp.o"
  "CMakeFiles/table3_per_name.dir/table3_per_name.cpp.o.d"
  "table3_per_name"
  "table3_per_name.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_per_name.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_regions.dir/ablation_regions.cpp.o"
  "CMakeFiles/ablation_regions.dir/ablation_regions.cpp.o.d"
  "ablation_regions"
  "ablation_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_regions.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/perf_text.dir/perf_text.cpp.o"
  "CMakeFiles/perf_text.dir/perf_text.cpp.o.d"
  "perf_text"
  "perf_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

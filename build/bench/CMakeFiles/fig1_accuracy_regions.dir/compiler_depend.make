# Empty compiler generated dependencies file for fig1_accuracy_regions.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig1_accuracy_regions.dir/fig1_accuracy_regions.cpp.o"
  "CMakeFiles/fig1_accuracy_regions.dir/fig1_accuracy_regions.cpp.o.d"
  "fig1_accuracy_regions"
  "fig1_accuracy_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_accuracy_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig2_www_results.dir/fig2_www_results.cpp.o"
  "CMakeFiles/fig2_www_results.dir/fig2_www_results.cpp.o.d"
  "fig2_www_results"
  "fig2_www_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_www_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

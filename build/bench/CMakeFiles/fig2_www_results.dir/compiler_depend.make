# Empty compiler generated dependencies file for fig2_www_results.
# This may be replaced when dependencies are built.

// weber_router: a fault-tolerant routing front-end for a weber_serve fleet.
//
//   weber_router --port=0
//       --backends=127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
//
// Clients speak the same newline-delimited protocol as weber_serve (on
// stdio and/or TCP); the router forwards each request to the backend that
// owns the request's block under rendezvous hashing. A prober thread
// drives per-backend health (healthy / suspect / down / probation); writes
// go to the owner only behind a per-backend circuit breaker with bounded
// jittered retries, reads fail over down the block's preference order, and
// client deadlines propagate through the hop. See DESIGN.md, "Routing &
// fleet failover".
//
// The router answers `stats` (one-line JSON: per-backend health, breaker
// state, counters) and `metrics` (Prometheus text, "ok <n>" framed) from
// its own registry; every other verb is forwarded. Admin verbs:
// `migrate <block> <endpoint>` re-homes one block live, `rebalance
// <endpoint...>` re-homes every block onto the proposed backend list with
// bounded parallelism (`rebalance status` / `rebalance abort` to watch or
// stop it), and `drain <endpoint>` empties a backend for decommission.
// With --state-file route overrides survive router restarts; with
// --promote-after-ms a hard-lost backend's blocks are promoted to their
// warm standby (pair with --replicas=2). With --port=0 the chosen port is
// announced as "listening on 127.0.0.1:<port>" and also written to
// --port-file when set. SIGINT/SIGTERM drain gracefully.

#include <csignal>
#include <cstring>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "router/router.h"
#include "serve/server.h"

using namespace weber;

namespace {

int g_stop_pipe[2] = {-1, -1};

void HandleStopSignal(int) {
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(g_stop_pipe[1], &byte, 1);
}

Status InstallStopHandlers() {
  if (::pipe(g_stop_pipe) != 0) {
    return Status::IOError("pipe(): ", std::strerror(errno));
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleStopSignal;
  sigemptyset(&sa.sa_mask);
  if (::sigaction(SIGINT, &sa, nullptr) != 0 ||
      ::sigaction(SIGTERM, &sa, nullptr) != 0) {
    return Status::IOError("sigaction(): ", std::strerror(errno));
  }
  return Status::OK();
}

void AddFlags(FlagParser* flags) {
  flags->AddString("backends", "",
                   "comma-separated backend endpoints (host:port,...)");
  flags->AddInt("port", 0,
                "TCP port on 127.0.0.1 (-1 = stdio only, 0 = ephemeral)");
  flags->AddBool("stdio", false, "also serve the stdin/stdout request loop");
  flags->AddString("port-file", "",
                   "also write the bound TCP port to this file once "
                   "listening");
  flags->AddDouble("probe-interval-ms", 250.0, "health probe cadence");
  flags->AddDouble("probe-timeout-ms", 250.0,
                   "budget for one probe round trip");
  flags->AddInt("deep-probe-every", 8,
                "every Nth probe cycle sends `stats` instead of `ping` "
                "(0 = ping only)");
  flags->AddInt("suspect-after", 1,
                "consecutive transport failures that demote a backend to "
                "suspect");
  flags->AddInt("down-after", 3,
                "total consecutive failures that demote a backend to down "
                "(unrouted)");
  flags->AddInt("probation-successes", 2,
                "probe successes a recovered backend needs before it is "
                "healthy again");
  flags->AddDouble("down-probe-interval-ms", 500.0,
                   "minimum gap between probes of a down backend");
  flags->AddInt("breaker-failures", 3,
                "consecutive failures that trip a backend's write breaker "
                "(0 = breakers off)");
  flags->AddDouble("breaker-cooldown-ms", 500.0,
                   "how long a tripped breaker rejects writes before "
                   "admitting a probe");
  flags->AddDouble("dial-timeout-ms", 250.0,
                   "budget for dialing a backend on the request path");
  flags->AddDouble("call-timeout-ms", 2000.0,
                   "per-hop budget for a forwarded call (tightened by the "
                   "client's remaining deadline)");
  flags->AddInt("max-retries", 2,
                "transport retries after the first attempt (writes)");
  flags->AddDouble("retry-backoff-ms", 10.0,
                   "base of the exponential full-jitter backoff between "
                   "retries");
  flags->AddDouble("retry-after-ms", 50.0,
                   "retry hint carried by OVERLOADED responses");
  flags->AddInt("seed", 0x5EED, "backoff jitter seed (deterministic drills)");
  flags->AddInt("pool-size", 4, "idle connections kept per backend");
  flags->AddInt("listen-backlog", 64, "listen(2) backlog for --port");
  flags->AddInt("max-connections", 0,
                "concurrent TCP connections; excess accepts answer "
                "OVERLOADED and close (0 = unlimited)");
  flags->AddDouble("read-timeout-ms", 0.0,
                   "close a TCP connection idle longer than this "
                   "(0 = never)");
  flags->AddDouble("write-timeout-ms", 0.0,
                   "give up on a TCP client that cannot absorb a response "
                   "within this (0 = block)");
  flags->AddDouble("migrate-pause-ms", 500.0,
                   "write-pause budget for the tail catch-up phase of a "
                   "`migrate <block> <endpoint>` admin request");
  flags->AddInt("replicas", 1,
                "copies per block: 1 = owner only; N>1 forwards acked "
                "writes asynchronously to the next N-1 backends in route "
                "order as warm standbys");
  flags->AddInt("replication-queue-cap", 1024,
                "acked writes queued for standby forwarding before new "
                "ones are dropped (and counted)");
  flags->AddInt("rebalance-parallelism", 2,
                "concurrent block moves a `rebalance`/`drain` plan runs at "
                "once");
  flags->AddDouble("promote-after-ms", 0.0,
                   "promote a down backend's blocks to their first routable "
                   "standby after it has been down this long (0 = never)");
  flags->AddString("state-file", "",
                   "persist route overrides and drained marks here "
                   "(CRC32C-trailed, atomic replace) and replay them on "
                   "restart");
  flags->AddString("faults", "",
                   "fault spec point=kind[:prob[:param[:max]]];... "
                   "(or WEBER_FAULTS env); points: migrate.flip, "
                   "rebalance.move");
  flags->AddInt("fault_seed", 0, "seed for fault trigger streams");
}

int Fail(const Status& status) {
  std::cerr << "error: " << status << "\n";
  return ExitCodeForStatus(status.code());
}

int Run(int argc, char** argv) {
  FlagParser flags;
  AddFlags(&flags);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--help") {
      std::cout << flags.Usage(
          "weber_router — fault-tolerant shard router for a weber_serve "
          "fleet (same newline-delimited protocol on both sides)");
      return 0;
    }
  }
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);

  faults::FaultInjector& injector = faults::FaultInjector::Instance();
  if (flags.WasSet("fault_seed")) {
    injector.Seed(static_cast<uint64_t>(flags.GetInt("fault_seed")));
  }
  std::string fault_spec = flags.GetString("faults");
  if (fault_spec.empty()) {
    if (const char* env = std::getenv("WEBER_FAULTS")) fault_spec = env;
  }
  if (!fault_spec.empty()) {
    if (auto st = injector.ArmFromSpec(fault_spec); !st.ok()) return Fail(st);
    std::cerr << "fault injection armed: " << fault_spec << "\n";
  }

  std::vector<std::string> endpoints;
  for (const std::string& piece : Split(flags.GetString("backends"), ',')) {
    const std::string trimmed{TrimWhitespace(piece)};
    if (trimmed.empty()) continue;
    if (auto parsed = router::ParseEndpoint(trimmed); !parsed.ok()) {
      return Fail(parsed.status());
    }
    endpoints.push_back(trimmed);
  }
  if (endpoints.empty()) {
    return Fail(Status::InvalidArgument(
        "--backends must list at least one host:port endpoint"));
  }

  router::RouterOptions options;
  options.health.suspect_after = flags.GetInt("suspect-after");
  options.health.down_after = flags.GetInt("down-after");
  options.health.probation_successes = flags.GetInt("probation-successes");
  options.health.down_probe_interval_ms =
      flags.GetDouble("down-probe-interval-ms");
  options.breaker.failure_threshold = flags.GetInt("breaker-failures");
  options.breaker.cooldown_ms = flags.GetDouble("breaker-cooldown-ms");
  options.probe_interval_ms = flags.GetDouble("probe-interval-ms");
  options.probe_timeout_ms = flags.GetDouble("probe-timeout-ms");
  options.deep_probe_every = flags.GetInt("deep-probe-every");
  options.dial_timeout_ms = flags.GetDouble("dial-timeout-ms");
  options.call_timeout_ms = flags.GetDouble("call-timeout-ms");
  options.max_retries = flags.GetInt("max-retries");
  options.retry_backoff_ms = flags.GetDouble("retry-backoff-ms");
  options.retry_after_ms = flags.GetDouble("retry-after-ms");
  options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  options.pool_size = flags.GetInt("pool-size");
  options.migrate_pause_ms =
      std::max(1.0, flags.GetDouble("migrate-pause-ms"));
  options.replicas = std::max(1, flags.GetInt("replicas"));
  options.replication_queue_cap = static_cast<size_t>(
      std::max(1, flags.GetInt("replication-queue-cap")));
  options.rebalance_parallelism =
      std::max(1, flags.GetInt("rebalance-parallelism"));
  options.promote_after_ms =
      std::max(0.0, flags.GetDouble("promote-after-ms"));
  options.state_file = flags.GetString("state-file");
  if (options.replicas > static_cast<int>(endpoints.size())) {
    return Fail(Status::InvalidArgument(
        "--replicas=", options.replicas, " exceeds the ", endpoints.size(),
        "-backend fleet"));
  }

  router::Router router(endpoints, options);
  router.Start();
  std::cerr << "routing " << endpoints.size() << " backends\n";

  if (auto st = InstallStopHandlers(); !st.ok()) return Fail(st);

  serve::ServerOptions server_options;
  server_options.listen_backlog = std::max(1, flags.GetInt("listen-backlog"));
  server_options.max_connections =
      std::max(0, flags.GetInt("max-connections"));
  server_options.read_timeout_ms = flags.GetDouble("read-timeout-ms");
  server_options.write_timeout_ms = flags.GetDouble("write-timeout-ms");
  server_options.retry_after_ms =
      std::max(1.0, flags.GetDouble("retry-after-ms"));
  serve::LineServer server(
      [&router](const std::string& line, bool* quit) {
        return router.HandleLine(line, quit);
      },
      server_options);
  const int port = flags.GetInt("port");
  if (port >= 0) {
    if (auto st = server.StartTcp(port); !st.ok()) return Fail(st);
    std::cout << "listening on 127.0.0.1:" << server.tcp_port() << std::endl;
    const std::string port_file = flags.GetString("port-file");
    if (!port_file.empty()) {
      std::ofstream pf(port_file, std::ios::trunc);
      pf << server.tcp_port() << "\n";
      if (!pf) {
        return Fail(Status::IOError("cannot write --port-file ", port_file));
      }
    }
  }
  if (flags.GetBool("stdio")) {
    if (auto st = server.ServeFd(STDIN_FILENO, std::cout, g_stop_pipe[0]);
        !st.ok()) {
      return Fail(st);
    }
  } else if (port >= 0) {
    char byte;
    while (::read(g_stop_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
  } else {
    return Fail(Status::InvalidArgument(
        "--nostdio without --port leaves nothing to serve"));
  }
  server.StopTcp();
  router.Stop();
  std::cerr << "shutdown complete\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }

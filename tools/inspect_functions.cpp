// Inspection tool: per-function within/cross-entity similarity gaps on
// the first blocks of a corpus preset. Usage: inspect_functions [weps]

#include <iostream>
#include "core/weber.h"
using namespace weber;

int main(int argc, char** argv) {
  auto cfg = corpus::Www05Config();
  if (argc > 1 && std::string(argv[1]) == "weps") cfg = corpus::WepsConfig();
  auto data = corpus::SyntheticWebGenerator(cfg).Generate();
  if (!data.ok()) { std::cerr << data.status() << "\n"; return 1; }
  auto fns = core::MakeStandardFunctions();
  extract::FeatureExtractor fx(&data->gazetteer, {});
  for (size_t b = 0; b < data->dataset.blocks.size(); ++b) {
    const auto& block = data->dataset.blocks[b];
    std::vector<extract::PageInput> pages;
    for (const auto& d : block.documents) pages.push_back({d.url, d.text});
    auto bundles = fx.ExtractBlock(pages, block.query);
    if (!bundles.ok()) { std::cerr << bundles.status() << "\n"; return 1; }
    std::cout << block.query << " (n=" << block.num_documents() << ", K=" << block.NumEntities() << ")\n";
    int n = block.num_documents();
    for (const auto& fn : fns) {
      double sum_in = 0, sum_out = 0; int cin = 0, cout_ = 0;
      for (int i = 0; i < n; ++i) for (int j = i+1; j < n; ++j) {
        double v = fn->Compute((*bundles)[i], (*bundles)[j]);
        if (block.entity_labels[i] == block.entity_labels[j]) { sum_in += v; cin++; }
        else { sum_out += v; cout_++; }
      }
      std::cout << "  " << fn->name() << ": within=" << FormatDouble(cin? sum_in/cin:0,3)
                << " cross=" << FormatDouble(cout_? sum_out/cout_:0,3)
                << " gap=" << FormatDouble((cin?sum_in/cin:0)-(cout_?sum_out/cout_:0),3) << "\n";
    }
    if (b >= 2) break;  // first 3 blocks only
  }
  return 0;
}

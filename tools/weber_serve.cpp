// weber_serve: the concurrent resolution service behind a line protocol.
//
//   weber_serve --dataset=corpus/dataset.txt --gazetteer=corpus/gazetteer.txt
//   weber_serve --dataset=... --gazetteer=... --port=0        # + TCP
//
// Requests arrive newline-delimited on stdin and (with --port) on TCP
// connections to 127.0.0.1; see src/serve/protocol.h for the grammar. With
// --port=0 an ephemeral port is chosen and announced on stdout as
// "listening on 127.0.0.1:<port>" before serving begins. The stdio loop
// runs until EOF or `quit`; pass --nostdio to serve TCP only (stop with a
// signal). Fault points serve.assign / serve.compact / serve.wal.* /
// serve.snapshot.write honor --faults and WEBER_FAULTS for chaos drills.
//
// Overload protection (all off by default): --queue-cap bounds the assign
// and compaction queues, --max-pending-per-shard bounds per-shard admitted
// writes, --max-connections / --listen-backlog / --read-timeout-ms /
// --write-timeout-ms bound the TCP layer, --default-deadline-ms applies a
// deadline to requests that carry none, and --breaker-failures /
// --breaker-cooldown-ms arm per-shard circuit breakers. Shed requests are
// answered "OVERLOADED <retry-after-ms>" (see --retry-after-ms) and blown
// deadlines "DEADLINE_EXCEEDED".
//
// Observability: the `metrics` verb answers with the service's metrics
// registry as Prometheus text exposition ("ok <n>" plus n payload lines);
// `stats` stays the one-line JSON summary. --trace records per-request
// spans in a bounded ring buffer and --slow-request-ms logs a WARNING for
// any request (or inner span) at or over the threshold.
//
// With --data-dir every shard keeps a write-ahead log and checksummed
// snapshots there and recovers from them on startup; --fsync picks the
// group-commit policy (never | batch | always). SIGINT/SIGTERM shut the
// server down gracefully: in-flight requests are answered, the micro-batch
// and WALs are flushed, and the process exits 0.

#include <csignal>
#include <cstring>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "common/fault_injection.h"
#include "common/flags.h"
#include "corpus/dataset_io.h"
#include "durability/wal.h"
#include "serve/resolution_service.h"
#include "serve/server.h"

using namespace weber;

namespace {

int g_stop_pipe[2] = {-1, -1};

// Async-signal-safe: a byte on the self-pipe wakes whichever blocking loop
// the main thread is in (ServeFd poll or the --nostdio wait).
void HandleStopSignal(int) {
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(g_stop_pipe[1], &byte, 1);
}

Status InstallStopHandlers() {
  if (::pipe(g_stop_pipe) != 0) {
    return Status::IOError("pipe(): ", std::strerror(errno));
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleStopSignal;
  sigemptyset(&sa.sa_mask);
  if (::sigaction(SIGINT, &sa, nullptr) != 0 ||
      ::sigaction(SIGTERM, &sa, nullptr) != 0) {
    return Status::IOError("sigaction(): ", std::strerror(errno));
  }
  return Status::OK();
}

void AddFlags(FlagParser* flags) {
  flags->AddString("dataset", "", "path to a labeled WEBER dataset file");
  flags->AddString("gazetteer", "", "path to a WEBER gazetteer file");
  flags->AddInt("port", -1,
                "TCP port on 127.0.0.1 (-1 = stdio only, 0 = ephemeral)");
  flags->AddString("port-file", "",
                   "also write the bound TCP port to this file once "
                   "listening (fleet scripts read it instead of scraping "
                   "stdout)");
  flags->AddBool("stdio", true, "serve the stdin/stdout request loop");
  flags->AddInt("compaction_threads", 1, "background compaction workers");
  flags->AddInt("cache_capacity", 1 << 20, "similarity cache entries");
  flags->AddInt("cache_shards", 16, "similarity cache lock stripes");
  flags->AddInt("max_batch_size", 16, "assign micro-batch size");
  flags->AddDouble("max_delay_ms", 2.0, "assign micro-batch flush deadline");
  flags->AddInt("compact_every", 0,
                "auto-compact a shard after N assigns (0 = on request only)");
  flags->AddString("assignment", "mean",
                   "cluster scoring: mean (avg linkage) | max (single)");
  flags->AddBool("no-compiled-path", false,
                 "score through the interpreted per-pair walk instead of "
                 "the compiled batch kernels (bit-identical; debugging "
                 "escape hatch)");
  flags->AddDouble("train_fraction", 0.10,
                   "labeled pair fraction for threshold calibration");
  flags->AddInt("seed", 0x5E21E, "calibration sampling seed");
  flags->AddBool("lenient", false,
                 "skip corrupt dataset blocks instead of failing the file");
  flags->AddString("faults", "",
                   "fault spec point=kind[:prob[:param[:max]]];... "
                   "(or WEBER_FAULTS env)");
  flags->AddInt("fault_seed", 0, "seed for fault trigger streams");
  flags->AddString("data-dir", "",
                   "directory for per-shard WALs + snapshots with crash "
                   "recovery (empty = in-memory only)");
  flags->AddString("fsync", "batch",
                   "WAL fsync policy: never | batch | always");
  flags->AddInt("wal-truncate-bytes", 1 << 20,
                "restart a shard's WAL at a fully-covering snapshot once it "
                "exceeds this many bytes");
  flags->AddBool("verify-recovery", true,
                 "cross-check recovered partitions against a fresh batch "
                 "re-resolution on startup");
  flags->AddInt("queue-cap", 0,
                "bound the assign micro-batch queue and the background "
                "compaction queue; excess requests answer OVERLOADED "
                "(0 = unbounded)");
  flags->AddInt("max-pending-per-shard", 0,
                "bound on writes admitted but unfinished per shard "
                "(0 = unbounded)");
  flags->AddDouble("default-deadline-ms", 0.0,
                   "deadline applied to requests without a 'deadline <ms>' "
                   "suffix (0 = none)");
  flags->AddInt("breaker-failures", 0,
                "consecutive write failures that trip a shard's circuit "
                "breaker (0 = breakers off)");
  flags->AddDouble("breaker-cooldown-ms", 1000.0,
                   "how long a tripped breaker rejects writes before "
                   "admitting a probe");
  flags->AddInt("listen-backlog", 64, "listen(2) backlog for --port");
  flags->AddInt("max-connections", 0,
                "concurrent TCP connections; excess accepts answer "
                "OVERLOADED and close (0 = unlimited)");
  flags->AddDouble("read-timeout-ms", 0.0,
                   "close a TCP connection idle longer than this "
                   "(0 = never)");
  flags->AddDouble("write-timeout-ms", 0.0,
                   "give up on a TCP client that cannot absorb a response "
                   "within this (0 = block)");
  flags->AddDouble("retry-after-ms", 50.0,
                   "retry hint carried by OVERLOADED responses");
  flags->AddBool("trace", false,
                 "record per-request trace spans (accept -> parse -> "
                 "batcher -> shard -> resolver) in a bounded ring buffer");
  flags->AddDouble("slow-request-ms", 0.0,
                   "log a WARNING line for any span at or over this many "
                   "milliseconds (implies --trace; 0 = off)");
  flags->AddInt("trace-capacity", 4096,
                "trace spans retained in the ring buffer");
}

int Fail(const Status& status) {
  std::cerr << "error: " << status << "\n";
  return ExitCodeForStatus(status.code());
}

int Run(int argc, char** argv) {
  FlagParser flags;
  AddFlags(&flags);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--help") {
      std::cout << flags.Usage(
          "weber_serve — concurrent entity-resolution service "
          "(newline-delimited protocol on stdio and/or TCP)");
      return 0;
    }
  }
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);

  faults::FaultInjector& injector = faults::FaultInjector::Instance();
  if (flags.WasSet("fault_seed")) {
    injector.Seed(static_cast<uint64_t>(flags.GetInt("fault_seed")));
  }
  std::string fault_spec = flags.GetString("faults");
  if (fault_spec.empty()) {
    if (const char* env = std::getenv("WEBER_FAULTS")) fault_spec = env;
  }
  if (!fault_spec.empty()) {
    if (auto st = injector.ArmFromSpec(fault_spec); !st.ok()) return Fail(st);
    std::cerr << "fault injection armed: " << fault_spec << "\n";
  }

  corpus::LoadOptions load_options;
  load_options.lenient = flags.GetBool("lenient");
  auto dataset =
      corpus::LoadDatasetFromFile(flags.GetString("dataset"), load_options,
                                  nullptr);
  if (!dataset.ok()) return Fail(dataset.status());
  std::ifstream gz(flags.GetString("gazetteer"));
  if (!gz) {
    return Fail(Status::IOError("cannot read ", flags.GetString("gazetteer")));
  }
  auto gazetteer = corpus::LoadGazetteer(gz);
  if (!gazetteer.ok()) return Fail(gazetteer.status());

  serve::ServiceOptions options;
  options.compaction_threads = flags.GetInt("compaction_threads");
  options.cache.capacity =
      static_cast<size_t>(std::max(1, flags.GetInt("cache_capacity")));
  options.cache.num_shards = flags.GetInt("cache_shards");
  options.batcher.max_batch_size = flags.GetInt("max_batch_size");
  options.batcher.max_delay_ms = flags.GetDouble("max_delay_ms");
  options.compact_every = flags.GetInt("compact_every");
  options.train_fraction = flags.GetDouble("train_fraction");
  options.calibration_seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const std::string assignment = flags.GetString("assignment");
  if (assignment == "mean") {
    options.incremental.assignment =
        core::IncrementalOptions::Assignment::kBestMean;
  } else if (assignment == "max") {
    options.incremental.assignment =
        core::IncrementalOptions::Assignment::kBestMax;
  } else {
    return Fail(Status::InvalidArgument("unknown --assignment '", assignment,
                                        "' (mean | max)"));
  }
  options.incremental.compiled_path = !flags.GetBool("no-compiled-path");
  options.durability.data_dir = flags.GetString("data-dir");
  auto fsync = durability::ParseFsyncPolicy(flags.GetString("fsync"));
  if (!fsync.ok()) return Fail(fsync.status());
  options.durability.fsync = fsync.ValueOrDie();
  options.durability.wal_truncate_bytes =
      static_cast<uint64_t>(std::max(0, flags.GetInt("wal-truncate-bytes")));
  options.durability.verify_recovery = flags.GetBool("verify-recovery");
  const int queue_cap = std::max(0, flags.GetInt("queue-cap"));
  options.overload.executor_queue_cap = static_cast<size_t>(queue_cap);
  options.overload.batcher_queue_cap = static_cast<size_t>(queue_cap);
  options.overload.max_pending_per_shard =
      std::max(0, flags.GetInt("max-pending-per-shard"));
  options.overload.default_deadline_ms =
      flags.GetDouble("default-deadline-ms");
  options.overload.breaker_failure_threshold =
      std::max(0, flags.GetInt("breaker-failures"));
  options.overload.breaker_cooldown_ms =
      flags.GetDouble("breaker-cooldown-ms");

  // The collector must outlive the service (the service holds a raw
  // pointer); with neither --trace nor --slow-request-ms the pointer stays
  // null and every span in the serving path is a no-op.
  const double slow_request_ms =
      std::max(0.0, flags.GetDouble("slow-request-ms"));
  std::unique_ptr<obs::TraceCollector> trace;
  if (flags.GetBool("trace") || slow_request_ms > 0.0) {
    obs::TraceOptions trace_options;
    trace_options.capacity =
        static_cast<size_t>(std::max(1, flags.GetInt("trace-capacity")));
    trace_options.slow_ms = slow_request_ms;
    trace = std::make_unique<obs::TraceCollector>(trace_options);
    options.trace = trace.get();
    if (slow_request_ms > 0.0) {
      std::cerr << "slow-request logging armed at " << slow_request_ms
                << " ms\n";
    }
  }

  auto service =
      serve::ResolutionService::Create(*dataset, &*gazetteer, options);
  if (!service.ok()) return Fail(service.status());
  std::cerr << "serving " << (*service)->block_names().size() << " shards\n";

  if (auto st = InstallStopHandlers(); !st.ok()) return Fail(st);

  serve::ServerOptions server_options;
  server_options.listen_backlog = std::max(1, flags.GetInt("listen-backlog"));
  server_options.max_connections =
      std::max(0, flags.GetInt("max-connections"));
  server_options.read_timeout_ms = flags.GetDouble("read-timeout-ms");
  server_options.write_timeout_ms = flags.GetDouble("write-timeout-ms");
  server_options.retry_after_ms =
      std::max(1.0, flags.GetDouble("retry-after-ms"));
  serve::LineServer server(service->get(), server_options);
  const int port = flags.GetInt("port");
  if (port >= 0) {
    if (auto st = server.StartTcp(port); !st.ok()) return Fail(st);
    std::cout << "listening on 127.0.0.1:" << server.tcp_port() << std::endl;
    const std::string port_file = flags.GetString("port-file");
    if (!port_file.empty()) {
      std::ofstream pf(port_file, std::ios::trunc);
      pf << server.tcp_port() << "\n";
      if (!pf) {
        return Fail(Status::IOError("cannot write --port-file ", port_file));
      }
    }
  }
  if (flags.GetBool("stdio")) {
    if (auto st = server.ServeFd(STDIN_FILENO, std::cout, g_stop_pipe[0]);
        !st.ok()) {
      return Fail(st);
    }
  } else if (port >= 0) {
    // Block until SIGINT/SIGTERM taps the self-pipe.
    char byte;
    while (::read(g_stop_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
  } else {
    return Fail(Status::InvalidArgument(
        "--nostdio without --port leaves nothing to serve"));
  }
  // Graceful drain: answer in-flight TCP requests, then flush the batcher
  // and make everything in the WALs durable before exiting 0.
  server.StopTcp();
  if (auto st = (*service)->SyncDurable(); !st.ok()) {
    std::cerr << "warning: final WAL sync failed: " << st << "\n";
  }
  std::cerr << "shutdown complete\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }

// weber_loadgen: concurrent load generator + correctness check for
// weber_serve.
//
//   weber_serve --dataset=D --gazetteer=G --port=0 ...   (note the port)
//   weber_loadgen --dataset=D --gazetteer=G --port=N \
//       --clients=4 --queries=10000 --out=BENCH_serve.json
//
// Three phases against a running server:
//   1. assign storm — every (block, document) pair assigned once, the work
//      split across --clients concurrent TCP connections;
//   2. compact — one client compacts every shard;
//   3. query storm — clients issue random queries until --queries total.
// Afterwards each shard's served partition (`dump`) is compared against a
// locally built single-threaded reference service — batch re-resolution is
// arrival-order invariant, so a quiesced, compacted shard must match
// exactly. Client-side latency percentiles (p50/p95/p99), per-phase QPS,
// retry counts and the server's cache hit rate land in --out as JSON.
//
// Transient transport failures (connection reset, short read) are retried
// up to --retries times with exponential backoff plus full jitter,
// reconnecting before each attempt; only transport errors are retried —
// a served error response is never resent, since the server may have
// already applied the request.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/json_writer.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "corpus/dataset_io.h"
#include "graph/clustering.h"
#include "serve/resolution_service.h"
#include "serve/server.h"

using namespace weber;

namespace {

int Fail(const Status& status) {
  std::cerr << "error: " << status << "\n";
  return ExitCodeForStatus(status.code());
}

struct PhaseStats {
  long long count = 0;
  long long errors = 0;
  long long retries = 0;
  double wall_ms = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;

  double Qps() const { return wall_ms <= 0.0 ? 0.0 : count / (wall_ms / 1e3); }
};

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// One request with bounded retry on transport failure. Before each retry
/// the client reconnects and sleeps with exponential backoff plus full
/// jitter (attempt i draws uniformly from [0, min(2^(i-1), 64)) ms) so a
/// storm of clients hitting the same hiccup does not stampede back in
/// lockstep. Only transport errors (IOError: reset, refused, short read)
/// are retried; a served error response is returned as-is, because the
/// server may already have applied the original request.
Result<std::string> CallWithRetry(serve::LineConnection& conn,
                                  const std::string& host, int port,
                                  const std::string& request, int max_retries,
                                  Rng& rng, long long& retries) {
  Status last = Status::OK();
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    if (attempt > 0) {
      ++retries;
      const double cap_ms = std::min(64.0, std::ldexp(1.0, attempt - 1));
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          rng.UniformDouble() * cap_ms));
      if (Status st = conn.Connect(host, port); !st.ok()) {
        last = std::move(st);
        continue;
      }
    }
    Result<std::string> response = conn.Call(request);
    if (response.ok()) return response;
    last = response.status();
    if (last.code() != StatusCode::kIOError) return last;  // not transient
  }
  return Status::IOError("'", request, "' still failing after ", max_retries,
                         " retries: ", last.ToString());
}

/// Runs `body(client_index, connection, latencies, errors, retries)` on
/// `clients` threads, each with its own connection, and merges the latency
/// samples and counters.
Result<PhaseStats> RunPhase(
    const std::string& host, int port, int clients,
    const std::function<Status(int, serve::LineConnection&,
                               std::vector<double>&, long long&,
                               long long&)>& body) {
  std::vector<std::vector<double>> latencies(clients);
  std::vector<long long> errors(clients, 0);
  std::vector<long long> retries(clients, 0);
  std::vector<Status> failures(clients, Status::OK());
  WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int k = 0; k < clients; ++k) {
    threads.emplace_back([&, k] {
      serve::LineConnection conn;
      Status st = conn.Connect(host, port);
      if (st.ok()) st = body(k, conn, latencies[k], errors[k], retries[k]);
      failures[k] = std::move(st);
    });
  }
  for (auto& t : threads) t.join();
  const double wall_ms = wall.ElapsedMillis();
  for (const Status& st : failures) {
    WEBER_RETURN_NOT_OK(st);
  }
  std::vector<double> merged;
  long long total_errors = 0;
  long long total_retries = 0;
  for (int k = 0; k < clients; ++k) {
    merged.insert(merged.end(), latencies[k].begin(), latencies[k].end());
    total_errors += errors[k];
    total_retries += retries[k];
  }
  PhaseStats stats;
  stats.count = static_cast<long long>(merged.size());
  stats.errors = total_errors;
  stats.retries = total_retries;
  stats.wall_ms = wall_ms;
  if (!merged.empty()) {
    std::sort(merged.begin(), merged.end());
    double sum = 0.0;
    for (double v : merged) sum += v;
    stats.mean_ms = sum / static_cast<double>(merged.size());
    stats.p50_ms = Percentile(merged, 0.50);
    stats.p95_ms = Percentile(merged, 0.95);
    stats.p99_ms = Percentile(merged, 0.99);
  }
  return stats;
}

void WritePhaseJson(JsonWriter& json, const char* key,
                    const PhaseStats& stats) {
  json.Key(key).BeginObject();
  json.Key("requests").Number(stats.count);
  json.Key("errors").Number(stats.errors);
  json.Key("retries").Number(stats.retries);
  json.Key("wall_ms").Number(stats.wall_ms);
  json.Key("qps").Number(stats.Qps());
  json.Key("mean_ms").Number(stats.mean_ms);
  json.Key("p50_ms").Number(stats.p50_ms);
  json.Key("p95_ms").Number(stats.p95_ms);
  json.Key("p99_ms").Number(stats.p99_ms);
  json.EndObject();
}

void PrintPhase(const char* name, const PhaseStats& stats) {
  std::cout << name << ": " << stats.count << " requests ("
            << stats.errors << " errors, " << stats.retries << " retries), "
            << FormatDouble(stats.Qps(), 1) << " qps, p50 "
            << FormatDouble(stats.p50_ms, 3) << " ms, p95 "
            << FormatDouble(stats.p95_ms, 3) << " ms, p99 "
            << FormatDouble(stats.p99_ms, 3) << " ms\n";
}

/// Pulls a numeric field out of the server's one-line stats JSON. Good
/// enough for flat keys emitted by our own JsonWriter.
double ExtractNumber(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + at + needle.size(), nullptr);
}

/// Parses a `dump` response ("ok <n> <doc>:<label> ...") into labels.
Result<std::vector<int>> ParseDump(const std::string& response) {
  const std::vector<std::string> tokens = SplitWhitespace(response);
  if (tokens.size() < 2 || tokens[0] != "ok") {
    return Status::Corruption("bad dump response '", response, "'");
  }
  const int n = std::atoi(tokens[1].c_str());
  if (n < 0 || tokens.size() != static_cast<size_t>(n) + 2) {
    return Status::Corruption("dump token count mismatch");
  }
  std::vector<int> labels(static_cast<size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    const std::string& pair = tokens[static_cast<size_t>(i) + 2];
    const size_t colon = pair.find(':');
    if (colon == std::string::npos) {
      return Status::Corruption("bad dump pair '", pair, "'");
    }
    const int doc = std::atoi(pair.substr(0, colon).c_str());
    if (doc < 0 || doc >= n) {
      return Status::Corruption("dump doc out of range in '", pair, "'");
    }
    labels[static_cast<size_t>(doc)] = std::atoi(pair.c_str() + colon + 1);
  }
  return labels;
}

/// Builds the single-threaded reference: a local service over the same
/// corpus, documents assigned in canonical order, every shard compacted.
Result<std::unique_ptr<serve::ResolutionService>> BuildReference(
    const corpus::Dataset& dataset, const extract::Gazetteer& gazetteer,
    const serve::ServiceOptions& options) {
  WEBER_ASSIGN_OR_RETURN(
      std::unique_ptr<serve::ResolutionService> reference,
      serve::ResolutionService::Create(dataset, &gazetteer, options));
  for (const corpus::Block& block : dataset.blocks) {
    for (size_t d = 0; d < block.documents.size(); ++d) {
      WEBER_RETURN_NOT_OK(
          reference->Assign(block.query, static_cast<int>(d)).status());
    }
  }
  WEBER_RETURN_NOT_OK(reference->CompactAll());
  return reference;
}

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("host", "127.0.0.1", "server address");
  flags.AddInt("port", 0, "server TCP port (required)");
  flags.AddInt("clients", 4, "concurrent client connections");
  flags.AddInt("queries", 10000, "total queries in the query storm");
  flags.AddString("dataset", "", "the dataset the server was started with");
  flags.AddString("gazetteer", "",
                  "the gazetteer the server was started with");
  flags.AddBool("verify", true,
                "compare served partitions against a local reference");
  flags.AddDouble("train_fraction", 0.10, "must match the server");
  flags.AddInt("seed", 0x5E21E, "must match the server's calibration seed");
  flags.AddInt("query_seed", 1, "query storm randomization seed");
  flags.AddInt("retries", 5,
               "max reconnect-and-resend attempts per transport failure");
  flags.AddString("out", "BENCH_serve.json", "benchmark report path");
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--help") {
      std::cout << flags.Usage(
          "weber_loadgen — concurrent load generator and partition "
          "checker for weber_serve");
      return 0;
    }
  }
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);
  if (!flags.WasSet("port") || flags.GetInt("port") <= 0) {
    return Fail(Status::InvalidArgument("--port is required"));
  }
  const std::string host = flags.GetString("host");
  const int port = flags.GetInt("port");
  const int clients = std::max(1, flags.GetInt("clients"));
  const long long total_queries = std::max(1, flags.GetInt("queries"));
  const int max_retries = std::max(0, flags.GetInt("retries"));

  auto dataset = corpus::LoadDatasetFromFile(flags.GetString("dataset"));
  if (!dataset.ok()) return Fail(dataset.status());

  // The global assignment work list: every (block, document) once.
  std::vector<std::pair<int, int>> work;
  for (size_t b = 0; b < dataset->blocks.size(); ++b) {
    for (size_t d = 0; d < dataset->blocks[b].documents.size(); ++d) {
      work.emplace_back(static_cast<int>(b), static_cast<int>(d));
    }
  }
  if (work.empty()) return Fail(Status::InvalidArgument("empty dataset"));

  // Phase 1: assign storm. Client k handles work items k, k+clients, ...
  auto assign_stats = RunPhase(
      host, port, clients,
      [&](int k, serve::LineConnection& conn, std::vector<double>& lat,
          long long& errors, long long& retries) -> Status {
        Rng backoff_rng(0xB0FFULL + static_cast<uint64_t>(k));
        for (size_t i = static_cast<size_t>(k); i < work.size();
             i += static_cast<size_t>(clients)) {
          const std::string request =
              "assign " + dataset->blocks[work[i].first].query + " " +
              std::to_string(work[i].second);
          WallTimer timer;
          WEBER_ASSIGN_OR_RETURN(
              std::string response,
              CallWithRetry(conn, host, port, request, max_retries,
                            backoff_rng, retries));
          lat.push_back(timer.ElapsedMillis());
          if (response.rfind("ok", 0) != 0) ++errors;
        }
        return Status::OK();
      });
  if (!assign_stats.ok()) return Fail(assign_stats.status());
  PrintPhase("assign", *assign_stats);

  // Phase 2: compact every shard (single client; the server may also run
  // background compactions of its own).
  double compact_ms = 0.0;
  {
    serve::LineConnection conn;
    if (auto st = conn.Connect(host, port); !st.ok()) return Fail(st);
    WallTimer timer;
    auto response = conn.Call("compact");
    if (!response.ok()) return Fail(response.status());
    compact_ms = timer.ElapsedMillis();
    if (response->rfind("ok", 0) != 0) {
      return Fail(Status::Internal("compact failed: ", *response));
    }
    std::cout << "compact: all shards in " << FormatDouble(compact_ms, 1)
              << " ms\n";
  }

  // Phase 3: query storm. A shared ticket counter bounds the total.
  std::atomic<long long> tickets{0};
  const uint64_t query_seed =
      static_cast<uint64_t>(flags.GetInt("query_seed"));
  auto query_stats = RunPhase(
      host, port, clients,
      [&](int k, serve::LineConnection& conn, std::vector<double>& lat,
          long long& errors, long long& retries) -> Status {
        Rng rng(query_seed + static_cast<uint64_t>(k) * 0x9E37ULL);
        while (tickets.fetch_add(1, std::memory_order_relaxed) <
               total_queries) {
          const auto& pick =
              work[rng.UniformUint64(static_cast<uint64_t>(work.size()))];
          const std::string request =
              "query " + dataset->blocks[pick.first].query + " " +
              std::to_string(pick.second);
          WallTimer timer;
          WEBER_ASSIGN_OR_RETURN(
              std::string response,
              CallWithRetry(conn, host, port, request, max_retries, rng,
                            retries));
          lat.push_back(timer.ElapsedMillis());
          if (response.rfind("ok", 0) != 0) ++errors;
        }
        return Status::OK();
      });
  if (!query_stats.ok()) return Fail(query_stats.status());
  PrintPhase("query", *query_stats);

  // Server-side stats (cache hit rate etc.) as reported after the storm.
  std::string server_stats;
  {
    serve::LineConnection conn;
    if (auto st = conn.Connect(host, port); !st.ok()) return Fail(st);
    auto response = conn.Call("stats");
    if (!response.ok()) return Fail(response.status());
    if (response->rfind("ok ", 0) != 0) {
      return Fail(Status::Internal("stats failed: ", *response));
    }
    server_stats = response->substr(3);
  }
  const double hit_rate = ExtractNumber(server_stats, "hit_rate");
  std::cout << "cache hit rate: " << FormatDouble(hit_rate, 4) << "\n";

  // Verification: served partitions vs the single-threaded reference.
  int shards_checked = 0;
  int shards_mismatched = 0;
  if (flags.GetBool("verify")) {
    std::ifstream gz(flags.GetString("gazetteer"));
    if (!gz) {
      return Fail(Status::IOError("cannot read ",
                                  flags.GetString("gazetteer")));
    }
    auto gazetteer = corpus::LoadGazetteer(gz);
    if (!gazetteer.ok()) return Fail(gazetteer.status());
    serve::ServiceOptions options;
    options.train_fraction = flags.GetDouble("train_fraction");
    options.calibration_seed = static_cast<uint64_t>(flags.GetInt("seed"));
    auto reference = BuildReference(*dataset, *gazetteer, options);
    if (!reference.ok()) return Fail(reference.status());

    serve::LineConnection conn;
    if (auto st = conn.Connect(host, port); !st.ok()) return Fail(st);
    for (const corpus::Block& block : dataset->blocks) {
      auto response = conn.Call("dump " + block.query);
      if (!response.ok()) return Fail(response.status());
      auto served = ParseDump(*response);
      if (!served.ok()) return Fail(served.status());
      auto expected = (*reference)->DumpPartition(block.query);
      if (!expected.ok()) return Fail(expected.status());
      ++shards_checked;
      const bool match =
          served->size() == expected->size() &&
          graph::Clustering::FromLabels(*served) ==
              graph::Clustering::FromLabels(*expected);
      if (!match) {
        ++shards_mismatched;
        std::cerr << "partition mismatch on shard '" << block.query << "'\n";
      }
    }
    std::cout << "verify: " << (shards_checked - shards_mismatched) << "/"
              << shards_checked << " shards match the reference partition\n";
  }

  const std::string out_path = flags.GetString("out");
  std::ofstream out(out_path);
  if (!out) return Fail(Status::IOError("cannot write ", out_path));
  JsonWriter json(out);
  json.BeginObject();
  json.Key("benchmark").String("weber_serve");
  json.Key("clients").Number(clients);
  json.Key("blocks").Number(static_cast<long long>(dataset->blocks.size()));
  json.Key("documents").Number(static_cast<long long>(work.size()));
  WritePhaseJson(json, "assign", *assign_stats);
  json.Key("compact_all_ms").Number(compact_ms);
  WritePhaseJson(json, "query", *query_stats);
  json.Key("cache_hit_rate").Number(hit_rate);
  json.Key("verified").Bool(flags.GetBool("verify"));
  json.Key("shards_checked").Number(shards_checked);
  json.Key("shards_mismatched").Number(shards_mismatched);
  json.Key("server_stats").String(server_stats);
  json.EndObject();
  out << "\n";
  std::cout << "wrote " << out_path << "\n";

  if (assign_stats->errors > 0 || query_stats->errors > 0) {
    return Fail(Status::Internal("request errors during the storm"));
  }
  if (shards_mismatched > 0) {
    return Fail(Status::Internal(shards_mismatched,
                                 " shards diverged from the reference"));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }

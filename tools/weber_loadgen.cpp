// weber_loadgen: concurrent load generator + correctness check for
// weber_serve.
//
//   weber_serve --dataset=D --gazetteer=G --port=0 ...   (note the port)
//   weber_loadgen --dataset=D --gazetteer=G --port=N
//       --clients=4 --queries=10000 --out=BENCH_serve.json
//
// Three phases against a running server:
//   1. assign storm — every (block, document) pair assigned once, the work
//      split across --clients concurrent TCP connections;
//   2. compact — one client compacts every shard;
//   3. query storm — clients issue random queries until --queries total.
// Afterwards each shard's served partition (`dump`) is compared against a
// locally built single-threaded reference service — batch re-resolution is
// arrival-order invariant, so a quiesced, compacted shard must match
// exactly. Client-side latency percentiles (p50/p95/p99), per-phase QPS,
// retry counts and the server's cache hit rate land in --out as JSON.
//
// Transient transport failures (connection reset, short read) are retried
// up to --retries times with exponential backoff plus full jitter,
// reconnecting before each attempt; only transport errors are retried —
// a served error response is never resent, since the server may have
// already applied the request. The exception is "OVERLOADED <ms>": the
// server guarantees a shed request changed no state, so it is retried
// after honoring the retry-after hint (plus jitter). Sheds and
// DEADLINE_EXCEEDED responses are counted separately from errors and from
// transport failures, both on stdout and in the --out JSON.
//
// --overload switches to an open-loop overload experiment instead:
//   1. baseline  — closed-loop queries for --baseline_seconds;
//   2. storm     — open-loop traffic (senders pace requests by wall clock
//      and do not wait for responses) at --storm_qps, or measured baseline
//      QPS x --storm_multiplier, for --storm_seconds, optionally stamping
//      each request with --overload_deadline_ms;
//   3. recovery  — closed-loop queries again for --recovery_seconds.
// The run fails unless the server survives (post-storm stats round-trip),
// shed counters are monotonic, accepted-request p99 stays under
// --max_storm_p99_ms, recovery QPS/p50 return to within
// --recovery_tolerance of baseline, and (with --require_sheds) the storm
// actually triggered sheds or deadline rejections.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <functional>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/json_writer.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "corpus/dataset_io.h"
#include "graph/clustering.h"
#include "serve/protocol.h"
#include "serve/resolution_service.h"
#include "serve/server.h"

using namespace weber;

namespace {

int Fail(const Status& status) {
  std::cerr << "error: " << status << "\n";
  return ExitCodeForStatus(status.code());
}

struct PhaseStats {
  long long count = 0;
  long long errors = 0;
  long long retries = 0;
  /// "OVERLOADED <ms>" responses (admission-control sheds) — every shed
  /// seen, including ones a retry later turned into a success.
  long long sheds = 0;
  /// "DEADLINE_EXCEEDED" responses.
  long long deadline_exceeded = 0;
  double wall_ms = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;

  double Qps() const { return wall_ms <= 0.0 ? 0.0 : count / (wall_ms / 1e3); }
};

/// Per-client counters a phase body fills in.
struct ClientCounters {
  long long errors = 0;
  long long retries = 0;
  long long sheds = 0;
  long long deadline_exceeded = 0;
};

/// Buckets a served response line via the shared serve::ParseResponse:
/// sheds are already counted inside CallWithRetry (every OVERLOADED seen,
/// retried or not), deadline rejections and protocol errors here. A line
/// ParseResponse itself rejects (unknown status word, oversized) is an
/// error — the server is speaking a different protocol.
void ClassifyResponse(const std::string& response, ClientCounters& counters) {
  Result<serve::Response> parsed = serve::ParseResponse(response);
  if (!parsed.ok()) {
    ++counters.errors;
    return;
  }
  switch (parsed->kind) {
    case serve::Response::Kind::kOk:
    case serve::Response::Kind::kOverloaded:
      return;
    case serve::Response::Kind::kDeadlineExceeded:
      ++counters.deadline_exceeded;
      return;
    case serve::Response::Kind::kError:
      ++counters.errors;
      return;
  }
}

/// Derives the per-client jitter stream for one phase from the --jitter_seed
/// base: phases keep their historical tags, clients get distinct streams,
/// and the whole schedule moves reproducibly with the base seed.
uint64_t PhaseSeed(uint64_t base, uint64_t tag, int client) {
  return SplitMix64(base ^ tag).Next() + static_cast<uint64_t>(client);
}

// Percentile math lives in weber::obs (common/metrics.h) so the load
// generator, the server's stats JSON, and the tests all agree on the
// interpolation; obs::Percentile guards the empty-vector case.
using obs::Percentile;

/// One request with bounded retry. Transport failures (IOError: reset,
/// refused, short read) reconnect and sleep with exponential backoff plus
/// full jitter (attempt i draws uniformly from [0, min(2^(i-1), 64)) ms) so
/// a storm of clients hitting the same hiccup does not stampede back in
/// lockstep. "OVERLOADED <retry-after>" responses are also retried — the
/// server guarantees a shed request changed no state — sleeping the
/// server's hint scaled by [1, 2) jitter; every shed seen is counted in
/// `counters.sheds`. Any other served response (including an error) is
/// returned as-is, because the server may already have applied it. If the
/// retry budget runs out on sheds, the last OVERLOADED line is returned so
/// the caller can classify it rather than fail the phase.
Result<std::string> CallWithRetry(serve::LineConnection& conn,
                                  const std::string& host, int port,
                                  const std::string& request, int max_retries,
                                  Rng& rng, ClientCounters& counters) {
  Status last = Status::OK();
  bool reconnect = false;
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    if (reconnect) {
      const double cap_ms = std::min(64.0, std::ldexp(1.0, attempt - 1));
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          rng.UniformDouble() * cap_ms));
      if (Status st = conn.Connect(host, port); !st.ok()) {
        last = std::move(st);
        ++counters.retries;
        continue;
      }
      reconnect = false;
    }
    Result<std::string> response = conn.Call(request);
    if (!response.ok()) {
      last = response.status();
      if (last.code() != StatusCode::kIOError) return last;  // not transient
      reconnect = true;
      ++counters.retries;
      continue;
    }
    Result<serve::Response> parsed = serve::ParseResponse(*response);
    if (parsed.ok() && parsed->kind == serve::Response::Kind::kOverloaded) {
      ++counters.sheds;
      if (attempt == max_retries) return response;  // budget spent: surface it
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          parsed->retry_after_ms * (1.0 + rng.UniformDouble())));
      ++counters.retries;
      continue;
    }
    return response;
  }
  return Status::IOError("'", request, "' still failing after ", max_retries,
                         " retries: ", last.ToString());
}

/// Runs `body(client_index, connection, latencies, counters)` on `clients`
/// threads, each with its own connection, and merges the latency samples
/// and counters.
Result<PhaseStats> RunPhase(
    const std::string& host, int port, int clients,
    const std::function<Status(int, serve::LineConnection&,
                               std::vector<double>&, ClientCounters&)>&
        body) {
  std::vector<std::vector<double>> latencies(clients);
  std::vector<ClientCounters> counters(clients);
  std::vector<Status> failures(clients, Status::OK());
  WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int k = 0; k < clients; ++k) {
    threads.emplace_back([&, k] {
      serve::LineConnection conn;
      Status st = conn.Connect(host, port);
      if (st.ok()) st = body(k, conn, latencies[k], counters[k]);
      failures[k] = std::move(st);
    });
  }
  for (auto& t : threads) t.join();
  const double wall_ms = wall.ElapsedMillis();
  for (const Status& st : failures) {
    WEBER_RETURN_NOT_OK(st);
  }
  std::vector<double> merged;
  PhaseStats stats;
  for (int k = 0; k < clients; ++k) {
    merged.insert(merged.end(), latencies[k].begin(), latencies[k].end());
    stats.errors += counters[k].errors;
    stats.retries += counters[k].retries;
    stats.sheds += counters[k].sheds;
    stats.deadline_exceeded += counters[k].deadline_exceeded;
  }
  stats.count = static_cast<long long>(merged.size());
  stats.wall_ms = wall_ms;
  const obs::LatencySummary summary = obs::Summarize(merged);
  stats.mean_ms = summary.mean_ms;
  stats.p50_ms = summary.p50_ms;
  stats.p95_ms = summary.p95_ms;
  stats.p99_ms = summary.p99_ms;
  return stats;
}

void WritePhaseJson(JsonWriter& json, const char* key,
                    const PhaseStats& stats) {
  json.Key(key).BeginObject();
  json.Key("requests").Number(stats.count);
  // Explicit marker so downstream consumers never mistake the all-zero
  // latency fields of an empty phase for a measured 0 ms.
  if (stats.count == 0) json.Key("no_samples").Bool(true);
  json.Key("errors").Number(stats.errors);
  json.Key("retries").Number(stats.retries);
  json.Key("sheds").Number(stats.sheds);
  json.Key("deadline_exceeded").Number(stats.deadline_exceeded);
  json.Key("wall_ms").Number(stats.wall_ms);
  json.Key("qps").Number(stats.Qps());
  json.Key("mean_ms").Number(stats.mean_ms);
  json.Key("p50_ms").Number(stats.p50_ms);
  json.Key("p95_ms").Number(stats.p95_ms);
  json.Key("p99_ms").Number(stats.p99_ms);
  json.EndObject();
}

void PrintPhase(const char* name, const PhaseStats& stats) {
  std::cout << name << ": " << stats.count << " requests ("
            << stats.errors << " errors, " << stats.sheds << " sheds, "
            << stats.deadline_exceeded << " deadline, " << stats.retries
            << " retries), " << FormatDouble(stats.Qps(), 1) << " qps, p50 "
            << FormatDouble(stats.p50_ms, 3) << " ms, p95 "
            << FormatDouble(stats.p95_ms, 3) << " ms, p99 "
            << FormatDouble(stats.p99_ms, 3) << " ms\n";
}

/// Pulls a numeric field out of the server's one-line stats JSON. Good
/// enough for flat keys emitted by our own JsonWriter.
double ExtractNumber(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + at + needle.size(), nullptr);
}

/// Builds the single-threaded reference: a local service over the same
/// corpus, documents assigned in canonical order, every shard compacted.
Result<std::unique_ptr<serve::ResolutionService>> BuildReference(
    const corpus::Dataset& dataset, const extract::Gazetteer& gazetteer,
    const serve::ServiceOptions& options) {
  WEBER_ASSIGN_OR_RETURN(
      std::unique_ptr<serve::ResolutionService> reference,
      serve::ResolutionService::Create(dataset, &gazetteer, options));
  for (const corpus::Block& block : dataset.blocks) {
    for (size_t d = 0; d < block.documents.size(); ++d) {
      WEBER_RETURN_NOT_OK(
          reference->Assign(block.query, static_cast<int>(d)).status());
    }
  }
  WEBER_RETURN_NOT_OK(reference->CompactAll());
  return reference;
}

// ---------------------------------------------------------------------------
// Open-loop overload mode
// ---------------------------------------------------------------------------

/// Outcome of one open-loop storm. `latencies` holds only answered
/// requests; `sent - answered` requests were still in flight when the
/// drain timeout expired (the server never answered them).
struct StormResult {
  long long sent = 0;
  long long answered = 0;
  long long ok = 0;
  long long sheds = 0;
  long long deadline_exceeded = 0;
  long long errors = 0;
  long long transport_failures = 0;
  double wall_ms = 0.0;
  std::vector<double> latencies;
};

/// Fires `total_qps` requests/s across `clients` connections for `seconds`,
/// pacing each sender by the wall clock and never waiting for a response —
/// a per-connection reader thread matches responses to send timestamps
/// FIFO (the protocol answers in order per connection). This is the
/// open-loop shape that actually overloads a server: unlike a closed loop,
/// arrival rate does not drop when latency rises, so queues grow unless
/// the server sheds. Each client cycles through its slice of `requests`.
StormResult RunOpenLoopStorm(
    const std::string& host, int port, int clients, double total_qps,
    double seconds, const std::vector<std::vector<std::string>>& requests) {
  using Clock = std::chrono::steady_clock;
  std::vector<StormResult> per_client(clients);
  WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int k = 0; k < clients; ++k) {
    threads.emplace_back([&, k] {
      StormResult& local = per_client[k];
      const std::vector<std::string>& plan = requests[k % requests.size()];
      if (plan.empty()) return;
      serve::LineConnection conn;
      if (!conn.Connect(host, port).ok()) {
        ++local.transport_failures;
        return;
      }
      std::mutex mu;
      std::deque<Clock::time_point> inflight;
      bool sender_done = false;
      std::atomic<bool> dead{false};

      std::thread reader([&] {
        while (true) {
          Result<std::string> line = conn.ReadLine();
          if (!line.ok()) {
            bool drained;
            {
              std::lock_guard<std::mutex> lock(mu);
              drained = sender_done && inflight.empty();
            }
            if (!drained && !dead.load()) ++local.transport_failures;
            dead.store(true);
            return;
          }
          Clock::time_point sent_at;
          bool matched = false;
          {
            std::lock_guard<std::mutex> lock(mu);
            if (!inflight.empty()) {
              sent_at = inflight.front();
              inflight.pop_front();
              matched = true;
            }
          }
          if (!matched) {
            // A line with nothing in flight: the accept-time shed ("one
            // OVERLOADED line, then close") is the only case.
            if (line->rfind("OVERLOADED", 0) == 0) {
              ++local.sheds;
            } else {
              ++local.errors;
            }
            dead.store(true);
            return;
          }
          ++local.answered;
          local.latencies.push_back(
              std::chrono::duration<double, std::milli>(Clock::now() -
                                                        sent_at)
                  .count());
          Result<serve::Response> parsed = serve::ParseResponse(*line);
          if (!parsed.ok()) {
            ++local.errors;
          } else {
            switch (parsed->kind) {
              case serve::Response::Kind::kOk:
                ++local.ok;
                break;
              case serve::Response::Kind::kOverloaded:
                ++local.sheds;
                break;
              case serve::Response::Kind::kDeadlineExceeded:
                ++local.deadline_exceeded;
                break;
              case serve::Response::Kind::kError:
                ++local.errors;
                break;
            }
          }
          {
            std::lock_guard<std::mutex> lock(mu);
            if (sender_done && inflight.empty()) return;
          }
        }
      });

      const auto period = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double, std::milli>(
              1000.0 * clients / std::max(1.0, total_qps)));
      auto next = Clock::now();
      size_t cursor = 0;
      WallTimer timer;
      while (timer.ElapsedMillis() < seconds * 1e3 && !dead.load()) {
        const std::string& request = plan[cursor++ % plan.size()];
        {
          std::lock_guard<std::mutex> lock(mu);
          inflight.push_back(Clock::now());
        }
        if (!conn.SendLine(request).ok()) {
          {
            std::lock_guard<std::mutex> lock(mu);
            inflight.pop_back();
          }
          if (!dead.exchange(true)) ++local.transport_failures;
          break;
        }
        ++local.sent;
        next += period;
        std::this_thread::sleep_until(next);
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        sender_done = true;
      }
      // Drain: the server answers every admitted or shed request, so the
      // queue should empty quickly; after a bounded wait, half-close the
      // socket so a reader still blocked in ReadLine wakes with EOF.
      WallTimer drain;
      while (drain.ElapsedMillis() < 10e3 && !dead.load()) {
        {
          std::lock_guard<std::mutex> lock(mu);
          if (inflight.empty()) break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      conn.Shutdown();
      reader.join();
    });
  }
  for (auto& t : threads) t.join();
  StormResult merged;
  merged.wall_ms = wall.ElapsedMillis();
  for (StormResult& r : per_client) {
    merged.sent += r.sent;
    merged.answered += r.answered;
    merged.ok += r.ok;
    merged.sheds += r.sheds;
    merged.deadline_exceeded += r.deadline_exceeded;
    merged.errors += r.errors;
    merged.transport_failures += r.transport_failures;
    merged.latencies.insert(merged.latencies.end(), r.latencies.begin(),
                            r.latencies.end());
  }
  std::sort(merged.latencies.begin(), merged.latencies.end());
  return merged;
}

/// The --overload experiment: prefill every (block, doc) once, measure a
/// closed-loop query baseline, drive an open-loop assign storm past
/// saturation, then measure recovery and self-assert the overload
/// contract. Returns the process exit code.
int RunOverloadMode(const FlagParser& flags, const std::string& host,
                    int port, int clients, int max_retries,
                    const corpus::Dataset& dataset,
                    const std::vector<std::pair<int, int>>& work) {
  const double baseline_seconds =
      std::max(0.1, flags.GetDouble("baseline_seconds"));
  const double storm_seconds = std::max(0.1, flags.GetDouble("storm_seconds"));
  const double recovery_seconds =
      std::max(0.1, flags.GetDouble("recovery_seconds"));
  const double tolerance = std::max(0.0, flags.GetDouble("recovery_tolerance"));
  const double deadline_ms = flags.GetDouble("overload_deadline_ms");
  const double max_storm_p99 = flags.GetDouble("max_storm_p99_ms");
  const uint64_t jitter_seed =
      static_cast<uint64_t>(flags.GetInt("jitter_seed"));

  auto timed_queries = [&](double seconds, uint64_t tag) {
    return RunPhase(
        host, port, clients,
        [&, seconds, tag](int k, serve::LineConnection& conn,
                          std::vector<double>& lat,
                          ClientCounters& counters) -> Status {
          Rng rng(PhaseSeed(jitter_seed, tag, k));
          WallTimer t;
          while (t.ElapsedMillis() < seconds * 1e3) {
            const auto& pick =
                work[rng.UniformUint64(static_cast<uint64_t>(work.size()))];
            const std::string request =
                "query " + dataset.blocks[pick.first].query + " " +
                std::to_string(pick.second);
            WallTimer timer;
            WEBER_ASSIGN_OR_RETURN(
                std::string response,
                CallWithRetry(conn, host, port, request, max_retries, rng,
                              counters));
            lat.push_back(timer.ElapsedMillis());
            ClassifyResponse(response, counters);
          }
          return Status::OK();
        });
  };
  auto fetch_stats = [&]() -> Result<std::string> {
    serve::LineConnection conn;
    WEBER_RETURN_NOT_OK(conn.Connect(host, port));
    WEBER_ASSIGN_OR_RETURN(std::string response, conn.Call("stats"));
    if (response.rfind("ok ", 0) != 0) {
      return Status::Internal("stats failed: ", response);
    }
    return response.substr(3);
  };

  // Prefill: every document assigned once so baseline queries hit real
  // state (and the storm's re-assigns are idempotent repeats).
  auto prefill = RunPhase(
      host, port, clients,
      [&](int k, serve::LineConnection& conn, std::vector<double>& lat,
          ClientCounters& counters) -> Status {
        Rng rng(PhaseSeed(jitter_seed, 0xF111ULL, k));
        for (size_t i = static_cast<size_t>(k); i < work.size();
             i += static_cast<size_t>(clients)) {
          const std::string request =
              "assign " + dataset.blocks[work[i].first].query + " " +
              std::to_string(work[i].second);
          WallTimer timer;
          WEBER_ASSIGN_OR_RETURN(
              std::string response,
              CallWithRetry(conn, host, port, request, max_retries, rng,
                            counters));
          lat.push_back(timer.ElapsedMillis());
          ClassifyResponse(response, counters);
        }
        return Status::OK();
      });
  if (!prefill.ok()) return Fail(prefill.status());
  if (prefill->errors > 0) {
    return Fail(Status::Internal(prefill->errors, " errors during prefill"));
  }

  auto baseline = timed_queries(baseline_seconds, 0xBA5EULL);
  if (!baseline.ok()) return Fail(baseline.status());
  PrintPhase("baseline", *baseline);

  auto stats_before = fetch_stats();
  if (!stats_before.ok()) return Fail(stats_before.status());
  const double sheds_before = ExtractNumber(*stats_before, "total_sheds");
  const double deadline_before =
      ExtractNumber(*stats_before, "deadline_exceeded");

  double storm_qps = flags.GetDouble("storm_qps");
  if (storm_qps <= 0.0) {
    storm_qps = baseline->Qps() * std::max(1.0, flags.GetDouble("storm_multiplier"));
  }
  storm_qps = std::max(1.0, storm_qps);

  // Storm request plans: client k cycles its stride of the work list as
  // idempotent re-assigns, optionally stamped with a deadline.
  std::vector<std::vector<std::string>> plans(clients);
  for (size_t i = 0; i < work.size(); ++i) {
    std::string request = "assign " + dataset.blocks[work[i].first].query +
                          " " + std::to_string(work[i].second);
    if (deadline_ms > 0.0) {
      request += " deadline " + FormatDouble(deadline_ms, 3);
    }
    plans[i % static_cast<size_t>(clients)].push_back(std::move(request));
  }

  std::cout << "storm: open loop at " << FormatDouble(storm_qps, 1)
            << " qps for " << FormatDouble(storm_seconds, 1) << " s\n";
  const StormResult storm =
      RunOpenLoopStorm(host, port, clients, storm_qps, storm_seconds, plans);
  const double storm_p50 = Percentile(storm.latencies, 0.50);
  const double storm_p99 = Percentile(storm.latencies, 0.99);
  std::cout << "storm: " << storm.sent << " sent, " << storm.answered
            << " answered (" << storm.ok << " ok, " << storm.sheds
            << " sheds, " << storm.deadline_exceeded << " deadline, "
            << storm.errors << " errors, " << storm.transport_failures
            << " transport), p50 " << FormatDouble(storm_p50, 3) << " ms, p99 "
            << FormatDouble(storm_p99, 3) << " ms\n";

  auto stats_after = fetch_stats();
  if (!stats_after.ok()) {
    return Fail(Status::Internal("server did not survive the storm: ",
                                 stats_after.status().ToString()));
  }
  const double sheds_after = ExtractNumber(*stats_after, "total_sheds");
  const double deadline_after =
      ExtractNumber(*stats_after, "deadline_exceeded");

  // A genuinely degraded server misses the bar on every attempt; an
  // environmental blip (CPU stolen by an unrelated process mid-phase)
  // passes on a later one, so measure recovery up to three times and
  // keep the best attempt. The server serves identical traffic each
  // time — only the measurement repeats.
  const double qps_floor = baseline->Qps() * (1.0 - tolerance);
  // Small absolute slack on top of the relative bound: baseline p50 on a
  // compacted in-memory shard is tens of microseconds, where scheduler
  // noise alone exceeds any percentage.
  const double p50_ceiling = baseline->p50_ms * (1.0 + tolerance) + 0.25;
  Result<PhaseStats> recovery = timed_queries(recovery_seconds, 0x4EC0ULL);
  if (!recovery.ok()) return Fail(recovery.status());
  int recovery_attempts = 1;
  while ((recovery->Qps() < qps_floor || recovery->p50_ms > p50_ceiling) &&
         recovery_attempts < 3) {
    PrintPhase("recovery (retrying)", *recovery);
    Result<PhaseStats> again = timed_queries(recovery_seconds, 0x4EC0ULL);
    if (!again.ok()) return Fail(again.status());
    ++recovery_attempts;
    if (again->Qps() > recovery->Qps()) recovery = std::move(again);
  }
  PrintPhase("recovery", *recovery);

  // The overload contract, self-asserted.
  std::vector<std::string> violations;
  if (storm.errors > 0) {
    violations.push_back("storm produced " + std::to_string(storm.errors) +
                         " error responses");
  }
  if (sheds_after < sheds_before || deadline_after < deadline_before) {
    violations.push_back("server shed counters went backwards");
  }
  if (flags.GetBool("require_sheds")) {
    const double server_delta = (sheds_after - sheds_before) +
                                (deadline_after - deadline_before);
    if (storm.sheds + storm.deadline_exceeded <= 0 && server_delta <= 0.0) {
      violations.push_back(
          "storm was expected to trigger sheds or deadline rejections but "
          "did not");
    }
  }
  if (max_storm_p99 > 0.0 && storm_p99 > max_storm_p99) {
    violations.push_back("storm p99 " + FormatDouble(storm_p99, 3) +
                         " ms exceeds the " +
                         FormatDouble(max_storm_p99, 3) + " ms budget");
  }
  if (recovery->Qps() < qps_floor) {
    violations.push_back("recovery qps " + FormatDouble(recovery->Qps(), 1) +
                         " below " + FormatDouble(qps_floor, 1) +
                         " (baseline " + FormatDouble(baseline->Qps(), 1) +
                         ")");
  }
  if (recovery->p50_ms > p50_ceiling) {
    violations.push_back("recovery p50 " +
                         FormatDouble(recovery->p50_ms, 3) + " ms above " +
                         FormatDouble(p50_ceiling, 3) + " ms (baseline " +
                         FormatDouble(baseline->p50_ms, 3) + " ms)");
  }

  const std::string out_path = flags.GetString("out");
  std::ofstream out(out_path);
  if (!out) return Fail(Status::IOError("cannot write ", out_path));
  JsonWriter json(out);
  json.BeginObject();
  json.Key("benchmark").String("weber_serve_overload");
  json.Key("clients").Number(clients);
  json.Key("jitter_seed").Number(static_cast<long long>(jitter_seed));
  json.Key("storm_qps_target").Number(storm_qps);
  WritePhaseJson(json, "baseline", *baseline);
  json.Key("storm").BeginObject();
  json.Key("sent").Number(storm.sent);
  json.Key("answered").Number(storm.answered);
  if (storm.latencies.empty()) json.Key("no_samples").Bool(true);
  json.Key("ok").Number(storm.ok);
  json.Key("sheds").Number(storm.sheds);
  json.Key("deadline_exceeded").Number(storm.deadline_exceeded);
  json.Key("errors").Number(storm.errors);
  json.Key("transport_failures").Number(storm.transport_failures);
  json.Key("wall_ms").Number(storm.wall_ms);
  json.Key("p50_ms").Number(storm_p50);
  json.Key("p99_ms").Number(storm_p99);
  json.EndObject();
  WritePhaseJson(json, "recovery", *recovery);
  json.Key("recovery_attempts").Number(recovery_attempts);
  json.Key("server_sheds_delta").Number(sheds_after - sheds_before);
  json.Key("server_deadline_delta").Number(deadline_after - deadline_before);
  json.Key("violations").Number(static_cast<long long>(violations.size()));
  json.Key("server_stats").String(*stats_after);
  json.EndObject();
  out << "\n";
  std::cout << "wrote " << out_path << "\n";

  if (!violations.empty()) {
    for (const std::string& v : violations) {
      std::cerr << "overload contract violation: " << v << "\n";
    }
    return Fail(Status::Internal(violations.size(),
                                 " overload contract violations"));
  }
  std::cout << "overload contract held: server shed, stayed up, and "
               "recovered\n";
  return 0;
}

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("host", "127.0.0.1", "server address");
  flags.AddInt("port", 0, "server TCP port (required)");
  flags.AddInt("clients", 4, "concurrent client connections");
  flags.AddInt("queries", 10000, "total queries in the query storm");
  flags.AddString("dataset", "", "the dataset the server was started with");
  flags.AddString("gazetteer", "",
                  "the gazetteer the server was started with");
  flags.AddBool("verify", true,
                "compare served partitions against a local reference");
  flags.AddDouble("train_fraction", 0.10, "must match the server");
  flags.AddInt("seed", 0x5E21E, "must match the server's calibration seed");
  flags.AddInt("query_seed", 1, "query storm randomization seed");
  flags.AddInt("jitter_seed", 0xB0FF,
               "base seed for the retry/backoff jitter streams (recorded "
               "in --out so a run can be replayed exactly)");
  flags.AddInt("retries", 5,
               "max reconnect-and-resend attempts per transport failure");
  flags.AddInt("match_docs", 0,
               "documents per `match` request in the match storm "
               "(0 disables the phase)");
  flags.AddInt("matches", 1000,
               "total match requests when --match_docs > 0");
  flags.AddString("out", "BENCH_serve.json", "benchmark report path");
  flags.AddBool("overload", false,
                "run the open-loop overload experiment instead of the "
                "three-phase correctness run");
  flags.AddDouble("baseline_seconds", 2.0,
                  "closed-loop baseline duration (overload mode)");
  flags.AddDouble("storm_seconds", 3.0,
                  "open-loop storm duration (overload mode)");
  flags.AddDouble("recovery_seconds", 2.0,
                  "closed-loop recovery duration (overload mode)");
  flags.AddDouble("storm_multiplier", 4.0,
                  "storm rate as a multiple of measured baseline qps");
  flags.AddDouble("storm_qps", 0.0,
                  "absolute storm rate; overrides --storm_multiplier");
  flags.AddDouble("overload_deadline_ms", 0.0,
                  "deadline stamped on every storm request (0 = none)");
  flags.AddBool("require_sheds", false,
                "fail unless the storm triggered sheds or deadline "
                "rejections");
  flags.AddDouble("recovery_tolerance", 0.25,
                  "allowed relative QPS/p50 regression after the storm");
  flags.AddDouble("max_storm_p99_ms", 0.0,
                  "answered-request p99 budget during the storm (0 = off)");
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--help") {
      std::cout << flags.Usage(
          "weber_loadgen — concurrent load generator and partition "
          "checker for weber_serve");
      return 0;
    }
  }
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);
  if (!flags.WasSet("port") || flags.GetInt("port") <= 0) {
    return Fail(Status::InvalidArgument("--port is required"));
  }
  const std::string host = flags.GetString("host");
  const int port = flags.GetInt("port");
  const int clients = std::max(1, flags.GetInt("clients"));
  const long long total_queries = std::max(1, flags.GetInt("queries"));
  const int max_retries = std::max(0, flags.GetInt("retries"));
  const uint64_t jitter_seed =
      static_cast<uint64_t>(flags.GetInt("jitter_seed"));

  auto dataset = corpus::LoadDatasetFromFile(flags.GetString("dataset"));
  if (!dataset.ok()) return Fail(dataset.status());

  // The global assignment work list: every (block, document) once.
  std::vector<std::pair<int, int>> work;
  for (size_t b = 0; b < dataset->blocks.size(); ++b) {
    for (size_t d = 0; d < dataset->blocks[b].documents.size(); ++d) {
      work.emplace_back(static_cast<int>(b), static_cast<int>(d));
    }
  }
  if (work.empty()) return Fail(Status::InvalidArgument("empty dataset"));

  if (flags.GetBool("overload")) {
    return RunOverloadMode(flags, host, port, clients, max_retries, *dataset,
                           work);
  }

  // Phase 1: assign storm. Client k handles work items k, k+clients, ...
  auto assign_stats = RunPhase(
      host, port, clients,
      [&](int k, serve::LineConnection& conn, std::vector<double>& lat,
          ClientCounters& counters) -> Status {
        Rng backoff_rng(PhaseSeed(jitter_seed, 0xB0FFULL, k));
        for (size_t i = static_cast<size_t>(k); i < work.size();
             i += static_cast<size_t>(clients)) {
          const std::string request =
              "assign " + dataset->blocks[work[i].first].query + " " +
              std::to_string(work[i].second);
          WallTimer timer;
          WEBER_ASSIGN_OR_RETURN(
              std::string response,
              CallWithRetry(conn, host, port, request, max_retries,
                            backoff_rng, counters));
          lat.push_back(timer.ElapsedMillis());
          ClassifyResponse(response, counters);
        }
        return Status::OK();
      });
  if (!assign_stats.ok()) return Fail(assign_stats.status());
  PrintPhase("assign", *assign_stats);

  // Phase 2: compact every shard (single client; the server may also run
  // background compactions of its own).
  double compact_ms = 0.0;
  {
    serve::LineConnection conn;
    if (auto st = conn.Connect(host, port); !st.ok()) return Fail(st);
    WallTimer timer;
    auto response = conn.Call("compact");
    if (!response.ok()) return Fail(response.status());
    compact_ms = timer.ElapsedMillis();
    if (response->rfind("ok", 0) != 0) {
      return Fail(Status::Internal("compact failed: ", *response));
    }
    std::cout << "compact: all shards in " << FormatDouble(compact_ms, 1)
              << " ms\n";
  }

  // Phase 3: query storm. A shared ticket counter bounds the total.
  std::atomic<long long> tickets{0};
  const uint64_t query_seed =
      static_cast<uint64_t>(flags.GetInt("query_seed"));
  auto query_stats = RunPhase(
      host, port, clients,
      [&](int k, serve::LineConnection& conn, std::vector<double>& lat,
          ClientCounters& counters) -> Status {
        Rng rng(query_seed + static_cast<uint64_t>(k) * 0x9E37ULL);
        while (tickets.fetch_add(1, std::memory_order_relaxed) <
               total_queries) {
          const auto& pick =
              work[rng.UniformUint64(static_cast<uint64_t>(work.size()))];
          const std::string request =
              "query " + dataset->blocks[pick.first].query + " " +
              std::to_string(pick.second);
          WallTimer timer;
          WEBER_ASSIGN_OR_RETURN(
              std::string response,
              CallWithRetry(conn, host, port, request, max_retries, rng,
                            counters));
          lat.push_back(timer.ElapsedMillis());
          ClassifyResponse(response, counters);
        }
        return Status::OK();
      });
  if (!query_stats.ok()) return Fail(query_stats.status());
  PrintPhase("query", *query_stats);

  // Phase 3b (opt-in): match storm. Each request asks the server to
  // one-to-one match a random distinct-document batch against its shard's
  // snapshot, built through the shared protocol formatter so the request
  // shape cannot drift from the server's parser. A served "ok" whose pair
  // count disagrees with the request is an error — the server broke the
  // match contract, not the transport.
  const int match_docs = std::max(0, flags.GetInt("match_docs"));
  const long long total_matches = std::max(1, flags.GetInt("matches"));
  const bool match_run = match_docs > 0;
  PhaseStats match_phase;
  if (match_run) {
    std::atomic<long long> match_tickets{0};
    auto match_stats = RunPhase(
        host, port, clients,
        [&](int k, serve::LineConnection& conn, std::vector<double>& lat,
            ClientCounters& counters) -> Status {
          Rng rng(query_seed + 0xA7C4ULL +
                  static_cast<uint64_t>(k) * 0x9E37ULL);
          while (match_tickets.fetch_add(1, std::memory_order_relaxed) <
                 total_matches) {
            const size_t b = static_cast<size_t>(
                rng.UniformUint64(static_cast<uint64_t>(
                    dataset->blocks.size())));
            const corpus::Block& block = dataset->blocks[b];
            const int block_size = static_cast<int>(block.documents.size());
            serve::Request request;
            request.op = serve::Request::Op::kMatch;
            request.block = block.query;
            request.docs = rng.SampleWithoutReplacement(
                block_size, std::min(match_docs, block_size));
            const std::string line = serve::FormatRequest(request);
            WallTimer timer;
            WEBER_ASSIGN_OR_RETURN(
                std::string response,
                CallWithRetry(conn, host, port, line, max_retries, rng,
                              counters));
            lat.push_back(timer.ElapsedMillis());
            ClassifyResponse(response, counters);
            if (response.rfind("ok", 0) == 0) {
              auto pairs = serve::ParseMatchResponse(response);
              if (!pairs.ok() || pairs->size() != request.docs.size()) {
                ++counters.errors;
              }
            }
          }
          return Status::OK();
        });
    if (!match_stats.ok()) return Fail(match_stats.status());
    match_phase = *match_stats;
    PrintPhase("match", match_phase);
  }

  // Server-side stats (cache hit rate etc.) as reported after the storm.
  std::string server_stats;
  {
    serve::LineConnection conn;
    if (auto st = conn.Connect(host, port); !st.ok()) return Fail(st);
    auto response = conn.Call("stats");
    if (!response.ok()) return Fail(response.status());
    if (response->rfind("ok ", 0) != 0) {
      return Fail(Status::Internal("stats failed: ", *response));
    }
    server_stats = response->substr(3);
  }
  const double hit_rate = ExtractNumber(server_stats, "hit_rate");
  std::cout << "cache hit rate: " << FormatDouble(hit_rate, 4) << "\n";

  // Metrics round-trip: the `metrics` verb answers "ok <n>" followed by n
  // Prometheus text lines. Read exactly n lines and sanity-check the
  // payload shape so a malformed exporter fails the run loudly.
  long long metrics_lines = 0;
  long long metrics_families = 0;
  {
    serve::LineConnection conn;
    if (auto st = conn.Connect(host, port); !st.ok()) return Fail(st);
    if (auto st = conn.SendLine("metrics"); !st.ok()) return Fail(st);
    auto header = conn.ReadLine();
    if (!header.ok()) return Fail(header.status());
    auto count = serve::ParseMetricsHeader(*header);
    if (!count.ok()) return Fail(count.status());
    metrics_lines = *count;
    auto payload = serve::ReadMetricsPayload(
        metrics_lines, [&conn] { return conn.ReadLine(); });
    if (!payload.ok()) return Fail(payload.status());
    for (const std::string& line : *payload) {
      if (line.rfind("# HELP", 0) == 0) ++metrics_families;
    }
    if (metrics_lines <= 0 || metrics_families <= 0) {
      return Fail(Status::Internal("metrics payload looks empty (", metrics_lines,
                                   " lines, ", metrics_families, " families)"));
    }
    std::cout << "metrics: " << metrics_families << " families in "
              << metrics_lines << " lines\n";
  }

  // Verification: served partitions vs the single-threaded reference.
  int shards_checked = 0;
  int shards_mismatched = 0;
  if (flags.GetBool("verify")) {
    std::ifstream gz(flags.GetString("gazetteer"));
    if (!gz) {
      return Fail(Status::IOError("cannot read ",
                                  flags.GetString("gazetteer")));
    }
    auto gazetteer = corpus::LoadGazetteer(gz);
    if (!gazetteer.ok()) return Fail(gazetteer.status());
    serve::ServiceOptions options;
    options.train_fraction = flags.GetDouble("train_fraction");
    options.calibration_seed = static_cast<uint64_t>(flags.GetInt("seed"));
    auto reference = BuildReference(*dataset, *gazetteer, options);
    if (!reference.ok()) return Fail(reference.status());

    serve::LineConnection conn;
    if (auto st = conn.Connect(host, port); !st.ok()) return Fail(st);
    for (const corpus::Block& block : dataset->blocks) {
      auto response = conn.Call("dump " + block.query);
      if (!response.ok()) return Fail(response.status());
      auto served = serve::ParseDumpResponse(*response);
      if (!served.ok()) return Fail(served.status());
      auto expected = (*reference)->DumpPartition(block.query);
      if (!expected.ok()) return Fail(expected.status());
      ++shards_checked;
      const bool match =
          served->size() == expected->size() &&
          graph::Clustering::FromLabels(*served) ==
              graph::Clustering::FromLabels(*expected);
      if (!match) {
        ++shards_mismatched;
        std::cerr << "partition mismatch on shard '" << block.query << "'\n";
      }
    }
    std::cout << "verify: " << (shards_checked - shards_mismatched) << "/"
              << shards_checked << " shards match the reference partition\n";
  }

  const std::string out_path = flags.GetString("out");
  std::ofstream out(out_path);
  if (!out) return Fail(Status::IOError("cannot write ", out_path));
  JsonWriter json(out);
  json.BeginObject();
  json.Key("benchmark").String("weber_serve");
  json.Key("clients").Number(clients);
  json.Key("jitter_seed").Number(flags.GetInt("jitter_seed"));
  json.Key("blocks").Number(static_cast<long long>(dataset->blocks.size()));
  json.Key("documents").Number(static_cast<long long>(work.size()));
  WritePhaseJson(json, "assign", *assign_stats);
  json.Key("compact_all_ms").Number(compact_ms);
  WritePhaseJson(json, "query", *query_stats);
  // Only when exercised, so default runs stay byte-compatible.
  if (match_run) WritePhaseJson(json, "match", match_phase);
  // Per-verb shed rollup: every verb goes through the same CallWithRetry,
  // so `match` honors the OVERLOADED retry-after hint exactly like
  // `assign` — this records which verbs actually got shed, which the
  // per-phase objects bury.
  json.Key("sheds_by_verb").BeginObject();
  json.Key("assign").Number(assign_stats->sheds);
  json.Key("query").Number(query_stats->sheds);
  if (match_run) json.Key("match").Number(match_phase.sheds);
  json.EndObject();
  json.Key("cache_hit_rate").Number(hit_rate);
  json.Key("metrics_lines").Number(metrics_lines);
  json.Key("metrics_families").Number(metrics_families);
  json.Key("verified").Bool(flags.GetBool("verify"));
  json.Key("shards_checked").Number(shards_checked);
  json.Key("shards_mismatched").Number(shards_mismatched);
  json.Key("server_stats").String(server_stats);
  json.EndObject();
  out << "\n";
  std::cout << "wrote " << out_path << "\n";

  if (assign_stats->errors > 0 || query_stats->errors > 0 ||
      match_phase.errors > 0) {
    return Fail(Status::Internal("request errors during the storm"));
  }
  if (shards_mismatched > 0) {
    return Fail(Status::Internal(shards_mismatched,
                                 " shards diverged from the reference"));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }

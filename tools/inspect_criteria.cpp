// Inspection tool: per-(function x criterion) cross-validated scores,
// all-pairs generalization accuracy and post-closure Fp for every block.
// Usage: inspect_criteria [weps]

#include <iostream>
#include "core/weber.h"
#include "ml/splitter.h"
#include "core/decision.h"
using namespace weber;

int main(int argc, char** argv) {
  auto cfg = corpus::Www05Config();
  if (argc > 1 && std::string(argv[1]) == "weps") cfg = corpus::WepsConfig();
  auto data = corpus::SyntheticWebGenerator(cfg).Generate();
  auto fns = core::MakeStandardFunctions();
  extract::FeatureExtractor fx(&data->gazetteer, {});
  Rng master(123);
  for (size_t b = 0; b < data->dataset.blocks.size(); ++b) {
    const auto& block = data->dataset.blocks[b];
    std::vector<extract::PageInput> pages;
    for (const auto& d : block.documents) pages.push_back({d.url, d.text});
    auto bundles = *fx.ExtractBlock(pages, block.query);
    int n = block.num_documents();
    Rng rng = master.Fork(b);
    auto tp = ml::SampleTrainingPairs(n, 0.10, &rng, 10);
    std::cout << block.query << " (n=" << n << ", K=" << block.NumEntities() << ")\n";
    auto factories = core::MakeStandardCriterionFactories(10, 8);
    for (const auto& fn : fns) {
      auto sims = core::ComputeSimilarityMatrix(*fn, bundles);
      std::vector<ml::LabeledSimilarity> training;
      for (auto& [i, j] : tp) training.push_back({sims.Get(i,j), block.entity_labels[i]==block.entity_labels[j]});
      std::cout << "  " << fn->name() << ":";
      for (auto& factory : factories) {
        auto crit = factory();
        (void)crit->Fit(training, &rng);
        double cv = *core::CrossValidatedAccuracy(factory, training, 3, &rng);
        // all-pairs accuracy + Fp via transitive closure
        graph::DecisionGraph dg(n, 0, 1);
        long long correct = 0, total = 0;
        for (int i = 0; i < n; ++i) for (int j = i+1; j < n; ++j) {
          bool dec = crit->Decide(sims.Get(i,j));
          dg.Set(i, j, dec ? 1 : 0);
          bool truth = block.entity_labels[i]==block.entity_labels[j];
          correct += (dec==truth); total++;
        }
        auto clus = graph::TransitiveClosure(dg);
        auto rep = *eval::Evaluate(block.GroundTruth(), clus);
        std::cout << "  " << crit->name() << " cv=" << FormatDouble(cv,3)
                  << " gen=" << FormatDouble((double)correct/total,3)
                  << " Fp=" << FormatDouble(rep.fp_measure,3);
      }
      std::cout << "\n";
    }
  }
  return 0;
}

// weber_crashtest: crash-recovery harness for weber_serve's durable shards.
//
//   weber_crashtest --dataset=D --gazetteer=G --serve_bin=./weber_serve
//       --data_dir=/tmp/weber-crash --cycles=20 --seed=7
//
// Each cycle forks a child `weber_serve --nostdio --port=0 --data-dir=...
// --fsync=always`, fires assigns at it over TCP in a seeded random order,
// and SIGKILLs it at a seeded random point — sometimes with a final request
// in flight whose response is never read, so the kill lands while the write
// may or may not have reached the WAL. The next cycle's startup recovers
// from the newest snapshot plus WAL replay; before resuming the storm the
// harness compacts every shard, dumps the recovered partitions and asserts:
//
//   (a) zero acked-write loss — every (block, doc) whose `assign` was
//       answered "ok" before the kill is present in the recovered shard;
//   (b) partition correctness — each recovered, compacted shard equals a
//       single-threaded in-process reference that re-assigns exactly the
//       recovered documents. Batch re-resolution is arrival-order
//       invariant, so any crash/recovery interleaving must land on the
//       same partition.
//
// The final cycle finishes all remaining work, verifies once more, then
// stops the child with SIGTERM and asserts a graceful exit 0 (the
// shutdown-drain path). Exit status: 0 = every cycle passed.
//
// --fleet=N switches to the fleet kill drill instead: N durable backends
// are forked, an in-process weber::router fronts them over TCP, writer
// threads storm assigns through the router (retrying OVERLOADED and
// Unavailable answers — both retry-safe, assign is idempotent) while a
// reader thread queries continuously. At --kill_at of the work acked, the
// backend owning the first block is SIGKILLed mid-storm, left dead while
// the storm keeps running, then restarted on the same port; the drill then
// asserts (a) every acked write is present in the owners' dumps after
// WAL/snapshot recovery — zero acked-write loss through a backend kill —
// (b) reads kept succeeding during the outage (failover), and (c) every
// backend exits 0 on SIGTERM. Results land in --out (BENCH_fleet.json).
//
// --rebalance (with --router_bin) is the fleet self-healing drill: the
// router runs as a forked weber_router child with a state file and warm
// standbys, and the harness SIGKILLs in turn a rebalance move's source
// mid-export (plan reports the failure, a re-run completes), the router
// itself mid-plan (the respawn recovers its override table from the state
// file), and finally a block's owner for good (the standby is promoted and
// writes recover). Zero acked-write loss end to end; BENCH_rebalance.json.

#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/flags.h"
#include "common/json_writer.h"
#include "common/random.h"
#include "common/string_util.h"
#include "corpus/dataset_io.h"
#include "graph/clustering.h"
#include "router/router.h"
#include "serve/protocol.h"
#include "serve/resolution_service.h"
#include "serve/server.h"

using namespace weber;

namespace {

int Fail(const Status& status) {
  std::cerr << "error: " << status << "\n";
  return ExitCodeForStatus(status.code());
}

/// A running weber_serve child: pid, its stdout pipe, and the parsed port.
struct ServerProcess {
  pid_t pid = -1;
  int out_fd = -1;
  int port = -1;
};

void CloseProcess(ServerProcess* server) {
  if (server->out_fd >= 0) ::close(server->out_fd);
  server->out_fd = -1;
  server->pid = -1;
  server->port = -1;
}

/// SIGKILLs the child and reaps it. The whole point of the harness: the
/// process gets no chance to flush anything.
void KillHard(ServerProcess* server) {
  if (server->pid > 0) {
    ::kill(server->pid, SIGKILL);
    int status = 0;
    while (::waitpid(server->pid, &status, 0) < 0 && errno == EINTR) {
    }
  }
  CloseProcess(server);
}

/// SIGTERMs the child and returns its wait status (for the graceful-exit
/// assertion).
Result<int> StopSoft(ServerProcess* server) {
  if (server->pid <= 0) return Status::FailedPrecondition("no child");
  if (::kill(server->pid, SIGTERM) != 0) {
    return Status::IOError("kill(SIGTERM): ", std::strerror(errno));
  }
  int status = 0;
  while (::waitpid(server->pid, &status, 0) < 0 && errno == EINTR) {
  }
  CloseProcess(server);
  return status;
}

/// Reads the child's stdout until the "listening on 127.0.0.1:<port>"
/// announcement (or EOF / 30 s timeout, both of which mean startup failed).
Result<int> AwaitListeningPort(int fd) {
  std::string buffer;
  char chunk[512];
  const std::string needle = "listening on 127.0.0.1:";
  while (true) {
    size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      const size_t at = line.find(needle);
      if (at != std::string::npos) {
        return std::atoi(line.c_str() + at + needle.size());
      }
      continue;
    }
    pollfd pfd = {fd, POLLIN, 0};
    int rc = ::poll(&pfd, 1, 30000);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return Status::IOError("timed out waiting for the server");
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::IOError("server exited before announcing its port");
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
}

/// fork/execs `serve_bin` with the durable-serving flags, stdout piped back
/// so the ephemeral port announcement can be read.
Result<ServerProcess> SpawnServer(const std::string& serve_bin,
                                  const std::vector<std::string>& args) {
  int fds[2];
  if (::pipe(fds) != 0) {
    return Status::IOError("pipe(): ", std::strerror(errno));
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return Status::IOError("fork(): ", std::strerror(errno));
  }
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(serve_bin.c_str()));
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(serve_bin.c_str(), argv.data());
    std::fprintf(stderr, "execv(%s): %s\n", serve_bin.c_str(),
                 std::strerror(errno));
    _exit(127);
  }
  ::close(fds[1]);
  ServerProcess server;
  server.pid = pid;
  server.out_fd = fds[0];
  Result<int> port = AwaitListeningPort(fds[0]);
  if (!port.ok()) {
    KillHard(&server);
    return port.status();
  }
  server.port = port.ValueOrDie();
  return server;
}

/// Wipes the two-level data directory (shard dirs holding WAL + snapshots)
/// so every run starts from a cold store.
Status WipeDataDir(const std::string& dir) {
  if (!FileExists(dir)) return Status::OK();
  WEBER_ASSIGN_OR_RETURN(std::vector<std::string> entries,
                         ListDirectory(dir));
  for (const std::string& entry : entries) {
    const std::string sub = dir + "/" + entry;
    auto files = ListDirectory(sub);
    if (files.ok()) {
      for (const std::string& f : files.ValueOrDie()) {
        WEBER_RETURN_NOT_OK(RemoveFileIfExists(sub + "/" + f));
      }
      if (::rmdir(sub.c_str()) != 0) {
        return Status::IOError("rmdir(", sub, "): ", std::strerror(errno));
      }
    } else {
      WEBER_RETURN_NOT_OK(RemoveFileIfExists(sub));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Fleet kill drill (--fleet=N)
// ---------------------------------------------------------------------------

/// Per-writer counters for the fleet storm.
struct WriterCounters {
  long long acked = 0;
  long long sheds = 0;        // OVERLOADED answers (retried)
  long long unavailable = 0;  // err Unavailable answers (retried)
  long long transport = 0;    // failures talking to the router itself
};

int RunFleetMode(const FlagParser& flags, const corpus::Dataset& dataset) {
  const int n_backends = flags.GetInt("fleet");
  const int n_writers = std::max(1, flags.GetInt("writers"));
  const double kill_at =
      std::min(0.9, std::max(0.05, flags.GetDouble("kill_at")));
  const std::string serve_bin = flags.GetString("serve_bin");
  const std::string data_dir = flags.GetString("data_dir");
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));

  // Work list: every (block, doc) once, seeded random order.
  std::vector<std::pair<int, int>> work;
  for (size_t b = 0; b < dataset.blocks.size(); ++b) {
    for (size_t d = 0; d < dataset.blocks[b].documents.size(); ++d) {
      work.emplace_back(static_cast<int>(b), static_cast<int>(d));
    }
  }
  if (work.empty()) return Fail(Status::InvalidArgument("empty dataset"));
  rng.Shuffle(&work);

  auto backend_args = [&](int i, int port) {
    return std::vector<std::string>{
        "--dataset=" + flags.GetString("dataset"),
        "--gazetteer=" + flags.GetString("gazetteer"),
        "--data-dir=" + data_dir + "/backend" + std::to_string(i),
        "--fsync=always",
        "--port=" + std::to_string(port),
        "--nostdio",
        "--max_delay_ms=0.5",
        "--train_fraction=" +
            FormatDouble(flags.GetDouble("train_fraction"), 6),
        "--seed=" + std::to_string(flags.GetInt("cal_seed")),
    };
  };

  std::vector<ServerProcess> servers(static_cast<size_t>(n_backends));
  std::vector<std::string> endpoints;
  for (int i = 0; i < n_backends; ++i) {
    if (auto st = WipeDataDir(data_dir + "/backend" + std::to_string(i));
        !st.ok()) {
      return Fail(st);
    }
    auto server = SpawnServer(serve_bin, backend_args(i, 0));
    if (!server.ok()) return Fail(server.status());
    servers[static_cast<size_t>(i)] = *server;
    endpoints.push_back("127.0.0.1:" + std::to_string(server->port));
  }
  auto kill_fleet = [&] {
    for (ServerProcess& s : servers) KillHard(&s);
  };

  // The router, fronted over TCP exactly as weber_router would run it, but
  // in-process so the drill can watch backend health directly. Fast probe
  // cadence keeps detection and recovery inside the drill's time budget.
  router::RouterOptions ropts;
  ropts.probe_interval_ms = 50.0;
  ropts.probe_timeout_ms = 250.0;
  ropts.health.down_probe_interval_ms = 100.0;
  ropts.retry_backoff_ms = 5.0;
  ropts.retry_after_ms = 25.0;
  ropts.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  router::Router router(endpoints, ropts);
  router.Start();
  serve::LineServer front(
      [&router](const std::string& line, bool* quit) {
        return router.HandleLine(line, quit);
      });
  if (auto st = front.StartTcp(0); !st.ok()) {
    kill_fleet();
    return Fail(st);
  }
  const int router_port = front.tcp_port();

  // The victim owns the first block, so the kill is guaranteed to land on
  // a backend with write traffic.
  const size_t victim = router::Router::RouteOrder(
      dataset.blocks[0].query, static_cast<size_t>(n_backends))[0];

  std::atomic<size_t> acked_count{0};
  std::atomic<bool> outage{false};
  std::atomic<bool> stop_reader{false};
  std::atomic<long long> reads_ok{0};
  std::atomic<long long> reads_ok_during_outage{0};
  std::atomic<long long> reads_shed{0};
  std::atomic<long long> read_failures{0};

  // Reader: queries random documents through the router for the whole
  // drill. During the outage these must keep succeeding — reads fail over
  // to a live backend inside one request, so even a shed is tolerated but
  // a transport failure or error response is not.
  std::thread reader([&] {
    Rng reader_rng(static_cast<uint64_t>(flags.GetInt("seed")) ^ 0x4EADULL);
    serve::LineConnection conn;
    if (!conn.Connect("127.0.0.1", router_port).ok()) {
      read_failures.fetch_add(1);
      return;
    }
    while (!stop_reader.load(std::memory_order_relaxed)) {
      const auto& pick =
          work[reader_rng.UniformUint64(static_cast<uint64_t>(work.size()))];
      const std::string request =
          "query " + dataset.blocks[pick.first].query + " " +
          std::to_string(pick.second);
      const bool during_outage = outage.load(std::memory_order_relaxed);
      Result<std::string> response = conn.Call(request);
      if (!response.ok()) {
        read_failures.fetch_add(1);
        if (!conn.Connect("127.0.0.1", router_port).ok()) return;
        continue;
      }
      Result<serve::Response> parsed = serve::ParseResponse(*response);
      if (!parsed.ok()) {
        read_failures.fetch_add(1);
      } else if (parsed->ok()) {
        reads_ok.fetch_add(1);
        if (during_outage) reads_ok_during_outage.fetch_add(1);
      } else if (parsed->kind == serve::Response::Kind::kOverloaded) {
        reads_shed.fetch_add(1);
      } else {
        read_failures.fetch_add(1);
      }
    }
  });

  // Writers: stride the work list, each retrying every item until acked.
  // OVERLOADED honors the hint; err Unavailable (the write may have
  // applied) retries too — assign is idempotent, which is exactly the
  // client contract the router documents.
  std::vector<WriterCounters> writer_counters(
      static_cast<size_t>(n_writers));
  std::vector<Status> writer_failures(static_cast<size_t>(n_writers),
                                      Status::OK());
  std::vector<std::thread> writers;
  for (int w = 0; w < n_writers; ++w) {
    writers.emplace_back([&, w] {
      WriterCounters& counters = writer_counters[static_cast<size_t>(w)];
      Rng writer_rng(static_cast<uint64_t>(flags.GetInt("seed")) +
                     0xA5A5ULL * static_cast<uint64_t>(w + 1));
      serve::LineConnection conn;
      if (auto st = conn.Connect("127.0.0.1", router_port); !st.ok()) {
        writer_failures[static_cast<size_t>(w)] = st;
        return;
      }
      for (size_t i = static_cast<size_t>(w); i < work.size();
           i += static_cast<size_t>(n_writers)) {
        const std::string request =
            "assign " + dataset.blocks[work[i].first].query + " " +
            std::to_string(work[i].second);
        bool done = false;
        for (int attempt = 0; attempt < 2000 && !done; ++attempt) {
          Result<std::string> response = conn.Call(request);
          if (!response.ok()) {
            ++counters.transport;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            (void)conn.Connect("127.0.0.1", router_port);
            continue;
          }
          Result<serve::Response> parsed = serve::ParseResponse(*response);
          if (!parsed.ok()) {
            writer_failures[static_cast<size_t>(w)] = parsed.status();
            return;
          }
          switch (parsed->kind) {
            case serve::Response::Kind::kOk:
              ++counters.acked;
              acked_count.fetch_add(1, std::memory_order_relaxed);
              done = true;
              break;
            case serve::Response::Kind::kOverloaded:
              ++counters.sheds;
              std::this_thread::sleep_for(
                  std::chrono::duration<double, std::milli>(
                      parsed->retry_after_ms *
                      (1.0 + writer_rng.UniformDouble())));
              break;
            case serve::Response::Kind::kError:
              if (parsed->code == StatusCode::kUnavailable) {
                ++counters.unavailable;
                std::this_thread::sleep_for(std::chrono::milliseconds(10));
                break;
              }
              writer_failures[static_cast<size_t>(w)] = Status::Internal(
                  "assign rejected through the router: ", *response);
              return;
            case serve::Response::Kind::kDeadlineExceeded:
              writer_failures[static_cast<size_t>(w)] = Status::Internal(
                  "unexpected DEADLINE_EXCEEDED (no deadline sent)");
              return;
          }
        }
        if (!done) {
          writer_failures[static_cast<size_t>(w)] = Status::Internal(
              "'", request, "' never acked after 2000 attempts");
          return;
        }
      }
    });
  }

  // Mid-storm SIGKILL: wait for the threshold, kill the victim, leave it
  // dead long enough for the router to notice and shed onto it, then
  // restart it on the same port (SO_REUSEADDR) and wait for recovery.
  const size_t kill_threshold =
      std::max<size_t>(1, static_cast<size_t>(kill_at * work.size()));
  while (acked_count.load() < kill_threshold) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const int victim_port = servers[victim].port;
  std::cout << "fleet: SIGKILL backend " << victim << " (" << endpoints[victim]
            << ") at " << acked_count.load() << "/" << work.size()
            << " acked\n";
  outage.store(true);
  const auto outage_start = std::chrono::steady_clock::now();
  const long long probe_cycles_at_kill = router.probe_cycles();
  KillHard(&servers[victim]);

  // Hold the outage until the router has demoted the victim (state down),
  // so the drill provably exercises detection, not just a lucky miss.
  {
    const auto deadline = outage_start + std::chrono::seconds(10);
    while (router.backend(victim).state != router::HealthState::kDown) {
      if (std::chrono::steady_clock::now() > deadline) {
        kill_fleet();
        return Fail(Status::Internal(
            "router never marked the killed backend down"));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  const double detection_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - outage_start)
          .count();

  // Restart on the same port; the kernel may briefly hold the address even
  // with SO_REUSEADDR, so spawning retries.
  Result<ServerProcess> revived = Status::Internal("unspawned");
  for (int tries = 0; tries < 50; ++tries) {
    revived = SpawnServer(serve_bin, backend_args(static_cast<int>(victim),
                                                  victim_port));
    if (revived.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (!revived.ok()) {
    kill_fleet();
    return Fail(revived.status());
  }
  servers[victim] = *revived;

  // Recovery: the router must probe the backend back to routable.
  const auto recovery_start = std::chrono::steady_clock::now();
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!(router.backend(victim).state == router::HealthState::kHealthy ||
             router.backend(victim).state ==
                 router::HealthState::kProbation)) {
      if (std::chrono::steady_clock::now() > deadline) {
        kill_fleet();
        return Fail(Status::Internal(
            "router never routed the restarted backend again"));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  outage.store(false);
  const auto outage_end = std::chrono::steady_clock::now();
  const double outage_ms =
      std::chrono::duration<double, std::milli>(outage_end - outage_start)
          .count();
  // Recovery duration: restarted process back to routable — the part an
  // operator can tune with probe cadence and probation length.
  const double recovery_ms =
      std::chrono::duration<double, std::milli>(outage_end - recovery_start)
          .count();
  const long long probe_cycles_during_outage =
      router.probe_cycles() - probe_cycles_at_kill;
  std::cout << "fleet: backend " << victim << " recovered after "
            << FormatDouble(outage_ms, 1) << " ms ("
            << router::HealthStateName(router.backend(victim).state)
            << ", detection " << FormatDouble(detection_ms, 1)
            << " ms, recovery " << FormatDouble(recovery_ms, 1) << " ms, "
            << probe_cycles_during_outage << " probe cycles)\n";

  for (std::thread& t : writers) t.join();
  stop_reader.store(true);
  reader.join();
  for (const Status& st : writer_failures) {
    if (!st.ok()) {
      kill_fleet();
      return Fail(st);
    }
  }

  // Verify through the router: compact the whole fleet, then dump every
  // block from its owner and assert zero acked-write loss.
  serve::LineConnection conn;
  if (auto st = conn.Connect("127.0.0.1", router_port); !st.ok()) {
    kill_fleet();
    return Fail(st);
  }
  auto compacted = conn.Call("compact");
  if (!compacted.ok() || compacted->rfind("ok", 0) != 0) {
    kill_fleet();
    return Fail(Status::Internal(
        "fleet compact failed: ",
        compacted.ok() ? *compacted : compacted.status().ToString()));
  }
  long long lost = 0;
  for (size_t b = 0; b < dataset.blocks.size(); ++b) {
    const corpus::Block& block = dataset.blocks[b];
    auto response = conn.Call("dump " + block.query);
    if (!response.ok()) {
      kill_fleet();
      return Fail(response.status());
    }
    auto served = serve::ParseDumpResponse(*response);
    if (!served.ok()) {
      kill_fleet();
      return Fail(served.status());
    }
    for (size_t d = 0; d < block.documents.size(); ++d) {
      if ((*served)[d] < 0) {
        ++lost;
        std::cerr << "acked write lost: block '" << block.query << "' doc "
                  << d << "\n";
      }
    }
  }

  WriterCounters totals;
  for (const WriterCounters& c : writer_counters) {
    totals.acked += c.acked;
    totals.sheds += c.sheds;
    totals.unavailable += c.unavailable;
    totals.transport += c.transport;
  }
  std::string router_stats;
  if (auto stats = conn.Call("stats");
      stats.ok() && stats->rfind("ok ", 0) == 0) {
    router_stats = stats->substr(3);
  }

  // Graceful SIGTERM sweep: every backend (including the revived victim)
  // must drain and exit 0.
  front.StopTcp();
  router.Stop();
  int unclean_exits = 0;
  for (ServerProcess& s : servers) {
    auto status = StopSoft(&s);
    if (!status.ok() || !WIFEXITED(*status) || WEXITSTATUS(*status) != 0) {
      ++unclean_exits;
    }
  }

  const std::string out_path = flags.GetString("out");
  std::ofstream out(out_path);
  if (!out) return Fail(Status::IOError("cannot write ", out_path));
  JsonWriter json(out);
  json.BeginObject();
  json.Key("benchmark").String("weber_fleet_drill");
  json.Key("backends").Number(n_backends);
  json.Key("writers").Number(n_writers);
  json.Key("seed").Number(flags.GetInt("seed"));
  json.Key("documents").Number(static_cast<long long>(work.size()));
  json.Key("acked").Number(totals.acked);
  json.Key("lost").Number(lost);
  json.Key("victim").String(endpoints[victim]);
  json.Key("outage_ms").Number(outage_ms);
  json.Key("detection_ms").Number(detection_ms);
  json.Key("recovery_ms").Number(recovery_ms);
  json.Key("probe_cycles_during_outage").Number(probe_cycles_during_outage);
  json.Key("probe_cycles_total").Number(router.probe_cycles());
  json.Key("writer_sheds").Number(totals.sheds);
  json.Key("writer_unavailable").Number(totals.unavailable);
  json.Key("writer_transport_failures").Number(totals.transport);
  json.Key("reads_ok").Number(reads_ok.load());
  json.Key("reads_ok_during_outage").Number(reads_ok_during_outage.load());
  json.Key("reads_shed").Number(reads_shed.load());
  json.Key("read_failures").Number(read_failures.load());
  json.Key("unclean_exits").Number(unclean_exits);
  json.Key("router_stats").String(router_stats);
  json.EndObject();
  out << "\n";
  std::cout << "wrote " << out_path << "\n";

  if (lost > 0) {
    return Fail(Status::Corruption(lost, " acked writes lost in the drill"));
  }
  if (read_failures.load() > 0) {
    return Fail(Status::Internal(read_failures.load(),
                                 " reader failures during the drill"));
  }
  if (reads_ok_during_outage.load() == 0) {
    return Fail(Status::Internal(
        "no successful reads during the outage window — failover did not "
        "carry the read path"));
  }
  if (unclean_exits > 0) {
    return Fail(Status::Internal(unclean_exits,
                                 " backends exited uncleanly on SIGTERM"));
  }
  std::cout << "fleet drill ok: " << totals.acked << "/" << work.size()
            << " acked and recovered across a SIGKILL ("
            << FormatDouble(outage_ms, 1) << " ms outage, "
            << reads_ok_during_outage.load()
            << " reads served during it, " << totals.sheds << " sheds, "
            << totals.unavailable
            << " unavailable answers retried), graceful SIGTERM exit 0 x"
            << n_backends << "\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Migration kill drill (--migrate)
// ---------------------------------------------------------------------------
//
// Three durable backends behind the in-process router; the drill storms
// assigns/queries while migrating the first block and SIGKILLing its source
// backend at the two nastiest moments:
//
//   1. mid-copy  — the source's export stalls (migrate.export latency fault
//      armed in the child) and the kill lands inside the stall. The
//      migration must roll back (no flip, no loss) and the fleet rides out
//      the outage like any backend death.
//   2. mid-flip  — the router's own flip stalls (migrate.flip latency fault
//      armed in-process) and the kill lands inside the stall. The target
//      already holds the full copy, so the flip must complete and every
//      acked write must survive the source's death.
//
// After the storm a clean migration moves the block once more and asserts
// the dump through the router is byte-identical before and after. Results
// land in --out (BENCH_migrate.json).
int RunMigrateMode(const FlagParser& flags, const corpus::Dataset& dataset) {
  constexpr int kBackends = 3;
  const int n_writers = std::max(1, flags.GetInt("writers"));
  const double kill_at =
      std::min(0.9, std::max(0.05, flags.GetDouble("kill_at")));
  const std::string serve_bin = flags.GetString("serve_bin");
  const std::string data_dir = flags.GetString("data_dir");
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));

  std::vector<std::pair<int, int>> work;
  for (size_t b = 0; b < dataset.blocks.size(); ++b) {
    for (size_t d = 0; d < dataset.blocks[b].documents.size(); ++d) {
      work.emplace_back(static_cast<int>(b), static_cast<int>(d));
    }
  }
  if (work.empty()) return Fail(Status::InvalidArgument("empty dataset"));
  rng.Shuffle(&work);

  const std::string moved_block = dataset.blocks[0].query;
  const std::vector<size_t> block0_order =
      router::Router::RouteOrder(moved_block, kBackends);
  const size_t victim = block0_order[0];  // source of every migration
  const size_t target = block0_order[1];  // destination of both kill drills
  const size_t spare = block0_order[2];   // destination of the clean pass

  auto backend_args = [&](int i, int port, const std::string& faults) {
    std::vector<std::string> args{
        "--dataset=" + flags.GetString("dataset"),
        "--gazetteer=" + flags.GetString("gazetteer"),
        "--data-dir=" + data_dir + "/backend" + std::to_string(i),
        "--fsync=always",
        "--port=" + std::to_string(port),
        "--nostdio",
        "--max_delay_ms=0.5",
        "--train_fraction=" +
            FormatDouble(flags.GetDouble("train_fraction"), 6),
        "--seed=" + std::to_string(flags.GetInt("cal_seed")),
    };
    if (!faults.empty()) args.push_back("--faults=" + faults);
    return args;
  };

  std::vector<ServerProcess> servers(kBackends);
  std::vector<std::string> endpoints;
  for (int i = 0; i < kBackends; ++i) {
    if (auto st = WipeDataDir(data_dir + "/backend" + std::to_string(i));
        !st.ok()) {
      return Fail(st);
    }
    // The victim's first export stalls 1500 ms so the mid-copy SIGKILL
    // deterministically lands while the bulk copy is in flight.
    const std::string faults =
        static_cast<size_t>(i) == victim ? "migrate.export=latency:1:1500:1"
                                         : "";
    auto server = SpawnServer(serve_bin, backend_args(i, 0, faults));
    if (!server.ok()) return Fail(server.status());
    servers[static_cast<size_t>(i)] = *server;
    endpoints.push_back("127.0.0.1:" + std::to_string(server->port));
  }
  auto kill_fleet = [&] {
    for (ServerProcess& s : servers) KillHard(&s);
  };

  router::RouterOptions ropts;
  ropts.probe_interval_ms = 50.0;
  ropts.probe_timeout_ms = 250.0;
  ropts.health.down_probe_interval_ms = 100.0;
  ropts.retry_backoff_ms = 5.0;
  ropts.retry_after_ms = 25.0;
  ropts.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  // Generous pause: the mid-flip drill spends ~1 s stalled inside it and
  // the flip must still beat the expiry to complete.
  ropts.migrate_pause_ms = 3000.0;
  router::Router router(endpoints, ropts);
  router.Start();
  serve::LineServer front(
      [&router](const std::string& line, bool* quit) {
        return router.HandleLine(line, quit);
      });
  if (auto st = front.StartTcp(0); !st.ok()) {
    kill_fleet();
    return Fail(st);
  }
  const int router_port = front.tcp_port();

  std::atomic<size_t> acked_count{0};
  std::atomic<bool> outage{false};
  std::atomic<bool> stop_reader{false};
  std::atomic<bool> stop_writers{false};
  std::atomic<int> first_passes{0};
  std::atomic<long long> reads_ok{0};
  std::atomic<long long> reads_ok_during_outage{0};
  std::atomic<long long> reads_shed{0};
  std::atomic<long long> read_failures{0};

  std::thread reader([&] {
    Rng reader_rng(static_cast<uint64_t>(flags.GetInt("seed")) ^ 0x4EADULL);
    serve::LineConnection conn;
    if (!conn.Connect("127.0.0.1", router_port).ok()) {
      read_failures.fetch_add(1);
      return;
    }
    while (!stop_reader.load(std::memory_order_relaxed)) {
      const auto& pick =
          work[reader_rng.UniformUint64(static_cast<uint64_t>(work.size()))];
      const std::string request =
          "query " + dataset.blocks[pick.first].query + " " +
          std::to_string(pick.second);
      const bool during_outage = outage.load(std::memory_order_relaxed);
      Result<std::string> response = conn.Call(request);
      if (!response.ok()) {
        read_failures.fetch_add(1);
        if (!conn.Connect("127.0.0.1", router_port).ok()) return;
        continue;
      }
      Result<serve::Response> parsed = serve::ParseResponse(*response);
      if (!parsed.ok()) {
        read_failures.fetch_add(1);
      } else if (parsed->ok()) {
        reads_ok.fetch_add(1);
        if (during_outage) reads_ok_during_outage.fetch_add(1);
      } else if (parsed->kind == serve::Response::Kind::kOverloaded) {
        reads_shed.fetch_add(1);
      } else {
        read_failures.fetch_add(1);
      }
    }
  });

  // Writers cycle the work list (assign is idempotent) so the storm keeps
  // running through both kill windows, however small the dataset. The
  // first full pass acks every document; later passes just keep the
  // pressure on, including OVERLOADED sheds against the migration pause.
  std::vector<WriterCounters> writer_counters(
      static_cast<size_t>(n_writers));
  std::vector<Status> writer_failures(static_cast<size_t>(n_writers),
                                      Status::OK());
  std::vector<std::thread> writers;
  for (int w = 0; w < n_writers; ++w) {
    writers.emplace_back([&, w] {
      WriterCounters& counters = writer_counters[static_cast<size_t>(w)];
      Rng writer_rng(static_cast<uint64_t>(flags.GetInt("seed")) +
                     0xA5A5ULL * static_cast<uint64_t>(w + 1));
      serve::LineConnection conn;
      if (auto st = conn.Connect("127.0.0.1", router_port); !st.ok()) {
        writer_failures[static_cast<size_t>(w)] = st;
        return;
      }
      bool first_pass = true;
      for (size_t i = static_cast<size_t>(w);;) {
        if (i >= work.size()) {
          if (first_pass) {
            first_pass = false;
            first_passes.fetch_add(1);
          }
          if (stop_writers.load(std::memory_order_relaxed)) return;
          i = static_cast<size_t>(w);
          continue;
        }
        const std::string request =
            "assign " + dataset.blocks[work[i].first].query + " " +
            std::to_string(work[i].second);
        bool done = false;
        for (int attempt = 0; attempt < 2000 && !done; ++attempt) {
          Result<std::string> response = conn.Call(request);
          if (!response.ok()) {
            ++counters.transport;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            (void)conn.Connect("127.0.0.1", router_port);
            continue;
          }
          Result<serve::Response> parsed = serve::ParseResponse(*response);
          if (!parsed.ok()) {
            writer_failures[static_cast<size_t>(w)] = parsed.status();
            return;
          }
          switch (parsed->kind) {
            case serve::Response::Kind::kOk:
              ++counters.acked;
              acked_count.fetch_add(1, std::memory_order_relaxed);
              done = true;
              break;
            case serve::Response::Kind::kOverloaded:
              ++counters.sheds;
              std::this_thread::sleep_for(
                  std::chrono::duration<double, std::milli>(
                      parsed->retry_after_ms *
                      (1.0 + writer_rng.UniformDouble())));
              break;
            case serve::Response::Kind::kError:
              if (parsed->code == StatusCode::kUnavailable) {
                ++counters.unavailable;
                std::this_thread::sleep_for(std::chrono::milliseconds(10));
                break;
              }
              writer_failures[static_cast<size_t>(w)] = Status::Internal(
                  "assign rejected through the router: ", *response);
              return;
            case serve::Response::Kind::kDeadlineExceeded:
              writer_failures[static_cast<size_t>(w)] = Status::Internal(
                  "unexpected DEADLINE_EXCEEDED (no deadline sent)");
              return;
          }
        }
        if (!done) {
          writer_failures[static_cast<size_t>(w)] = Status::Internal(
              "'", request, "' never acked after 2000 attempts");
          return;
        }
        i += static_cast<size_t>(n_writers);
      }
    });
  }

  // Issues `migrate` through the router on its own connection and hands
  // back the raw response; runs in a thread so the drill can SIGKILL the
  // source while the migration is in flight.
  auto call_migrate = [&](size_t to) -> Result<std::string> {
    serve::LineConnection conn;
    WEBER_RETURN_NOT_OK(conn.Connect("127.0.0.1", router_port));
    return conn.Call("migrate " + moved_block + " " + endpoints[to]);
  };

  // Rides out a source kill: waits for the router to demote the victim,
  // restarts it on the same port (no faults), waits until routable again.
  auto recover_victim = [&](int victim_port) -> Result<double> {
    const auto outage_start = std::chrono::steady_clock::now();
    {
      const auto deadline = outage_start + std::chrono::seconds(10);
      while (router.backend(victim).state != router::HealthState::kDown) {
        if (std::chrono::steady_clock::now() > deadline) {
          return Status::Internal(
              "router never marked the killed source down");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    Result<ServerProcess> revived = Status::Internal("unspawned");
    for (int tries = 0; tries < 50; ++tries) {
      revived = SpawnServer(
          serve_bin,
          backend_args(static_cast<int>(victim), victim_port, ""));
      if (revived.ok()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    WEBER_RETURN_NOT_OK(revived.status());
    servers[victim] = *revived;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!(router.backend(victim).state == router::HealthState::kHealthy ||
             router.backend(victim).state ==
                 router::HealthState::kProbation)) {
      if (std::chrono::steady_clock::now() > deadline) {
        return Status::Internal(
            "router never routed the restarted source again");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - outage_start)
        .count();
  };

  const size_t kill_threshold =
      std::max<size_t>(1, static_cast<size_t>(kill_at * work.size()));
  while (acked_count.load() < kill_threshold) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // --- Drill 1: SIGKILL the source mid-copy -------------------------------
  std::cout << "migrate: moving '" << moved_block << "' "
            << endpoints[victim] << " -> " << endpoints[target]
            << ", SIGKILL source mid-copy\n";
  Result<std::string> midcopy_response = Status::Internal("unset");
  std::thread midcopy([&] { midcopy_response = call_migrate(target); });
  // The victim's armed export fault stalls the bulk copy 1500 ms; landing
  // the kill 400 ms in guarantees the copy is in flight when it dies.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  outage.store(true);
  const int victim_port1 = servers[victim].port;
  KillHard(&servers[victim]);
  midcopy.join();
  if (midcopy_response.ok() &&
      midcopy_response.ValueOrDie().rfind("ok", 0) == 0) {
    kill_fleet();
    return Fail(Status::Internal(
        "migration reported success with its source killed mid-copy: ",
        midcopy_response.ValueOrDie()));
  }
  Result<double> outage1_ms = recover_victim(victim_port1);
  if (!outage1_ms.ok()) {
    kill_fleet();
    return Fail(outage1_ms.status());
  }
  outage.store(false);
  const long long reads_during_outage1 = reads_ok_during_outage.load();
  std::cout << "migrate: mid-copy kill rolled back cleanly, source back in "
            << FormatDouble(*outage1_ms, 1) << " ms\n";

  // --- Drill 2: SIGKILL the source mid-flip -------------------------------
  // The stall runs in the router (this process), after the catch-up copy:
  // the target holds everything, so the flip must complete without the
  // source.
  faults::FaultInjector::Instance().Seed(
      static_cast<uint64_t>(flags.GetInt("seed")));
  if (auto st = faults::FaultInjector::Instance().ArmFromSpec(
          "migrate.flip=latency:1:1000:1");
      !st.ok()) {
    kill_fleet();
    return Fail(st);
  }
  std::cout << "migrate: moving '" << moved_block << "' again, SIGKILL "
            << "source mid-flip\n";
  Result<std::string> midflip_response = Status::Internal("unset");
  std::thread midflip([&] { midflip_response = call_migrate(target); });
  // Copy + catch-up of one block take a few ms; 300 ms in, the migration
  // is parked inside the 1000 ms flip stall.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  outage.store(true);
  const int victim_port2 = servers[victim].port;
  KillHard(&servers[victim]);
  midflip.join();
  if (!midflip_response.ok() ||
      midflip_response.ValueOrDie().rfind("ok", 0) != 0) {
    kill_fleet();
    return Fail(Status::Internal(
        "mid-flip migration did not complete from the copied data: ",
        midflip_response.ok() ? midflip_response.ValueOrDie()
                              : midflip_response.status().ToString()));
  }
  Result<double> outage2_ms = recover_victim(victim_port2);
  if (!outage2_ms.ok()) {
    kill_fleet();
    return Fail(outage2_ms.status());
  }
  outage.store(false);
  const long long reads_during_outage2 =
      reads_ok_during_outage.load() - reads_during_outage1;
  std::cout << "migrate: mid-flip kill completed the flip, source back in "
            << FormatDouble(*outage2_ms, 1) << " ms\n";

  // Let the storm finish a full pass everywhere, then stop it.
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (first_passes.load() < n_writers) {
      if (std::chrono::steady_clock::now() > deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  stop_writers.store(true);
  for (std::thread& t : writers) t.join();
  stop_reader.store(true);
  reader.join();
  for (const Status& st : writer_failures) {
    if (!st.ok()) {
      kill_fleet();
      return Fail(st);
    }
  }

  serve::LineConnection conn;
  if (auto st = conn.Connect("127.0.0.1", router_port); !st.ok()) {
    kill_fleet();
    return Fail(st);
  }
  auto compacted = conn.Call("compact");
  if (!compacted.ok() || compacted->rfind("ok", 0) != 0) {
    kill_fleet();
    return Fail(Status::Internal(
        "fleet compact failed: ",
        compacted.ok() ? *compacted : compacted.status().ToString()));
  }

  // --- Drill 3: clean migration, dump byte-identity -----------------------
  auto dump_moved = [&]() -> Result<std::string> {
    return conn.Call("dump " + moved_block);
  };
  Result<std::string> pre_dump = dump_moved();
  if (!pre_dump.ok()) {
    kill_fleet();
    return Fail(pre_dump.status());
  }
  auto clean = conn.Call("migrate " + moved_block + " " + endpoints[spare]);
  if (!clean.ok() || clean->rfind("ok", 0) != 0) {
    kill_fleet();
    return Fail(Status::Internal(
        "clean migration failed: ",
        clean.ok() ? *clean : clean.status().ToString()));
  }
  Result<std::string> post_dump = dump_moved();
  if (!post_dump.ok()) {
    kill_fleet();
    return Fail(post_dump.status());
  }
  const bool dump_identical = *pre_dump == *post_dump;

  // Zero acked-write loss: the storm acked every document at least once,
  // so every label in every owner's dump must be assigned.
  long long lost = 0;
  for (size_t b = 0; b < dataset.blocks.size(); ++b) {
    const corpus::Block& block = dataset.blocks[b];
    auto response = conn.Call("dump " + block.query);
    if (!response.ok()) {
      kill_fleet();
      return Fail(response.status());
    }
    auto served = serve::ParseDumpResponse(*response);
    if (!served.ok()) {
      kill_fleet();
      return Fail(served.status());
    }
    for (size_t d = 0; d < block.documents.size(); ++d) {
      if ((*served)[d] < 0) {
        ++lost;
        std::cerr << "acked write lost: block '" << block.query << "' doc "
                  << d << "\n";
      }
    }
  }

  WriterCounters totals;
  for (const WriterCounters& c : writer_counters) {
    totals.acked += c.acked;
    totals.sheds += c.sheds;
    totals.unavailable += c.unavailable;
    totals.transport += c.transport;
  }
  std::string router_stats;
  if (auto stats = conn.Call("stats");
      stats.ok() && stats->rfind("ok ", 0) == 0) {
    router_stats = stats->substr(3);
  }

  front.StopTcp();
  router.Stop();
  faults::FaultInjector::Instance().DisarmAll();
  int unclean_exits = 0;
  for (ServerProcess& s : servers) {
    auto status = StopSoft(&s);
    if (!status.ok() || !WIFEXITED(*status) || WEXITSTATUS(*status) != 0) {
      ++unclean_exits;
    }
  }

  const std::string out_path = flags.GetString("out");
  std::ofstream out(out_path);
  if (!out) return Fail(Status::IOError("cannot write ", out_path));
  JsonWriter json(out);
  json.BeginObject();
  json.Key("benchmark").String("weber_migrate_drill");
  json.Key("backends").Number(kBackends);
  json.Key("writers").Number(n_writers);
  json.Key("seed").Number(flags.GetInt("seed"));
  json.Key("documents").Number(static_cast<long long>(work.size()));
  json.Key("acked").Number(totals.acked);
  json.Key("lost").Number(lost);
  json.Key("moved_block").String(moved_block);
  json.Key("source").String(endpoints[victim]);
  json.Key("midcopy_rolled_back").Bool(true);
  json.Key("midcopy_outage_ms").Number(*outage1_ms);
  json.Key("midflip_completed").Bool(true);
  json.Key("midflip_outage_ms").Number(*outage2_ms);
  json.Key("clean_dump_identical").Bool(dump_identical);
  json.Key("writer_sheds").Number(totals.sheds);
  json.Key("writer_unavailable").Number(totals.unavailable);
  json.Key("writer_transport_failures").Number(totals.transport);
  json.Key("reads_ok").Number(reads_ok.load());
  json.Key("reads_ok_during_midcopy_outage").Number(reads_during_outage1);
  json.Key("reads_ok_during_midflip_outage").Number(reads_during_outage2);
  json.Key("reads_shed").Number(reads_shed.load());
  json.Key("read_failures").Number(read_failures.load());
  json.Key("unclean_exits").Number(unclean_exits);
  json.Key("router_stats").String(router_stats);
  json.EndObject();
  out << "\n";
  std::cout << "wrote " << out_path << "\n";

  if (lost > 0) {
    return Fail(Status::Corruption(lost, " acked writes lost in the drill"));
  }
  if (!dump_identical) {
    return Fail(Status::Corruption(
        "the clean migration changed the moved block's dump:\n  pre:  ",
        *pre_dump, "\n  post: ", *post_dump));
  }
  if (read_failures.load() > 0) {
    return Fail(Status::Internal(read_failures.load(),
                                 " reader failures during the drill"));
  }
  if (reads_during_outage1 == 0 || reads_during_outage2 == 0) {
    return Fail(Status::Internal(
        "no successful reads during an outage window — failover did not "
        "carry the read path"));
  }
  if (unclean_exits > 0) {
    return Fail(Status::Internal(unclean_exits,
                                 " backends exited uncleanly on SIGTERM"));
  }
  std::cout << "migrate drill ok: '" << moved_block
            << "' survived SIGKILL mid-copy (rolled back, "
            << FormatDouble(*outage1_ms, 1) << " ms outage) and mid-flip "
            << "(completed, " << FormatDouble(*outage2_ms, 1)
            << " ms outage), clean pass byte-identical, " << totals.acked
            << " acks with zero loss, " << totals.sheds << " sheds, "
            << "graceful SIGTERM exit 0 x" << kBackends << "\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Fleet self-healing drill (--rebalance)
// ---------------------------------------------------------------------------

/// Scans a one-line JSON payload for `"key":<number>` and returns the
/// value, or `fallback` when the key is absent.
long long ScanCount(const std::string& json, const std::string& key,
                    long long fallback) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return fallback;
  return std::atoll(json.c_str() + at + needle.size());
}

bool ScanTrue(const std::string& json, const std::string& key) {
  return json.find("\"" + key + "\":true") != std::string::npos;
}

/// The self-healing drill: unlike --migrate (in-process router), the router
/// here is a forked weber_router child so the harness can SIGKILL it.
///
///   A. `rebalance` off the busiest backend, SIGKILL that source mid-export
///      -> the plan reports the move failed (rolled back), a re-run after
///      the source restarts completes with zero failures.
///   B. single-target `rebalance`, SIGKILL the *router* after the first
///      flip persists -> a respawn on the same port + state file restores
///      the override table and the re-run finishes the plan.
///   C. after a catch-all write pass drains the replication queue, SIGKILL
///      the rendezvous owner of block 0 for good -> the standby is
///      promoted within the deadline and writes to the block ack again,
///      with possibly_lost_writes == 0 (everything was replicated).
///
/// Throughout: writer threads retry OVERLOADED/Unavailable, the reader
/// must keep succeeding except while the router itself is down, and the
/// final dumps must hold every acked write. Results land in --out.
int RunRebalanceMode(const FlagParser& flags, const corpus::Dataset& dataset) {
  constexpr int kBackends = 3;
  const int n_writers = std::max(1, flags.GetInt("writers"));
  const double kill_at =
      std::min(0.9, std::max(0.05, flags.GetDouble("kill_at")));
  const std::string serve_bin = flags.GetString("serve_bin");
  const std::string router_bin = flags.GetString("router_bin");
  if (router_bin.empty()) {
    return Fail(Status::InvalidArgument("--rebalance needs --router_bin"));
  }
  const std::string data_dir = flags.GetString("data_dir");
  const std::string state_file = data_dir + "/router.state";
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  Rng rng(seed);

  std::vector<std::pair<int, int>> work;
  for (size_t b = 0; b < dataset.blocks.size(); ++b) {
    for (size_t d = 0; d < dataset.blocks[b].documents.size(); ++d) {
      work.emplace_back(static_cast<int>(b), static_cast<int>(d));
    }
  }
  if (work.empty()) return Fail(Status::InvalidArgument("empty dataset"));
  rng.Shuffle(&work);

  // The rendezvous owner of block 0: drill A's SIGKILL victim and drill
  // C's permanent casualty. Excluding it from drill A's target list
  // guarantees the plan has >= 1 move, all sourced from it (the subset
  // property keeps every other block where it is).
  const std::string probe_block = dataset.blocks[0].query;
  const std::vector<size_t> order0 =
      router::Router::RouteOrder(probe_block, kBackends);
  const size_t owner0 = order0[0];

  auto backend_args = [&](int i, int port, const std::string& faults) {
    std::vector<std::string> args{
        "--dataset=" + flags.GetString("dataset"),
        "--gazetteer=" + flags.GetString("gazetteer"),
        "--data-dir=" + data_dir + "/backend" + std::to_string(i),
        "--fsync=always",
        "--port=" + std::to_string(port),
        "--nostdio",
        "--max_delay_ms=0.5",
        "--train_fraction=" +
            FormatDouble(flags.GetDouble("train_fraction"), 6),
        "--seed=" + std::to_string(flags.GetInt("cal_seed")),
    };
    if (!faults.empty()) args.push_back("--faults=" + faults);
    return args;
  };

  std::vector<ServerProcess> servers(kBackends);
  std::vector<std::string> endpoints;
  if (auto st = RemoveFileIfExists(state_file); !st.ok()) return Fail(st);
  for (int i = 0; i < kBackends; ++i) {
    if (auto st = WipeDataDir(data_dir + "/backend" + std::to_string(i));
        !st.ok()) {
      return Fail(st);
    }
    // The victim's first export stalls 1500 ms so drill A's SIGKILL
    // deterministically lands while its bulk copy is in flight.
    const std::string faults = static_cast<size_t>(i) == owner0
                                   ? "migrate.export=latency:1:1500:1"
                                   : "";
    auto server = SpawnServer(serve_bin, backend_args(i, 0, faults));
    if (!server.ok()) return Fail(server.status());
    servers[static_cast<size_t>(i)] = *server;
    endpoints.push_back("127.0.0.1:" + std::to_string(server->port));
  }

  std::string backends_csv;
  for (const std::string& ep : endpoints) {
    if (!backends_csv.empty()) backends_csv += ",";
    backends_csv += ep;
  }
  // Sequential moves (parallelism 1) give drill B a wide window between
  // the first persisted flip and the plan's end; the router-side move
  // latency fault widens it further and paces drill A's plan.
  auto router_args = [&](int port, int promote_after_ms,
                         const std::string& faults) {
    std::vector<std::string> args{
        "--backends=" + backends_csv,
        "--port=" + std::to_string(port),
        "--state-file=" + state_file,
        "--replicas=2",
        "--rebalance-parallelism=1",
        "--probe-interval-ms=50",
        "--probe-timeout-ms=250",
        "--suspect-after=1",
        "--down-after=2",
        "--down-probe-interval-ms=100",
        "--retry-backoff-ms=5",
        "--retry-after-ms=25",
        "--migrate-pause-ms=3000",
        "--seed=" + std::to_string(flags.GetInt("seed")),
    };
    if (promote_after_ms > 0) {
      args.push_back("--promote-after-ms=" + std::to_string(promote_after_ms));
    }
    if (!faults.empty()) {
      args.push_back("--faults=" + faults);
      args.push_back("--fault_seed=" + std::to_string(flags.GetInt("seed")));
    }
    return args;
  };

  // Promotion stays off for drills A and B: both kill a process that comes
  // right back, and a promotion racing the restart would tangle the
  // rollback/recovery assertions. Drill C respawns the router with the
  // deadline armed (and proves the state file survives a graceful cycle).
  auto router_child_result = SpawnServer(
      router_bin, router_args(0, 0, "rebalance.move=latency:1:300:1000"));
  auto kill_all = [&](ServerProcess* router_process) {
    for (ServerProcess& s : servers) KillHard(&s);
    if (router_process != nullptr) KillHard(router_process);
  };
  if (!router_child_result.ok()) {
    kill_all(nullptr);
    return Fail(router_child_result.status());
  }
  ServerProcess router_child = *router_child_result;
  const int router_port = router_child.port;

  std::atomic<size_t> acked_count{0};
  std::atomic<bool> outage{false};       // a backend is down: reads failover
  std::atomic<bool> router_down{false};  // the router itself is absent
  std::atomic<bool> stop_reader{false};
  std::atomic<bool> stop_writers{false};
  std::atomic<int> first_passes{0};
  std::atomic<long long> reads_ok{0};
  std::atomic<long long> reads_ok_during_outage{0};
  std::atomic<long long> reads_shed{0};
  std::atomic<long long> read_failures{0};
  std::atomic<long long> reader_blips{0};  // transport errors, router down

  std::thread reader([&] {
    Rng reader_rng(seed ^ 0x4EADULL);
    serve::LineConnection conn;
    bool connected = conn.Connect("127.0.0.1", router_port).ok();
    while (!stop_reader.load(std::memory_order_relaxed)) {
      if (!connected) {
        if (router_down.load(std::memory_order_relaxed)) {
          reader_blips.fetch_add(1);
        } else {
          read_failures.fetch_add(1);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        connected = conn.Connect("127.0.0.1", router_port).ok();
        continue;
      }
      const auto& pick =
          work[reader_rng.UniformUint64(static_cast<uint64_t>(work.size()))];
      const std::string request =
          "query " + dataset.blocks[pick.first].query + " " +
          std::to_string(pick.second);
      const bool during_outage = outage.load(std::memory_order_relaxed);
      const bool tolerant = router_down.load(std::memory_order_relaxed);
      Result<std::string> response = conn.Call(request);
      if (!response.ok()) {
        // The flag is sampled before and after the call: a SIGKILL landing
        // mid-request fails the response either way.
        if (tolerant || router_down.load(std::memory_order_relaxed)) {
          reader_blips.fetch_add(1);
        } else {
          read_failures.fetch_add(1);
        }
        connected = conn.Connect("127.0.0.1", router_port).ok();
        continue;
      }
      Result<serve::Response> parsed = serve::ParseResponse(*response);
      if (!parsed.ok()) {
        read_failures.fetch_add(1);
      } else if (parsed->ok()) {
        reads_ok.fetch_add(1);
        if (during_outage) reads_ok_during_outage.fetch_add(1);
      } else if (parsed->kind == serve::Response::Kind::kOverloaded) {
        reads_shed.fetch_add(1);
      } else {
        read_failures.fetch_add(1);
      }
    }
  });

  std::vector<WriterCounters> writer_counters(
      static_cast<size_t>(n_writers));
  std::vector<Status> writer_failures(static_cast<size_t>(n_writers),
                                      Status::OK());
  std::vector<std::thread> writers;
  for (int w = 0; w < n_writers; ++w) {
    writers.emplace_back([&, w] {
      WriterCounters& counters = writer_counters[static_cast<size_t>(w)];
      Rng writer_rng(seed + 0xA5A5ULL * static_cast<uint64_t>(w + 1));
      serve::LineConnection conn;
      if (auto st = conn.Connect("127.0.0.1", router_port); !st.ok()) {
        writer_failures[static_cast<size_t>(w)] = st;
        return;
      }
      bool first_pass = true;
      for (size_t i = static_cast<size_t>(w);;) {
        if (i >= work.size()) {
          if (first_pass) {
            first_pass = false;
            first_passes.fetch_add(1);
          }
          if (stop_writers.load(std::memory_order_relaxed)) return;
          i = static_cast<size_t>(w);
          continue;
        }
        const std::string request =
            "assign " + dataset.blocks[work[i].first].query + " " +
            std::to_string(work[i].second);
        bool done = false;
        for (int attempt = 0; attempt < 4000 && !done; ++attempt) {
          Result<std::string> response = conn.Call(request);
          if (!response.ok()) {
            ++counters.transport;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            (void)conn.Connect("127.0.0.1", router_port);
            continue;
          }
          Result<serve::Response> parsed = serve::ParseResponse(*response);
          if (!parsed.ok()) {
            writer_failures[static_cast<size_t>(w)] = parsed.status();
            return;
          }
          switch (parsed->kind) {
            case serve::Response::Kind::kOk:
              ++counters.acked;
              acked_count.fetch_add(1, std::memory_order_relaxed);
              done = true;
              break;
            case serve::Response::Kind::kOverloaded:
              ++counters.sheds;
              std::this_thread::sleep_for(
                  std::chrono::duration<double, std::milli>(
                      parsed->retry_after_ms *
                      (1.0 + writer_rng.UniformDouble())));
              break;
            case serve::Response::Kind::kError:
              if (parsed->code == StatusCode::kUnavailable) {
                ++counters.unavailable;
                std::this_thread::sleep_for(std::chrono::milliseconds(10));
                break;
              }
              writer_failures[static_cast<size_t>(w)] = Status::Internal(
                  "assign rejected through the router: ", *response);
              return;
            case serve::Response::Kind::kDeadlineExceeded:
              writer_failures[static_cast<size_t>(w)] = Status::Internal(
                  "unexpected DEADLINE_EXCEEDED (no deadline sent)");
              return;
          }
        }
        if (!done) {
          writer_failures[static_cast<size_t>(w)] = Status::Internal(
              "'", request, "' never acked after 4000 attempts");
          return;
        }
        i += static_cast<size_t>(n_writers);
      }
    });
  }

  auto admin_call = [&](const std::string& line) -> Result<std::string> {
    serve::LineConnection conn;
    WEBER_RETURN_NOT_OK(conn.Connect("127.0.0.1", router_port));
    return conn.Call(line);
  };

  // Polls the router's stats until `endpoint` reports one of `states`.
  auto wait_backend_state =
      [&](const std::string& endpoint, std::vector<std::string> states,
          int timeout_s) -> Status {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(timeout_s);
    while (std::chrono::steady_clock::now() < deadline) {
      auto stats = admin_call("stats");
      if (stats.ok() && stats->rfind("ok ", 0) == 0) {
        for (const std::string& state : states) {
          if (stats->find("\"endpoint\":\"" + endpoint + "\",\"state\":\"" +
                          state + "\"") != std::string::npos) {
            return Status::OK();
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return Status::Internal("router never saw ", endpoint,
                            " reach the awaited health state");
  };

  const size_t kill_threshold =
      std::max<size_t>(1, static_cast<size_t>(kill_at * work.size()));
  while (acked_count.load() < kill_threshold) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // --- Drill A: SIGKILL a move's source mid-export ------------------------
  std::vector<size_t> pair;
  for (size_t i = 0; i < endpoints.size(); ++i) {
    if (i != owner0) pair.push_back(i);
  }
  const std::string shrink_cmd =
      "rebalance " + endpoints[pair[0]] + " " + endpoints[pair[1]];
  std::cout << "rebalance: shrinking off " << endpoints[owner0]
            << ", SIGKILL source mid-export\n";
  Result<std::string> shrink_killed = Status::Internal("unset");
  std::thread shrink_thread([&] { shrink_killed = admin_call(shrink_cmd); });
  // The first move starts ~300 ms in (router-side latency fault) and its
  // export stalls 1500 ms inside the victim; 700 ms lands mid-copy. If a
  // slow sanitizer build pushes the export past the kill instead, the move
  // fails against a dead source — either way the plan must report it.
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  outage.store(true);
  const int owner0_port = servers[owner0].port;
  KillHard(&servers[owner0]);
  shrink_thread.join();
  if (!shrink_killed.ok() || shrink_killed->rfind("ok", 0) != 0) {
    kill_all(&router_child);
    return Fail(Status::Internal(
        "rebalance with its source killed did not answer: ",
        shrink_killed.ok() ? *shrink_killed
                           : shrink_killed.status().ToString()));
  }
  const long long planned_killed = ScanCount(*shrink_killed, "planned", -1);
  const long long failed_killed = ScanCount(*shrink_killed, "failed", -1);
  if (planned_killed < 1 || failed_killed < 1) {
    kill_all(&router_child);
    return Fail(Status::Internal(
        "the mid-export kill should fail >=1 of >=1 planned moves: ",
        *shrink_killed));
  }

  Result<ServerProcess> revived = Status::Internal("unspawned");
  for (int tries = 0; tries < 50; ++tries) {
    revived = SpawnServer(
        serve_bin,
        backend_args(static_cast<int>(owner0), owner0_port, ""));
    if (revived.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (!revived.ok()) {
    kill_all(&router_child);
    return Fail(revived.status());
  }
  servers[owner0] = *revived;
  if (auto st = wait_backend_state(endpoints[owner0],
                                   {"healthy", "probation"}, 10);
      !st.ok()) {
    kill_all(&router_child);
    return Fail(st);
  }
  outage.store(false);

  auto shrink_retry = admin_call(shrink_cmd);
  if (!shrink_retry.ok() || shrink_retry->rfind("ok", 0) != 0 ||
      ScanCount(*shrink_retry, "failed", -1) != 0) {
    kill_all(&router_child);
    return Fail(Status::Internal(
        "re-run after the source restart should complete cleanly: ",
        shrink_retry.ok() ? *shrink_retry
                          : shrink_retry.status().ToString()));
  }
  std::cout << "rebalance: re-run moved the rolled-back blocks, source "
            << "restored\n";

  // --- Drill B: SIGKILL the router mid-plan -------------------------------
  // Ownership after the pair shrink follows rendezvous restricted to the
  // pair (subset property), so the harness can compute which single-target
  // shrink moves the most blocks without asking the fleet.
  size_t on_pair0 = 0, on_pair1 = 0;
  for (const corpus::Block& block : dataset.blocks) {
    for (size_t idx : router::Router::RouteOrder(block.query, kBackends)) {
      if (idx == owner0) continue;
      if (idx == pair[0]) {
        ++on_pair0;
      } else {
        ++on_pair1;
      }
      break;
    }
  }
  const size_t single = on_pair0 <= on_pair1 ? pair[0] : pair[1];
  const std::string single_cmd = "rebalance " + endpoints[single];
  std::cout << "rebalance: shrinking to " << endpoints[single]
            << ", SIGKILL router after the first flip persists\n";
  Result<std::string> single_killed = Status::Internal("unset");
  std::thread single_thread([&] { single_killed = admin_call(single_cmd); });
  bool saw_active = false;
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    while (std::chrono::steady_clock::now() < deadline) {
      auto status = admin_call("rebalance status");
      if (status.ok() && status->rfind("ok ", 0) == 0) {
        // `active` only ever refers to the in-flight plan (finished plans
        // finalize it false before their response is sent), so the first
        // `active:true` is drill B's plan, not a stale predecessor.
        if (!saw_active) {
          saw_active = ScanTrue(*status, "active");
          if (!saw_active) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            continue;
          }
        }
        if (ScanCount(*status, "completed", 0) >= 1) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  if (!saw_active) {
    kill_all(&router_child);
    return Fail(Status::Internal(
        "drill B's rebalance never reported an active plan"));
  }
  router_down.store(true);
  KillHard(&router_child);
  single_thread.join();  // transport failure expected; the plan died

  Result<ServerProcess> router_revived = Status::Internal("unspawned");
  for (int tries = 0; tries < 50; ++tries) {
    router_revived =
        SpawnServer(router_bin, router_args(router_port, 600, ""));
    if (router_revived.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (!router_revived.ok()) {
    kill_all(nullptr);
    return Fail(router_revived.status());
  }
  router_child = *router_revived;
  router_down.store(false);

  auto restored_stats = admin_call("stats");
  if (!restored_stats.ok() || restored_stats->rfind("ok ", 0) != 0) {
    kill_all(&router_child);
    return Fail(Status::Internal("restarted router has no stats"));
  }
  const long long restored_overrides =
      ScanCount(*restored_stats, "restored_overrides", -1);
  if (!ScanTrue(*restored_stats, "load_ok") || restored_overrides < 1) {
    kill_all(&router_child);
    return Fail(Status::Internal(
        "restarted router did not recover its overrides from ", state_file,
        ": ", *restored_stats));
  }
  std::cout << "rebalance: restarted router restored " << restored_overrides
            << " overrides from the state file\n";

  auto single_retry = admin_call(single_cmd);
  if (!single_retry.ok() || single_retry->rfind("ok", 0) != 0 ||
      ScanCount(*single_retry, "failed", -1) != 0) {
    kill_all(&router_child);
    return Fail(Status::Internal(
        "resumed single-target rebalance should complete cleanly: ",
        single_retry.ok() ? *single_retry
                          : single_retry.status().ToString()));
  }

  // Grow back to the full fleet: rendezvous is restored and every
  // override is erased (the table is the diff from rendezvous).
  auto grow = admin_call("rebalance " + endpoints[0] + " " + endpoints[1] +
                         " " + endpoints[2]);
  if (!grow.ok() || grow->rfind("ok", 0) != 0 ||
      ScanCount(*grow, "failed", -1) != 0) {
    kill_all(&router_child);
    return Fail(Status::Internal(
        "full-fleet grow rebalance failed: ",
        grow.ok() ? *grow : grow.status().ToString()));
  }
  auto grown_stats = admin_call("stats");
  const long long overrides_after_grow =
      grown_stats.ok() ? ScanCount(*grown_stats, "route_overrides", -1) : -1;
  if (overrides_after_grow != 0) {
    kill_all(&router_child);
    return Fail(Status::Internal(
        "growing back to the full fleet should erase every override, "
        "route_overrides=",
        overrides_after_grow));
  }

  // Let the storm finish a full pass everywhere, then stop it.
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (first_passes.load() < n_writers) {
      if (std::chrono::steady_clock::now() > deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  stop_writers.store(true);
  for (std::thread& t : writers) t.join();
  for (const Status& st : writer_failures) {
    if (!st.ok()) {
      kill_all(&router_child);
      return Fail(st);
    }
  }

  // --- Drill C: hard loss of a block's owner, standby promotion -----------
  // Catch-all pass: every document acked through the restarted router so
  // its replication ledger covers the whole corpus, then wait for the
  // standby queue to drain — after that, promotion must lose nothing.
  serve::LineConnection conn;
  if (auto st = conn.Connect("127.0.0.1", router_port); !st.ok()) {
    kill_all(&router_child);
    return Fail(st);
  }
  for (const auto& [b, d] : work) {
    const std::string request = "assign " + dataset.blocks[b].query + " " +
                                std::to_string(d);
    bool done = false;
    for (int attempt = 0; attempt < 2000 && !done; ++attempt) {
      Result<std::string> response = conn.Call(request);
      if (!response.ok()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        (void)conn.Connect("127.0.0.1", router_port);
        continue;
      }
      Result<serve::Response> parsed = serve::ParseResponse(*response);
      if (parsed.ok() && parsed->ok()) {
        done = true;
      } else if (parsed.ok() &&
                 parsed->kind == serve::Response::Kind::kOverloaded) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            parsed->retry_after_ms));
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    if (!done) {
      kill_all(&router_child);
      return Fail(Status::Internal("catch-all pass could not ack '", request,
                                   "'"));
    }
  }
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    bool drained = false;
    while (std::chrono::steady_clock::now() < deadline) {
      auto stats = admin_call("stats");
      if (stats.ok() && ScanCount(*stats, "queued", -1) == 0) {
        drained = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (!drained) {
      kill_all(&router_child);
      return Fail(
          Status::Internal("replication queue never drained before drill C"));
    }
  }

  std::cout << "rebalance: SIGKILL " << endpoints[owner0]
            << " for good — waiting for standby promotion\n";
  outage.store(true);
  const auto loss_time = std::chrono::steady_clock::now();
  KillHard(&servers[owner0]);
  double promote_ms = -1.0;
  {
    const auto deadline = loss_time + std::chrono::seconds(20);
    const std::string request = "assign " + probe_block + " 0";
    while (std::chrono::steady_clock::now() < deadline) {
      Result<std::string> response = conn.Call(request);
      if (!response.ok()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        (void)conn.Connect("127.0.0.1", router_port);
        continue;
      }
      Result<serve::Response> parsed = serve::ParseResponse(*response);
      if (parsed.ok() && parsed->ok()) {
        promote_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - loss_time)
                         .count();
        break;
      }
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          parsed.ok() && parsed->kind == serve::Response::Kind::kOverloaded
              ? parsed->retry_after_ms
              : 10.0));
    }
  }
  if (promote_ms < 0.0) {
    kill_all(&router_child);
    return Fail(Status::Internal(
        "writes to '", probe_block,
        "' never recovered after its owner's hard loss — no promotion"));
  }
  outage.store(false);

  auto promo_stats = admin_call("stats");
  if (!promo_stats.ok() || ScanCount(*promo_stats, "promotions", 0) < 1) {
    kill_all(&router_child);
    return Fail(Status::Internal(
        "stats claim no promotion happened: ",
        promo_stats.ok() ? *promo_stats : promo_stats.status().ToString()));
  }
  const long long possibly_lost =
      ScanCount(*promo_stats, "possibly_lost_writes", -1);
  if (possibly_lost != 0) {
    kill_all(&router_child);
    return Fail(Status::Internal(
        "the replication queue was drained before the kill, yet promotion "
        "reports ",
        possibly_lost, " possibly-lost writes"));
  }

  // Dumps read the compacted clustering, so compact the fleet first. The
  // hard-lost owner makes the fan-out report partial success — expected,
  // and fine: every block's effective owner is a live backend by now.
  if (auto compacted = conn.Call("compact");
      !compacted.ok() || compacted->rfind("ok", 0) != 0) {
    std::cout << "rebalance: fleet compact partial (the dead owner): "
              << (compacted.ok() ? *compacted
                                 : compacted.status().ToString())
              << "\n";
  }

  // Zero acked-write loss: every document was acked in the catch-all pass,
  // so every owner's dump — including the promoted standbys' — must hold
  // an assignment for it.
  long long lost = 0;
  for (size_t b = 0; b < dataset.blocks.size(); ++b) {
    const corpus::Block& block = dataset.blocks[b];
    Result<std::string> response = Status::Internal("unset");
    for (int attempt = 0; attempt < 100; ++attempt) {
      response = conn.Call("dump " + block.query);
      if (response.ok() && response->rfind("ok", 0) == 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      if (!response.ok()) (void)conn.Connect("127.0.0.1", router_port);
    }
    if (!response.ok()) {
      kill_all(&router_child);
      return Fail(response.status());
    }
    auto served = serve::ParseDumpResponse(*response);
    if (!served.ok()) {
      kill_all(&router_child);
      return Fail(served.status());
    }
    for (size_t d = 0; d < block.documents.size(); ++d) {
      if ((*served)[d] < 0) {
        ++lost;
        std::cerr << "acked write lost: block '" << block.query << "' doc "
                  << d << "\n";
      }
    }
  }

  stop_reader.store(true);
  reader.join();
  WriterCounters totals;
  for (const WriterCounters& c : writer_counters) {
    totals.acked += c.acked;
    totals.sheds += c.sheds;
    totals.unavailable += c.unavailable;
    totals.transport += c.transport;
  }
  std::string router_stats;
  if (auto stats = admin_call("stats");
      stats.ok() && stats->rfind("ok ", 0) == 0) {
    router_stats = stats->substr(3);
  }

  int unclean_exits = 0;
  {
    auto status = StopSoft(&router_child);
    if (!status.ok() || !WIFEXITED(*status) || WEXITSTATUS(*status) != 0) {
      ++unclean_exits;
    }
  }
  for (size_t i = 0; i < servers.size(); ++i) {
    if (i == owner0) continue;  // drill C's permanent casualty
    auto status = StopSoft(&servers[i]);
    if (!status.ok() || !WIFEXITED(*status) || WEXITSTATUS(*status) != 0) {
      ++unclean_exits;
    }
  }

  const std::string out_path = flags.GetString("out");
  std::ofstream out(out_path);
  if (!out) return Fail(Status::IOError("cannot write ", out_path));
  JsonWriter json(out);
  json.BeginObject();
  json.Key("benchmark").String("weber_rebalance_drill");
  json.Key("backends").Number(kBackends);
  json.Key("writers").Number(n_writers);
  json.Key("seed").Number(flags.GetInt("seed"));
  json.Key("documents").Number(static_cast<long long>(work.size()));
  json.Key("acked").Number(totals.acked);
  json.Key("lost").Number(lost);
  json.Key("drill_a_planned").Number(planned_killed);
  json.Key("drill_a_failed_moves").Number(failed_killed);
  json.Key("drill_b_restored_overrides").Number(restored_overrides);
  json.Key("route_overrides_after_grow").Number(overrides_after_grow);
  json.Key("promotion_ms").Number(promote_ms);
  json.Key("possibly_lost_writes").Number(possibly_lost);
  json.Key("writer_sheds").Number(totals.sheds);
  json.Key("writer_unavailable").Number(totals.unavailable);
  json.Key("writer_transport_failures").Number(totals.transport);
  json.Key("reads_ok").Number(reads_ok.load());
  json.Key("reads_ok_during_outages").Number(reads_ok_during_outage.load());
  json.Key("reads_shed").Number(reads_shed.load());
  json.Key("read_failures").Number(read_failures.load());
  json.Key("reader_blips_router_down").Number(reader_blips.load());
  json.Key("unclean_exits").Number(unclean_exits);
  json.Key("router_stats").String(router_stats);
  json.EndObject();
  out << "\n";
  std::cout << "wrote " << out_path << "\n";

  if (lost > 0) {
    return Fail(Status::Corruption(lost, " acked writes lost in the drill"));
  }
  if (read_failures.load() > 0) {
    return Fail(Status::Internal(
        read_failures.load(),
        " reader failures while the router was up — failover did not carry "
        "the read path"));
  }
  if (reads_ok_during_outage.load() == 0) {
    return Fail(Status::Internal(
        "no successful reads during a backend outage window"));
  }
  if (unclean_exits > 0) {
    return Fail(Status::Internal(unclean_exits,
                                 " processes exited uncleanly on SIGTERM"));
  }
  std::cout << "rebalance drill ok: mid-export kill failed " << failed_killed
            << "/" << planned_killed << " moves then re-ran clean, router "
            << "SIGKILL restored " << restored_overrides
            << " overrides from its state file, hard owner loss promoted "
            << "the standby in " << FormatDouble(promote_ms, 1) << " ms, "
            << totals.acked << " acks with zero loss\n";
  return 0;
}

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("dataset", "", "path to a labeled WEBER dataset file");
  flags.AddString("gazetteer", "", "path to a WEBER gazetteer file");
  flags.AddString("serve_bin", "", "path to the weber_serve binary");
  flags.AddString("data_dir", "", "durable store handed to the child server");
  flags.AddInt("cycles", 20, "kill/recover cycles (the last one is graceful)");
  flags.AddInt("seed", 7, "randomizes assign order and kill points");
  flags.AddDouble("train_fraction", 0.10, "must match the server defaults");
  flags.AddInt("cal_seed", 0x5E21E, "calibration seed for child + reference");
  flags.AddInt("fleet", 0,
               "run the fleet kill drill against this many backends "
               "instead of the single-server torture loop (0 = classic)");
  flags.AddBool("migrate", false,
                "run the live-migration kill drill (3 backends, SIGKILL "
                "the source mid-copy and mid-flip) instead of the classic "
                "loop");
  flags.AddBool("rebalance", false,
                "run the fleet self-healing drill (3 backends + a forked "
                "weber_router: SIGKILL a rebalance source mid-export, the "
                "router mid-plan, and a block's owner for good) instead of "
                "the classic loop");
  flags.AddString("router_bin", "",
                  "path to the weber_router binary (--rebalance)");
  flags.AddInt("writers", 4, "storm writer threads (fleet mode)");
  flags.AddDouble("kill_at", 0.3,
                  "acked fraction at which the victim backend is "
                  "SIGKILLed (fleet mode)");
  flags.AddString("out", "BENCH_fleet.json",
                  "where the fleet drill writes its results (fleet mode)");
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--help") {
      std::cout << flags.Usage(
          "weber_crashtest — SIGKILL/recover torture harness asserting "
          "zero acked-write loss for weber_serve --data-dir");
      return 0;
    }
  }
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);
  for (const char* required : {"dataset", "gazetteer", "serve_bin",
                               "data_dir"}) {
    if (flags.GetString(required).empty()) {
      return Fail(Status::InvalidArgument("--", required, " is required"));
    }
  }
  const std::string serve_bin = flags.GetString("serve_bin");
  const std::string data_dir = flags.GetString("data_dir");
  const int cycles = std::max(1, flags.GetInt("cycles"));
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));

  auto dataset = corpus::LoadDatasetFromFile(flags.GetString("dataset"));
  if (!dataset.ok()) return Fail(dataset.status());
  if (flags.GetInt("fleet") > 0) return RunFleetMode(flags, *dataset);
  if (flags.GetBool("migrate")) return RunMigrateMode(flags, *dataset);
  if (flags.GetBool("rebalance")) return RunRebalanceMode(flags, *dataset);
  std::ifstream gz(flags.GetString("gazetteer"));
  if (!gz) {
    return Fail(Status::IOError("cannot read ", flags.GetString("gazetteer")));
  }
  auto gazetteer = corpus::LoadGazetteer(gz);
  if (!gazetteer.ok()) return Fail(gazetteer.status());

  if (auto st = WipeDataDir(data_dir); !st.ok()) return Fail(st);

  // The in-process reference. Assign() is idempotent, so after each crash
  // the reference simply absorbs whichever documents the recovered server
  // turns out to hold.
  serve::ServiceOptions ref_options;
  ref_options.train_fraction = flags.GetDouble("train_fraction");
  ref_options.calibration_seed =
      static_cast<uint64_t>(flags.GetInt("cal_seed"));
  auto reference =
      serve::ResolutionService::Create(*dataset, &*gazetteer, ref_options);
  if (!reference.ok()) return Fail(reference.status());

  // Work list: every (block, doc) once, in seeded random order.
  std::vector<std::pair<int, int>> work;
  for (size_t b = 0; b < dataset->blocks.size(); ++b) {
    for (size_t d = 0; d < dataset->blocks[b].documents.size(); ++d) {
      work.emplace_back(static_cast<int>(b), static_cast<int>(d));
    }
  }
  if (work.empty()) return Fail(Status::InvalidArgument("empty dataset"));
  for (size_t i = work.size(); i > 1; --i) {
    std::swap(work[i - 1], work[rng.UniformUint64(i)]);
  }

  const std::vector<std::string> server_args = {
      "--dataset=" + flags.GetString("dataset"),
      "--gazetteer=" + flags.GetString("gazetteer"),
      "--data-dir=" + data_dir,
      "--fsync=always",
      "--port=0",
      "--nostdio",
      "--max_delay_ms=0.5",
      "--train_fraction=" + FormatDouble(flags.GetDouble("train_fraction"), 6),
      "--seed=" + std::to_string(flags.GetInt("cal_seed")),
  };

  std::set<std::pair<int, int>> acked;  // answered "ok" at any point
  size_t cursor = 0;                    // next work item to attempt
  long long kills = 0;
  long long inflight_kills = 0;

  for (int cycle = 0; cycle < cycles; ++cycle) {
    const bool final_cycle = cycle == cycles - 1;
    auto server = SpawnServer(serve_bin, server_args);
    if (!server.ok()) return Fail(server.status());
    serve::LineConnection conn;
    if (auto st = conn.Connect("127.0.0.1", server->port); !st.ok()) {
      KillHard(&*server);
      return Fail(st);
    }

    // Verify recovery BEFORE resuming the storm: compact everything, then
    // check the dumped partitions against acked history and the reference.
    auto verify = [&]() -> Status {
      WEBER_ASSIGN_OR_RETURN(std::string compacted, conn.Call("compact"));
      if (compacted.rfind("ok", 0) != 0) {
        return Status::Internal("compact failed: ", compacted);
      }
      for (size_t b = 0; b < dataset->blocks.size(); ++b) {
        const corpus::Block& block = dataset->blocks[b];
        WEBER_ASSIGN_OR_RETURN(std::string response,
                               conn.Call("dump " + block.query));
        WEBER_ASSIGN_OR_RETURN(std::vector<int> served,
                               serve::ParseDumpResponse(response));
        // (a) Zero acked-write loss.
        for (size_t d = 0; d < block.documents.size(); ++d) {
          const auto key = std::make_pair(static_cast<int>(b),
                                          static_cast<int>(d));
          if (acked.count(key) != 0 && served[d] < 0) {
            return Status::Corruption("acked write lost: block '",
                                      block.query, "' doc ", d, " after ",
                                      kills, " kills");
          }
        }
        // (b) The recovered partition equals the reference over exactly
        // the recovered documents.
        for (size_t d = 0; d < served.size(); ++d) {
          if (served[d] >= 0) {
            WEBER_RETURN_NOT_OK(
                (*reference)
                    ->Assign(block.query, static_cast<int>(d))
                    .status());
          }
        }
        WEBER_RETURN_NOT_OK((*reference)->CompactAll());
        WEBER_ASSIGN_OR_RETURN(std::vector<int> expected,
                               (*reference)->DumpPartition(block.query));
        for (size_t d = 0; d < served.size(); ++d) {
          // The reference may hold docs whose ack never reached us; the
          // comparison is over the documents the server recovered.
          if (served[d] < 0) expected[d] = -1;
        }
        if (graph::Clustering::FromLabels(served) !=
            graph::Clustering::FromLabels(expected)) {
          return Status::Corruption("recovered partition for block '",
                                    block.query,
                                    "' diverges from the reference");
        }
      }
      return Status::OK();
    };
    if (auto st = verify(); !st.ok()) {
      KillHard(&*server);
      return Fail(st);
    }

    // Resume the storm from the cursor. Non-final cycles stop after a
    // seeded number of acks and SIGKILL; half the time a final request is
    // left in flight (sent, response unread) when the kill lands.
    const size_t remaining = work.size() - cursor;
    const size_t quota =
        final_cycle ? remaining
                    : std::min(remaining,
                               1 + rng.UniformUint64(std::max<size_t>(
                                       1, remaining / 2)));
    size_t done = 0;
    while (done < quota && cursor < work.size()) {
      const auto [b, d] = work[cursor];
      const std::string request = "assign " + dataset->blocks[b].query +
                                  " " + std::to_string(d);
      auto response = conn.Call(request);
      if (!response.ok()) {
        KillHard(&*server);
        return Fail(response.status());
      }
      if (response->rfind("ok", 0) != 0) {
        KillHard(&*server);
        return Fail(Status::Internal("assign rejected: ", *response));
      }
      acked.insert(work[cursor]);
      ++cursor;
      ++done;
    }

    if (final_cycle) {
      if (auto st = verify(); !st.ok()) {
        KillHard(&*server);
        return Fail(st);
      }
      auto status = StopSoft(&*server);
      if (!status.ok()) return Fail(status.status());
      if (!WIFEXITED(status.ValueOrDie()) ||
          WEXITSTATUS(status.ValueOrDie()) != 0) {
        return Fail(Status::Internal(
            "SIGTERM did not produce a clean exit (wait status ",
            status.ValueOrDie(), ")"));
      }
    } else {
      if (cursor < work.size() && rng.Bernoulli(0.5)) {
        // In-flight write: sent but never acknowledged. It may or may not
        // survive the kill; either way it stays in the work list and is
        // retried (assign is idempotent).
        (void)conn.SendLine("assign " +
                            dataset->blocks[work[cursor].first].query + " " +
                            std::to_string(work[cursor].second));
        ++inflight_kills;
      }
      KillHard(&*server);
      ++kills;
    }
  }

  std::cout << "crashtest ok: " << kills << " SIGKILLs ("
            << inflight_kills << " with a request in flight), "
            << acked.size() << "/" << work.size()
            << " documents acked and recovered, graceful SIGTERM exit 0\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }

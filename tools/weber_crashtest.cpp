// weber_crashtest: crash-recovery harness for weber_serve's durable shards.
//
//   weber_crashtest --dataset=D --gazetteer=G --serve_bin=./weber_serve
//       --data_dir=/tmp/weber-crash --cycles=20 --seed=7
//
// Each cycle forks a child `weber_serve --nostdio --port=0 --data-dir=...
// --fsync=always`, fires assigns at it over TCP in a seeded random order,
// and SIGKILLs it at a seeded random point — sometimes with a final request
// in flight whose response is never read, so the kill lands while the write
// may or may not have reached the WAL. The next cycle's startup recovers
// from the newest snapshot plus WAL replay; before resuming the storm the
// harness compacts every shard, dumps the recovered partitions and asserts:
//
//   (a) zero acked-write loss — every (block, doc) whose `assign` was
//       answered "ok" before the kill is present in the recovered shard;
//   (b) partition correctness — each recovered, compacted shard equals a
//       single-threaded in-process reference that re-assigns exactly the
//       recovered documents. Batch re-resolution is arrival-order
//       invariant, so any crash/recovery interleaving must land on the
//       same partition.
//
// The final cycle finishes all remaining work, verifies once more, then
// stops the child with SIGTERM and asserts a graceful exit 0 (the
// shutdown-drain path). Exit status: 0 = every cycle passed.
//
// --fleet=N switches to the fleet kill drill instead: N durable backends
// are forked, an in-process weber::router fronts them over TCP, writer
// threads storm assigns through the router (retrying OVERLOADED and
// Unavailable answers — both retry-safe, assign is idempotent) while a
// reader thread queries continuously. At --kill_at of the work acked, the
// backend owning the first block is SIGKILLed mid-storm, left dead while
// the storm keeps running, then restarted on the same port; the drill then
// asserts (a) every acked write is present in the owners' dumps after
// WAL/snapshot recovery — zero acked-write loss through a backend kill —
// (b) reads kept succeeding during the outage (failover), and (c) every
// backend exits 0 on SIGTERM. Results land in --out (BENCH_fleet.json).

#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/flags.h"
#include "common/json_writer.h"
#include "common/random.h"
#include "common/string_util.h"
#include "corpus/dataset_io.h"
#include "graph/clustering.h"
#include "router/router.h"
#include "serve/protocol.h"
#include "serve/resolution_service.h"
#include "serve/server.h"

using namespace weber;

namespace {

int Fail(const Status& status) {
  std::cerr << "error: " << status << "\n";
  return ExitCodeForStatus(status.code());
}

/// A running weber_serve child: pid, its stdout pipe, and the parsed port.
struct ServerProcess {
  pid_t pid = -1;
  int out_fd = -1;
  int port = -1;
};

void CloseProcess(ServerProcess* server) {
  if (server->out_fd >= 0) ::close(server->out_fd);
  server->out_fd = -1;
  server->pid = -1;
  server->port = -1;
}

/// SIGKILLs the child and reaps it. The whole point of the harness: the
/// process gets no chance to flush anything.
void KillHard(ServerProcess* server) {
  if (server->pid > 0) {
    ::kill(server->pid, SIGKILL);
    int status = 0;
    while (::waitpid(server->pid, &status, 0) < 0 && errno == EINTR) {
    }
  }
  CloseProcess(server);
}

/// SIGTERMs the child and returns its wait status (for the graceful-exit
/// assertion).
Result<int> StopSoft(ServerProcess* server) {
  if (server->pid <= 0) return Status::FailedPrecondition("no child");
  if (::kill(server->pid, SIGTERM) != 0) {
    return Status::IOError("kill(SIGTERM): ", std::strerror(errno));
  }
  int status = 0;
  while (::waitpid(server->pid, &status, 0) < 0 && errno == EINTR) {
  }
  CloseProcess(server);
  return status;
}

/// Reads the child's stdout until the "listening on 127.0.0.1:<port>"
/// announcement (or EOF / 30 s timeout, both of which mean startup failed).
Result<int> AwaitListeningPort(int fd) {
  std::string buffer;
  char chunk[512];
  const std::string needle = "listening on 127.0.0.1:";
  while (true) {
    size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      const size_t at = line.find(needle);
      if (at != std::string::npos) {
        return std::atoi(line.c_str() + at + needle.size());
      }
      continue;
    }
    pollfd pfd = {fd, POLLIN, 0};
    int rc = ::poll(&pfd, 1, 30000);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return Status::IOError("timed out waiting for the server");
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::IOError("server exited before announcing its port");
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
}

/// fork/execs `serve_bin` with the durable-serving flags, stdout piped back
/// so the ephemeral port announcement can be read.
Result<ServerProcess> SpawnServer(const std::string& serve_bin,
                                  const std::vector<std::string>& args) {
  int fds[2];
  if (::pipe(fds) != 0) {
    return Status::IOError("pipe(): ", std::strerror(errno));
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return Status::IOError("fork(): ", std::strerror(errno));
  }
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(serve_bin.c_str()));
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(serve_bin.c_str(), argv.data());
    std::fprintf(stderr, "execv(%s): %s\n", serve_bin.c_str(),
                 std::strerror(errno));
    _exit(127);
  }
  ::close(fds[1]);
  ServerProcess server;
  server.pid = pid;
  server.out_fd = fds[0];
  Result<int> port = AwaitListeningPort(fds[0]);
  if (!port.ok()) {
    KillHard(&server);
    return port.status();
  }
  server.port = port.ValueOrDie();
  return server;
}

/// Wipes the two-level data directory (shard dirs holding WAL + snapshots)
/// so every run starts from a cold store.
Status WipeDataDir(const std::string& dir) {
  if (!FileExists(dir)) return Status::OK();
  WEBER_ASSIGN_OR_RETURN(std::vector<std::string> entries,
                         ListDirectory(dir));
  for (const std::string& entry : entries) {
    const std::string sub = dir + "/" + entry;
    auto files = ListDirectory(sub);
    if (files.ok()) {
      for (const std::string& f : files.ValueOrDie()) {
        WEBER_RETURN_NOT_OK(RemoveFileIfExists(sub + "/" + f));
      }
      if (::rmdir(sub.c_str()) != 0) {
        return Status::IOError("rmdir(", sub, "): ", std::strerror(errno));
      }
    } else {
      WEBER_RETURN_NOT_OK(RemoveFileIfExists(sub));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Fleet kill drill (--fleet=N)
// ---------------------------------------------------------------------------

/// Per-writer counters for the fleet storm.
struct WriterCounters {
  long long acked = 0;
  long long sheds = 0;        // OVERLOADED answers (retried)
  long long unavailable = 0;  // err Unavailable answers (retried)
  long long transport = 0;    // failures talking to the router itself
};

int RunFleetMode(const FlagParser& flags, const corpus::Dataset& dataset) {
  const int n_backends = flags.GetInt("fleet");
  const int n_writers = std::max(1, flags.GetInt("writers"));
  const double kill_at =
      std::min(0.9, std::max(0.05, flags.GetDouble("kill_at")));
  const std::string serve_bin = flags.GetString("serve_bin");
  const std::string data_dir = flags.GetString("data_dir");
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));

  // Work list: every (block, doc) once, seeded random order.
  std::vector<std::pair<int, int>> work;
  for (size_t b = 0; b < dataset.blocks.size(); ++b) {
    for (size_t d = 0; d < dataset.blocks[b].documents.size(); ++d) {
      work.emplace_back(static_cast<int>(b), static_cast<int>(d));
    }
  }
  if (work.empty()) return Fail(Status::InvalidArgument("empty dataset"));
  rng.Shuffle(&work);

  auto backend_args = [&](int i, int port) {
    return std::vector<std::string>{
        "--dataset=" + flags.GetString("dataset"),
        "--gazetteer=" + flags.GetString("gazetteer"),
        "--data-dir=" + data_dir + "/backend" + std::to_string(i),
        "--fsync=always",
        "--port=" + std::to_string(port),
        "--nostdio",
        "--max_delay_ms=0.5",
        "--train_fraction=" +
            FormatDouble(flags.GetDouble("train_fraction"), 6),
        "--seed=" + std::to_string(flags.GetInt("cal_seed")),
    };
  };

  std::vector<ServerProcess> servers(static_cast<size_t>(n_backends));
  std::vector<std::string> endpoints;
  for (int i = 0; i < n_backends; ++i) {
    if (auto st = WipeDataDir(data_dir + "/backend" + std::to_string(i));
        !st.ok()) {
      return Fail(st);
    }
    auto server = SpawnServer(serve_bin, backend_args(i, 0));
    if (!server.ok()) return Fail(server.status());
    servers[static_cast<size_t>(i)] = *server;
    endpoints.push_back("127.0.0.1:" + std::to_string(server->port));
  }
  auto kill_fleet = [&] {
    for (ServerProcess& s : servers) KillHard(&s);
  };

  // The router, fronted over TCP exactly as weber_router would run it, but
  // in-process so the drill can watch backend health directly. Fast probe
  // cadence keeps detection and recovery inside the drill's time budget.
  router::RouterOptions ropts;
  ropts.probe_interval_ms = 50.0;
  ropts.probe_timeout_ms = 250.0;
  ropts.health.down_probe_interval_ms = 100.0;
  ropts.retry_backoff_ms = 5.0;
  ropts.retry_after_ms = 25.0;
  ropts.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  router::Router router(endpoints, ropts);
  router.Start();
  serve::LineServer front(
      [&router](const std::string& line, bool* quit) {
        return router.HandleLine(line, quit);
      });
  if (auto st = front.StartTcp(0); !st.ok()) {
    kill_fleet();
    return Fail(st);
  }
  const int router_port = front.tcp_port();

  // The victim owns the first block, so the kill is guaranteed to land on
  // a backend with write traffic.
  const size_t victim = router::Router::RouteOrder(
      dataset.blocks[0].query, static_cast<size_t>(n_backends))[0];

  std::atomic<size_t> acked_count{0};
  std::atomic<bool> outage{false};
  std::atomic<bool> stop_reader{false};
  std::atomic<long long> reads_ok{0};
  std::atomic<long long> reads_ok_during_outage{0};
  std::atomic<long long> reads_shed{0};
  std::atomic<long long> read_failures{0};

  // Reader: queries random documents through the router for the whole
  // drill. During the outage these must keep succeeding — reads fail over
  // to a live backend inside one request, so even a shed is tolerated but
  // a transport failure or error response is not.
  std::thread reader([&] {
    Rng reader_rng(static_cast<uint64_t>(flags.GetInt("seed")) ^ 0x4EADULL);
    serve::LineConnection conn;
    if (!conn.Connect("127.0.0.1", router_port).ok()) {
      read_failures.fetch_add(1);
      return;
    }
    while (!stop_reader.load(std::memory_order_relaxed)) {
      const auto& pick =
          work[reader_rng.UniformUint64(static_cast<uint64_t>(work.size()))];
      const std::string request =
          "query " + dataset.blocks[pick.first].query + " " +
          std::to_string(pick.second);
      const bool during_outage = outage.load(std::memory_order_relaxed);
      Result<std::string> response = conn.Call(request);
      if (!response.ok()) {
        read_failures.fetch_add(1);
        if (!conn.Connect("127.0.0.1", router_port).ok()) return;
        continue;
      }
      Result<serve::Response> parsed = serve::ParseResponse(*response);
      if (!parsed.ok()) {
        read_failures.fetch_add(1);
      } else if (parsed->ok()) {
        reads_ok.fetch_add(1);
        if (during_outage) reads_ok_during_outage.fetch_add(1);
      } else if (parsed->kind == serve::Response::Kind::kOverloaded) {
        reads_shed.fetch_add(1);
      } else {
        read_failures.fetch_add(1);
      }
    }
  });

  // Writers: stride the work list, each retrying every item until acked.
  // OVERLOADED honors the hint; err Unavailable (the write may have
  // applied) retries too — assign is idempotent, which is exactly the
  // client contract the router documents.
  std::vector<WriterCounters> writer_counters(
      static_cast<size_t>(n_writers));
  std::vector<Status> writer_failures(static_cast<size_t>(n_writers),
                                      Status::OK());
  std::vector<std::thread> writers;
  for (int w = 0; w < n_writers; ++w) {
    writers.emplace_back([&, w] {
      WriterCounters& counters = writer_counters[static_cast<size_t>(w)];
      Rng writer_rng(static_cast<uint64_t>(flags.GetInt("seed")) +
                     0xA5A5ULL * static_cast<uint64_t>(w + 1));
      serve::LineConnection conn;
      if (auto st = conn.Connect("127.0.0.1", router_port); !st.ok()) {
        writer_failures[static_cast<size_t>(w)] = st;
        return;
      }
      for (size_t i = static_cast<size_t>(w); i < work.size();
           i += static_cast<size_t>(n_writers)) {
        const std::string request =
            "assign " + dataset.blocks[work[i].first].query + " " +
            std::to_string(work[i].second);
        bool done = false;
        for (int attempt = 0; attempt < 2000 && !done; ++attempt) {
          Result<std::string> response = conn.Call(request);
          if (!response.ok()) {
            ++counters.transport;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            (void)conn.Connect("127.0.0.1", router_port);
            continue;
          }
          Result<serve::Response> parsed = serve::ParseResponse(*response);
          if (!parsed.ok()) {
            writer_failures[static_cast<size_t>(w)] = parsed.status();
            return;
          }
          switch (parsed->kind) {
            case serve::Response::Kind::kOk:
              ++counters.acked;
              acked_count.fetch_add(1, std::memory_order_relaxed);
              done = true;
              break;
            case serve::Response::Kind::kOverloaded:
              ++counters.sheds;
              std::this_thread::sleep_for(
                  std::chrono::duration<double, std::milli>(
                      parsed->retry_after_ms *
                      (1.0 + writer_rng.UniformDouble())));
              break;
            case serve::Response::Kind::kError:
              if (parsed->code == StatusCode::kUnavailable) {
                ++counters.unavailable;
                std::this_thread::sleep_for(std::chrono::milliseconds(10));
                break;
              }
              writer_failures[static_cast<size_t>(w)] = Status::Internal(
                  "assign rejected through the router: ", *response);
              return;
            case serve::Response::Kind::kDeadlineExceeded:
              writer_failures[static_cast<size_t>(w)] = Status::Internal(
                  "unexpected DEADLINE_EXCEEDED (no deadline sent)");
              return;
          }
        }
        if (!done) {
          writer_failures[static_cast<size_t>(w)] = Status::Internal(
              "'", request, "' never acked after 2000 attempts");
          return;
        }
      }
    });
  }

  // Mid-storm SIGKILL: wait for the threshold, kill the victim, leave it
  // dead long enough for the router to notice and shed onto it, then
  // restart it on the same port (SO_REUSEADDR) and wait for recovery.
  const size_t kill_threshold =
      std::max<size_t>(1, static_cast<size_t>(kill_at * work.size()));
  while (acked_count.load() < kill_threshold) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const int victim_port = servers[victim].port;
  std::cout << "fleet: SIGKILL backend " << victim << " (" << endpoints[victim]
            << ") at " << acked_count.load() << "/" << work.size()
            << " acked\n";
  outage.store(true);
  const auto outage_start = std::chrono::steady_clock::now();
  const long long probe_cycles_at_kill = router.probe_cycles();
  KillHard(&servers[victim]);

  // Hold the outage until the router has demoted the victim (state down),
  // so the drill provably exercises detection, not just a lucky miss.
  {
    const auto deadline = outage_start + std::chrono::seconds(10);
    while (router.backend(victim).state != router::HealthState::kDown) {
      if (std::chrono::steady_clock::now() > deadline) {
        kill_fleet();
        return Fail(Status::Internal(
            "router never marked the killed backend down"));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  const double detection_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - outage_start)
          .count();

  // Restart on the same port; the kernel may briefly hold the address even
  // with SO_REUSEADDR, so spawning retries.
  Result<ServerProcess> revived = Status::Internal("unspawned");
  for (int tries = 0; tries < 50; ++tries) {
    revived = SpawnServer(serve_bin, backend_args(static_cast<int>(victim),
                                                  victim_port));
    if (revived.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (!revived.ok()) {
    kill_fleet();
    return Fail(revived.status());
  }
  servers[victim] = *revived;

  // Recovery: the router must probe the backend back to routable.
  const auto recovery_start = std::chrono::steady_clock::now();
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!(router.backend(victim).state == router::HealthState::kHealthy ||
             router.backend(victim).state ==
                 router::HealthState::kProbation)) {
      if (std::chrono::steady_clock::now() > deadline) {
        kill_fleet();
        return Fail(Status::Internal(
            "router never routed the restarted backend again"));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  outage.store(false);
  const auto outage_end = std::chrono::steady_clock::now();
  const double outage_ms =
      std::chrono::duration<double, std::milli>(outage_end - outage_start)
          .count();
  // Recovery duration: restarted process back to routable — the part an
  // operator can tune with probe cadence and probation length.
  const double recovery_ms =
      std::chrono::duration<double, std::milli>(outage_end - recovery_start)
          .count();
  const long long probe_cycles_during_outage =
      router.probe_cycles() - probe_cycles_at_kill;
  std::cout << "fleet: backend " << victim << " recovered after "
            << FormatDouble(outage_ms, 1) << " ms ("
            << router::HealthStateName(router.backend(victim).state)
            << ", detection " << FormatDouble(detection_ms, 1)
            << " ms, recovery " << FormatDouble(recovery_ms, 1) << " ms, "
            << probe_cycles_during_outage << " probe cycles)\n";

  for (std::thread& t : writers) t.join();
  stop_reader.store(true);
  reader.join();
  for (const Status& st : writer_failures) {
    if (!st.ok()) {
      kill_fleet();
      return Fail(st);
    }
  }

  // Verify through the router: compact the whole fleet, then dump every
  // block from its owner and assert zero acked-write loss.
  serve::LineConnection conn;
  if (auto st = conn.Connect("127.0.0.1", router_port); !st.ok()) {
    kill_fleet();
    return Fail(st);
  }
  auto compacted = conn.Call("compact");
  if (!compacted.ok() || compacted->rfind("ok", 0) != 0) {
    kill_fleet();
    return Fail(Status::Internal(
        "fleet compact failed: ",
        compacted.ok() ? *compacted : compacted.status().ToString()));
  }
  long long lost = 0;
  for (size_t b = 0; b < dataset.blocks.size(); ++b) {
    const corpus::Block& block = dataset.blocks[b];
    auto response = conn.Call("dump " + block.query);
    if (!response.ok()) {
      kill_fleet();
      return Fail(response.status());
    }
    auto served = serve::ParseDumpResponse(*response);
    if (!served.ok()) {
      kill_fleet();
      return Fail(served.status());
    }
    for (size_t d = 0; d < block.documents.size(); ++d) {
      if ((*served)[d] < 0) {
        ++lost;
        std::cerr << "acked write lost: block '" << block.query << "' doc "
                  << d << "\n";
      }
    }
  }

  WriterCounters totals;
  for (const WriterCounters& c : writer_counters) {
    totals.acked += c.acked;
    totals.sheds += c.sheds;
    totals.unavailable += c.unavailable;
    totals.transport += c.transport;
  }
  std::string router_stats;
  if (auto stats = conn.Call("stats");
      stats.ok() && stats->rfind("ok ", 0) == 0) {
    router_stats = stats->substr(3);
  }

  // Graceful SIGTERM sweep: every backend (including the revived victim)
  // must drain and exit 0.
  front.StopTcp();
  router.Stop();
  int unclean_exits = 0;
  for (ServerProcess& s : servers) {
    auto status = StopSoft(&s);
    if (!status.ok() || !WIFEXITED(*status) || WEXITSTATUS(*status) != 0) {
      ++unclean_exits;
    }
  }

  const std::string out_path = flags.GetString("out");
  std::ofstream out(out_path);
  if (!out) return Fail(Status::IOError("cannot write ", out_path));
  JsonWriter json(out);
  json.BeginObject();
  json.Key("benchmark").String("weber_fleet_drill");
  json.Key("backends").Number(n_backends);
  json.Key("writers").Number(n_writers);
  json.Key("seed").Number(flags.GetInt("seed"));
  json.Key("documents").Number(static_cast<long long>(work.size()));
  json.Key("acked").Number(totals.acked);
  json.Key("lost").Number(lost);
  json.Key("victim").String(endpoints[victim]);
  json.Key("outage_ms").Number(outage_ms);
  json.Key("detection_ms").Number(detection_ms);
  json.Key("recovery_ms").Number(recovery_ms);
  json.Key("probe_cycles_during_outage").Number(probe_cycles_during_outage);
  json.Key("probe_cycles_total").Number(router.probe_cycles());
  json.Key("writer_sheds").Number(totals.sheds);
  json.Key("writer_unavailable").Number(totals.unavailable);
  json.Key("writer_transport_failures").Number(totals.transport);
  json.Key("reads_ok").Number(reads_ok.load());
  json.Key("reads_ok_during_outage").Number(reads_ok_during_outage.load());
  json.Key("reads_shed").Number(reads_shed.load());
  json.Key("read_failures").Number(read_failures.load());
  json.Key("unclean_exits").Number(unclean_exits);
  json.Key("router_stats").String(router_stats);
  json.EndObject();
  out << "\n";
  std::cout << "wrote " << out_path << "\n";

  if (lost > 0) {
    return Fail(Status::Corruption(lost, " acked writes lost in the drill"));
  }
  if (read_failures.load() > 0) {
    return Fail(Status::Internal(read_failures.load(),
                                 " reader failures during the drill"));
  }
  if (reads_ok_during_outage.load() == 0) {
    return Fail(Status::Internal(
        "no successful reads during the outage window — failover did not "
        "carry the read path"));
  }
  if (unclean_exits > 0) {
    return Fail(Status::Internal(unclean_exits,
                                 " backends exited uncleanly on SIGTERM"));
  }
  std::cout << "fleet drill ok: " << totals.acked << "/" << work.size()
            << " acked and recovered across a SIGKILL ("
            << FormatDouble(outage_ms, 1) << " ms outage, "
            << reads_ok_during_outage.load()
            << " reads served during it, " << totals.sheds << " sheds, "
            << totals.unavailable
            << " unavailable answers retried), graceful SIGTERM exit 0 x"
            << n_backends << "\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Migration kill drill (--migrate)
// ---------------------------------------------------------------------------
//
// Three durable backends behind the in-process router; the drill storms
// assigns/queries while migrating the first block and SIGKILLing its source
// backend at the two nastiest moments:
//
//   1. mid-copy  — the source's export stalls (migrate.export latency fault
//      armed in the child) and the kill lands inside the stall. The
//      migration must roll back (no flip, no loss) and the fleet rides out
//      the outage like any backend death.
//   2. mid-flip  — the router's own flip stalls (migrate.flip latency fault
//      armed in-process) and the kill lands inside the stall. The target
//      already holds the full copy, so the flip must complete and every
//      acked write must survive the source's death.
//
// After the storm a clean migration moves the block once more and asserts
// the dump through the router is byte-identical before and after. Results
// land in --out (BENCH_migrate.json).
int RunMigrateMode(const FlagParser& flags, const corpus::Dataset& dataset) {
  constexpr int kBackends = 3;
  const int n_writers = std::max(1, flags.GetInt("writers"));
  const double kill_at =
      std::min(0.9, std::max(0.05, flags.GetDouble("kill_at")));
  const std::string serve_bin = flags.GetString("serve_bin");
  const std::string data_dir = flags.GetString("data_dir");
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));

  std::vector<std::pair<int, int>> work;
  for (size_t b = 0; b < dataset.blocks.size(); ++b) {
    for (size_t d = 0; d < dataset.blocks[b].documents.size(); ++d) {
      work.emplace_back(static_cast<int>(b), static_cast<int>(d));
    }
  }
  if (work.empty()) return Fail(Status::InvalidArgument("empty dataset"));
  rng.Shuffle(&work);

  const std::string moved_block = dataset.blocks[0].query;
  const std::vector<size_t> block0_order =
      router::Router::RouteOrder(moved_block, kBackends);
  const size_t victim = block0_order[0];  // source of every migration
  const size_t target = block0_order[1];  // destination of both kill drills
  const size_t spare = block0_order[2];   // destination of the clean pass

  auto backend_args = [&](int i, int port, const std::string& faults) {
    std::vector<std::string> args{
        "--dataset=" + flags.GetString("dataset"),
        "--gazetteer=" + flags.GetString("gazetteer"),
        "--data-dir=" + data_dir + "/backend" + std::to_string(i),
        "--fsync=always",
        "--port=" + std::to_string(port),
        "--nostdio",
        "--max_delay_ms=0.5",
        "--train_fraction=" +
            FormatDouble(flags.GetDouble("train_fraction"), 6),
        "--seed=" + std::to_string(flags.GetInt("cal_seed")),
    };
    if (!faults.empty()) args.push_back("--faults=" + faults);
    return args;
  };

  std::vector<ServerProcess> servers(kBackends);
  std::vector<std::string> endpoints;
  for (int i = 0; i < kBackends; ++i) {
    if (auto st = WipeDataDir(data_dir + "/backend" + std::to_string(i));
        !st.ok()) {
      return Fail(st);
    }
    // The victim's first export stalls 1500 ms so the mid-copy SIGKILL
    // deterministically lands while the bulk copy is in flight.
    const std::string faults =
        static_cast<size_t>(i) == victim ? "migrate.export=latency:1:1500:1"
                                         : "";
    auto server = SpawnServer(serve_bin, backend_args(i, 0, faults));
    if (!server.ok()) return Fail(server.status());
    servers[static_cast<size_t>(i)] = *server;
    endpoints.push_back("127.0.0.1:" + std::to_string(server->port));
  }
  auto kill_fleet = [&] {
    for (ServerProcess& s : servers) KillHard(&s);
  };

  router::RouterOptions ropts;
  ropts.probe_interval_ms = 50.0;
  ropts.probe_timeout_ms = 250.0;
  ropts.health.down_probe_interval_ms = 100.0;
  ropts.retry_backoff_ms = 5.0;
  ropts.retry_after_ms = 25.0;
  ropts.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  // Generous pause: the mid-flip drill spends ~1 s stalled inside it and
  // the flip must still beat the expiry to complete.
  ropts.migrate_pause_ms = 3000.0;
  router::Router router(endpoints, ropts);
  router.Start();
  serve::LineServer front(
      [&router](const std::string& line, bool* quit) {
        return router.HandleLine(line, quit);
      });
  if (auto st = front.StartTcp(0); !st.ok()) {
    kill_fleet();
    return Fail(st);
  }
  const int router_port = front.tcp_port();

  std::atomic<size_t> acked_count{0};
  std::atomic<bool> outage{false};
  std::atomic<bool> stop_reader{false};
  std::atomic<bool> stop_writers{false};
  std::atomic<int> first_passes{0};
  std::atomic<long long> reads_ok{0};
  std::atomic<long long> reads_ok_during_outage{0};
  std::atomic<long long> reads_shed{0};
  std::atomic<long long> read_failures{0};

  std::thread reader([&] {
    Rng reader_rng(static_cast<uint64_t>(flags.GetInt("seed")) ^ 0x4EADULL);
    serve::LineConnection conn;
    if (!conn.Connect("127.0.0.1", router_port).ok()) {
      read_failures.fetch_add(1);
      return;
    }
    while (!stop_reader.load(std::memory_order_relaxed)) {
      const auto& pick =
          work[reader_rng.UniformUint64(static_cast<uint64_t>(work.size()))];
      const std::string request =
          "query " + dataset.blocks[pick.first].query + " " +
          std::to_string(pick.second);
      const bool during_outage = outage.load(std::memory_order_relaxed);
      Result<std::string> response = conn.Call(request);
      if (!response.ok()) {
        read_failures.fetch_add(1);
        if (!conn.Connect("127.0.0.1", router_port).ok()) return;
        continue;
      }
      Result<serve::Response> parsed = serve::ParseResponse(*response);
      if (!parsed.ok()) {
        read_failures.fetch_add(1);
      } else if (parsed->ok()) {
        reads_ok.fetch_add(1);
        if (during_outage) reads_ok_during_outage.fetch_add(1);
      } else if (parsed->kind == serve::Response::Kind::kOverloaded) {
        reads_shed.fetch_add(1);
      } else {
        read_failures.fetch_add(1);
      }
    }
  });

  // Writers cycle the work list (assign is idempotent) so the storm keeps
  // running through both kill windows, however small the dataset. The
  // first full pass acks every document; later passes just keep the
  // pressure on, including OVERLOADED sheds against the migration pause.
  std::vector<WriterCounters> writer_counters(
      static_cast<size_t>(n_writers));
  std::vector<Status> writer_failures(static_cast<size_t>(n_writers),
                                      Status::OK());
  std::vector<std::thread> writers;
  for (int w = 0; w < n_writers; ++w) {
    writers.emplace_back([&, w] {
      WriterCounters& counters = writer_counters[static_cast<size_t>(w)];
      Rng writer_rng(static_cast<uint64_t>(flags.GetInt("seed")) +
                     0xA5A5ULL * static_cast<uint64_t>(w + 1));
      serve::LineConnection conn;
      if (auto st = conn.Connect("127.0.0.1", router_port); !st.ok()) {
        writer_failures[static_cast<size_t>(w)] = st;
        return;
      }
      bool first_pass = true;
      for (size_t i = static_cast<size_t>(w);;) {
        if (i >= work.size()) {
          if (first_pass) {
            first_pass = false;
            first_passes.fetch_add(1);
          }
          if (stop_writers.load(std::memory_order_relaxed)) return;
          i = static_cast<size_t>(w);
          continue;
        }
        const std::string request =
            "assign " + dataset.blocks[work[i].first].query + " " +
            std::to_string(work[i].second);
        bool done = false;
        for (int attempt = 0; attempt < 2000 && !done; ++attempt) {
          Result<std::string> response = conn.Call(request);
          if (!response.ok()) {
            ++counters.transport;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            (void)conn.Connect("127.0.0.1", router_port);
            continue;
          }
          Result<serve::Response> parsed = serve::ParseResponse(*response);
          if (!parsed.ok()) {
            writer_failures[static_cast<size_t>(w)] = parsed.status();
            return;
          }
          switch (parsed->kind) {
            case serve::Response::Kind::kOk:
              ++counters.acked;
              acked_count.fetch_add(1, std::memory_order_relaxed);
              done = true;
              break;
            case serve::Response::Kind::kOverloaded:
              ++counters.sheds;
              std::this_thread::sleep_for(
                  std::chrono::duration<double, std::milli>(
                      parsed->retry_after_ms *
                      (1.0 + writer_rng.UniformDouble())));
              break;
            case serve::Response::Kind::kError:
              if (parsed->code == StatusCode::kUnavailable) {
                ++counters.unavailable;
                std::this_thread::sleep_for(std::chrono::milliseconds(10));
                break;
              }
              writer_failures[static_cast<size_t>(w)] = Status::Internal(
                  "assign rejected through the router: ", *response);
              return;
            case serve::Response::Kind::kDeadlineExceeded:
              writer_failures[static_cast<size_t>(w)] = Status::Internal(
                  "unexpected DEADLINE_EXCEEDED (no deadline sent)");
              return;
          }
        }
        if (!done) {
          writer_failures[static_cast<size_t>(w)] = Status::Internal(
              "'", request, "' never acked after 2000 attempts");
          return;
        }
        i += static_cast<size_t>(n_writers);
      }
    });
  }

  // Issues `migrate` through the router on its own connection and hands
  // back the raw response; runs in a thread so the drill can SIGKILL the
  // source while the migration is in flight.
  auto call_migrate = [&](size_t to) -> Result<std::string> {
    serve::LineConnection conn;
    WEBER_RETURN_NOT_OK(conn.Connect("127.0.0.1", router_port));
    return conn.Call("migrate " + moved_block + " " + endpoints[to]);
  };

  // Rides out a source kill: waits for the router to demote the victim,
  // restarts it on the same port (no faults), waits until routable again.
  auto recover_victim = [&](int victim_port) -> Result<double> {
    const auto outage_start = std::chrono::steady_clock::now();
    {
      const auto deadline = outage_start + std::chrono::seconds(10);
      while (router.backend(victim).state != router::HealthState::kDown) {
        if (std::chrono::steady_clock::now() > deadline) {
          return Status::Internal(
              "router never marked the killed source down");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    Result<ServerProcess> revived = Status::Internal("unspawned");
    for (int tries = 0; tries < 50; ++tries) {
      revived = SpawnServer(
          serve_bin,
          backend_args(static_cast<int>(victim), victim_port, ""));
      if (revived.ok()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    WEBER_RETURN_NOT_OK(revived.status());
    servers[victim] = *revived;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!(router.backend(victim).state == router::HealthState::kHealthy ||
             router.backend(victim).state ==
                 router::HealthState::kProbation)) {
      if (std::chrono::steady_clock::now() > deadline) {
        return Status::Internal(
            "router never routed the restarted source again");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - outage_start)
        .count();
  };

  const size_t kill_threshold =
      std::max<size_t>(1, static_cast<size_t>(kill_at * work.size()));
  while (acked_count.load() < kill_threshold) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // --- Drill 1: SIGKILL the source mid-copy -------------------------------
  std::cout << "migrate: moving '" << moved_block << "' "
            << endpoints[victim] << " -> " << endpoints[target]
            << ", SIGKILL source mid-copy\n";
  Result<std::string> midcopy_response = Status::Internal("unset");
  std::thread midcopy([&] { midcopy_response = call_migrate(target); });
  // The victim's armed export fault stalls the bulk copy 1500 ms; landing
  // the kill 400 ms in guarantees the copy is in flight when it dies.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  outage.store(true);
  const int victim_port1 = servers[victim].port;
  KillHard(&servers[victim]);
  midcopy.join();
  if (midcopy_response.ok() &&
      midcopy_response.ValueOrDie().rfind("ok", 0) == 0) {
    kill_fleet();
    return Fail(Status::Internal(
        "migration reported success with its source killed mid-copy: ",
        midcopy_response.ValueOrDie()));
  }
  Result<double> outage1_ms = recover_victim(victim_port1);
  if (!outage1_ms.ok()) {
    kill_fleet();
    return Fail(outage1_ms.status());
  }
  outage.store(false);
  const long long reads_during_outage1 = reads_ok_during_outage.load();
  std::cout << "migrate: mid-copy kill rolled back cleanly, source back in "
            << FormatDouble(*outage1_ms, 1) << " ms\n";

  // --- Drill 2: SIGKILL the source mid-flip -------------------------------
  // The stall runs in the router (this process), after the catch-up copy:
  // the target holds everything, so the flip must complete without the
  // source.
  faults::FaultInjector::Instance().Seed(
      static_cast<uint64_t>(flags.GetInt("seed")));
  if (auto st = faults::FaultInjector::Instance().ArmFromSpec(
          "migrate.flip=latency:1:1000:1");
      !st.ok()) {
    kill_fleet();
    return Fail(st);
  }
  std::cout << "migrate: moving '" << moved_block << "' again, SIGKILL "
            << "source mid-flip\n";
  Result<std::string> midflip_response = Status::Internal("unset");
  std::thread midflip([&] { midflip_response = call_migrate(target); });
  // Copy + catch-up of one block take a few ms; 300 ms in, the migration
  // is parked inside the 1000 ms flip stall.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  outage.store(true);
  const int victim_port2 = servers[victim].port;
  KillHard(&servers[victim]);
  midflip.join();
  if (!midflip_response.ok() ||
      midflip_response.ValueOrDie().rfind("ok", 0) != 0) {
    kill_fleet();
    return Fail(Status::Internal(
        "mid-flip migration did not complete from the copied data: ",
        midflip_response.ok() ? midflip_response.ValueOrDie()
                              : midflip_response.status().ToString()));
  }
  Result<double> outage2_ms = recover_victim(victim_port2);
  if (!outage2_ms.ok()) {
    kill_fleet();
    return Fail(outage2_ms.status());
  }
  outage.store(false);
  const long long reads_during_outage2 =
      reads_ok_during_outage.load() - reads_during_outage1;
  std::cout << "migrate: mid-flip kill completed the flip, source back in "
            << FormatDouble(*outage2_ms, 1) << " ms\n";

  // Let the storm finish a full pass everywhere, then stop it.
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (first_passes.load() < n_writers) {
      if (std::chrono::steady_clock::now() > deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  stop_writers.store(true);
  for (std::thread& t : writers) t.join();
  stop_reader.store(true);
  reader.join();
  for (const Status& st : writer_failures) {
    if (!st.ok()) {
      kill_fleet();
      return Fail(st);
    }
  }

  serve::LineConnection conn;
  if (auto st = conn.Connect("127.0.0.1", router_port); !st.ok()) {
    kill_fleet();
    return Fail(st);
  }
  auto compacted = conn.Call("compact");
  if (!compacted.ok() || compacted->rfind("ok", 0) != 0) {
    kill_fleet();
    return Fail(Status::Internal(
        "fleet compact failed: ",
        compacted.ok() ? *compacted : compacted.status().ToString()));
  }

  // --- Drill 3: clean migration, dump byte-identity -----------------------
  auto dump_moved = [&]() -> Result<std::string> {
    return conn.Call("dump " + moved_block);
  };
  Result<std::string> pre_dump = dump_moved();
  if (!pre_dump.ok()) {
    kill_fleet();
    return Fail(pre_dump.status());
  }
  auto clean = conn.Call("migrate " + moved_block + " " + endpoints[spare]);
  if (!clean.ok() || clean->rfind("ok", 0) != 0) {
    kill_fleet();
    return Fail(Status::Internal(
        "clean migration failed: ",
        clean.ok() ? *clean : clean.status().ToString()));
  }
  Result<std::string> post_dump = dump_moved();
  if (!post_dump.ok()) {
    kill_fleet();
    return Fail(post_dump.status());
  }
  const bool dump_identical = *pre_dump == *post_dump;

  // Zero acked-write loss: the storm acked every document at least once,
  // so every label in every owner's dump must be assigned.
  long long lost = 0;
  for (size_t b = 0; b < dataset.blocks.size(); ++b) {
    const corpus::Block& block = dataset.blocks[b];
    auto response = conn.Call("dump " + block.query);
    if (!response.ok()) {
      kill_fleet();
      return Fail(response.status());
    }
    auto served = serve::ParseDumpResponse(*response);
    if (!served.ok()) {
      kill_fleet();
      return Fail(served.status());
    }
    for (size_t d = 0; d < block.documents.size(); ++d) {
      if ((*served)[d] < 0) {
        ++lost;
        std::cerr << "acked write lost: block '" << block.query << "' doc "
                  << d << "\n";
      }
    }
  }

  WriterCounters totals;
  for (const WriterCounters& c : writer_counters) {
    totals.acked += c.acked;
    totals.sheds += c.sheds;
    totals.unavailable += c.unavailable;
    totals.transport += c.transport;
  }
  std::string router_stats;
  if (auto stats = conn.Call("stats");
      stats.ok() && stats->rfind("ok ", 0) == 0) {
    router_stats = stats->substr(3);
  }

  front.StopTcp();
  router.Stop();
  faults::FaultInjector::Instance().DisarmAll();
  int unclean_exits = 0;
  for (ServerProcess& s : servers) {
    auto status = StopSoft(&s);
    if (!status.ok() || !WIFEXITED(*status) || WEXITSTATUS(*status) != 0) {
      ++unclean_exits;
    }
  }

  const std::string out_path = flags.GetString("out");
  std::ofstream out(out_path);
  if (!out) return Fail(Status::IOError("cannot write ", out_path));
  JsonWriter json(out);
  json.BeginObject();
  json.Key("benchmark").String("weber_migrate_drill");
  json.Key("backends").Number(kBackends);
  json.Key("writers").Number(n_writers);
  json.Key("seed").Number(flags.GetInt("seed"));
  json.Key("documents").Number(static_cast<long long>(work.size()));
  json.Key("acked").Number(totals.acked);
  json.Key("lost").Number(lost);
  json.Key("moved_block").String(moved_block);
  json.Key("source").String(endpoints[victim]);
  json.Key("midcopy_rolled_back").Bool(true);
  json.Key("midcopy_outage_ms").Number(*outage1_ms);
  json.Key("midflip_completed").Bool(true);
  json.Key("midflip_outage_ms").Number(*outage2_ms);
  json.Key("clean_dump_identical").Bool(dump_identical);
  json.Key("writer_sheds").Number(totals.sheds);
  json.Key("writer_unavailable").Number(totals.unavailable);
  json.Key("writer_transport_failures").Number(totals.transport);
  json.Key("reads_ok").Number(reads_ok.load());
  json.Key("reads_ok_during_midcopy_outage").Number(reads_during_outage1);
  json.Key("reads_ok_during_midflip_outage").Number(reads_during_outage2);
  json.Key("reads_shed").Number(reads_shed.load());
  json.Key("read_failures").Number(read_failures.load());
  json.Key("unclean_exits").Number(unclean_exits);
  json.Key("router_stats").String(router_stats);
  json.EndObject();
  out << "\n";
  std::cout << "wrote " << out_path << "\n";

  if (lost > 0) {
    return Fail(Status::Corruption(lost, " acked writes lost in the drill"));
  }
  if (!dump_identical) {
    return Fail(Status::Corruption(
        "the clean migration changed the moved block's dump:\n  pre:  ",
        *pre_dump, "\n  post: ", *post_dump));
  }
  if (read_failures.load() > 0) {
    return Fail(Status::Internal(read_failures.load(),
                                 " reader failures during the drill"));
  }
  if (reads_during_outage1 == 0 || reads_during_outage2 == 0) {
    return Fail(Status::Internal(
        "no successful reads during an outage window — failover did not "
        "carry the read path"));
  }
  if (unclean_exits > 0) {
    return Fail(Status::Internal(unclean_exits,
                                 " backends exited uncleanly on SIGTERM"));
  }
  std::cout << "migrate drill ok: '" << moved_block
            << "' survived SIGKILL mid-copy (rolled back, "
            << FormatDouble(*outage1_ms, 1) << " ms outage) and mid-flip "
            << "(completed, " << FormatDouble(*outage2_ms, 1)
            << " ms outage), clean pass byte-identical, " << totals.acked
            << " acks with zero loss, " << totals.sheds << " sheds, "
            << "graceful SIGTERM exit 0 x" << kBackends << "\n";
  return 0;
}

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("dataset", "", "path to a labeled WEBER dataset file");
  flags.AddString("gazetteer", "", "path to a WEBER gazetteer file");
  flags.AddString("serve_bin", "", "path to the weber_serve binary");
  flags.AddString("data_dir", "", "durable store handed to the child server");
  flags.AddInt("cycles", 20, "kill/recover cycles (the last one is graceful)");
  flags.AddInt("seed", 7, "randomizes assign order and kill points");
  flags.AddDouble("train_fraction", 0.10, "must match the server defaults");
  flags.AddInt("cal_seed", 0x5E21E, "calibration seed for child + reference");
  flags.AddInt("fleet", 0,
               "run the fleet kill drill against this many backends "
               "instead of the single-server torture loop (0 = classic)");
  flags.AddBool("migrate", false,
                "run the live-migration kill drill (3 backends, SIGKILL "
                "the source mid-copy and mid-flip) instead of the classic "
                "loop");
  flags.AddInt("writers", 4, "storm writer threads (fleet mode)");
  flags.AddDouble("kill_at", 0.3,
                  "acked fraction at which the victim backend is "
                  "SIGKILLed (fleet mode)");
  flags.AddString("out", "BENCH_fleet.json",
                  "where the fleet drill writes its results (fleet mode)");
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--help") {
      std::cout << flags.Usage(
          "weber_crashtest — SIGKILL/recover torture harness asserting "
          "zero acked-write loss for weber_serve --data-dir");
      return 0;
    }
  }
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);
  for (const char* required : {"dataset", "gazetteer", "serve_bin",
                               "data_dir"}) {
    if (flags.GetString(required).empty()) {
      return Fail(Status::InvalidArgument("--", required, " is required"));
    }
  }
  const std::string serve_bin = flags.GetString("serve_bin");
  const std::string data_dir = flags.GetString("data_dir");
  const int cycles = std::max(1, flags.GetInt("cycles"));
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));

  auto dataset = corpus::LoadDatasetFromFile(flags.GetString("dataset"));
  if (!dataset.ok()) return Fail(dataset.status());
  if (flags.GetInt("fleet") > 0) return RunFleetMode(flags, *dataset);
  if (flags.GetBool("migrate")) return RunMigrateMode(flags, *dataset);
  std::ifstream gz(flags.GetString("gazetteer"));
  if (!gz) {
    return Fail(Status::IOError("cannot read ", flags.GetString("gazetteer")));
  }
  auto gazetteer = corpus::LoadGazetteer(gz);
  if (!gazetteer.ok()) return Fail(gazetteer.status());

  if (auto st = WipeDataDir(data_dir); !st.ok()) return Fail(st);

  // The in-process reference. Assign() is idempotent, so after each crash
  // the reference simply absorbs whichever documents the recovered server
  // turns out to hold.
  serve::ServiceOptions ref_options;
  ref_options.train_fraction = flags.GetDouble("train_fraction");
  ref_options.calibration_seed =
      static_cast<uint64_t>(flags.GetInt("cal_seed"));
  auto reference =
      serve::ResolutionService::Create(*dataset, &*gazetteer, ref_options);
  if (!reference.ok()) return Fail(reference.status());

  // Work list: every (block, doc) once, in seeded random order.
  std::vector<std::pair<int, int>> work;
  for (size_t b = 0; b < dataset->blocks.size(); ++b) {
    for (size_t d = 0; d < dataset->blocks[b].documents.size(); ++d) {
      work.emplace_back(static_cast<int>(b), static_cast<int>(d));
    }
  }
  if (work.empty()) return Fail(Status::InvalidArgument("empty dataset"));
  for (size_t i = work.size(); i > 1; --i) {
    std::swap(work[i - 1], work[rng.UniformUint64(i)]);
  }

  const std::vector<std::string> server_args = {
      "--dataset=" + flags.GetString("dataset"),
      "--gazetteer=" + flags.GetString("gazetteer"),
      "--data-dir=" + data_dir,
      "--fsync=always",
      "--port=0",
      "--nostdio",
      "--max_delay_ms=0.5",
      "--train_fraction=" + FormatDouble(flags.GetDouble("train_fraction"), 6),
      "--seed=" + std::to_string(flags.GetInt("cal_seed")),
  };

  std::set<std::pair<int, int>> acked;  // answered "ok" at any point
  size_t cursor = 0;                    // next work item to attempt
  long long kills = 0;
  long long inflight_kills = 0;

  for (int cycle = 0; cycle < cycles; ++cycle) {
    const bool final_cycle = cycle == cycles - 1;
    auto server = SpawnServer(serve_bin, server_args);
    if (!server.ok()) return Fail(server.status());
    serve::LineConnection conn;
    if (auto st = conn.Connect("127.0.0.1", server->port); !st.ok()) {
      KillHard(&*server);
      return Fail(st);
    }

    // Verify recovery BEFORE resuming the storm: compact everything, then
    // check the dumped partitions against acked history and the reference.
    auto verify = [&]() -> Status {
      WEBER_ASSIGN_OR_RETURN(std::string compacted, conn.Call("compact"));
      if (compacted.rfind("ok", 0) != 0) {
        return Status::Internal("compact failed: ", compacted);
      }
      for (size_t b = 0; b < dataset->blocks.size(); ++b) {
        const corpus::Block& block = dataset->blocks[b];
        WEBER_ASSIGN_OR_RETURN(std::string response,
                               conn.Call("dump " + block.query));
        WEBER_ASSIGN_OR_RETURN(std::vector<int> served,
                               serve::ParseDumpResponse(response));
        // (a) Zero acked-write loss.
        for (size_t d = 0; d < block.documents.size(); ++d) {
          const auto key = std::make_pair(static_cast<int>(b),
                                          static_cast<int>(d));
          if (acked.count(key) != 0 && served[d] < 0) {
            return Status::Corruption("acked write lost: block '",
                                      block.query, "' doc ", d, " after ",
                                      kills, " kills");
          }
        }
        // (b) The recovered partition equals the reference over exactly
        // the recovered documents.
        for (size_t d = 0; d < served.size(); ++d) {
          if (served[d] >= 0) {
            WEBER_RETURN_NOT_OK(
                (*reference)
                    ->Assign(block.query, static_cast<int>(d))
                    .status());
          }
        }
        WEBER_RETURN_NOT_OK((*reference)->CompactAll());
        WEBER_ASSIGN_OR_RETURN(std::vector<int> expected,
                               (*reference)->DumpPartition(block.query));
        for (size_t d = 0; d < served.size(); ++d) {
          // The reference may hold docs whose ack never reached us; the
          // comparison is over the documents the server recovered.
          if (served[d] < 0) expected[d] = -1;
        }
        if (graph::Clustering::FromLabels(served) !=
            graph::Clustering::FromLabels(expected)) {
          return Status::Corruption("recovered partition for block '",
                                    block.query,
                                    "' diverges from the reference");
        }
      }
      return Status::OK();
    };
    if (auto st = verify(); !st.ok()) {
      KillHard(&*server);
      return Fail(st);
    }

    // Resume the storm from the cursor. Non-final cycles stop after a
    // seeded number of acks and SIGKILL; half the time a final request is
    // left in flight (sent, response unread) when the kill lands.
    const size_t remaining = work.size() - cursor;
    const size_t quota =
        final_cycle ? remaining
                    : std::min(remaining,
                               1 + rng.UniformUint64(std::max<size_t>(
                                       1, remaining / 2)));
    size_t done = 0;
    while (done < quota && cursor < work.size()) {
      const auto [b, d] = work[cursor];
      const std::string request = "assign " + dataset->blocks[b].query +
                                  " " + std::to_string(d);
      auto response = conn.Call(request);
      if (!response.ok()) {
        KillHard(&*server);
        return Fail(response.status());
      }
      if (response->rfind("ok", 0) != 0) {
        KillHard(&*server);
        return Fail(Status::Internal("assign rejected: ", *response));
      }
      acked.insert(work[cursor]);
      ++cursor;
      ++done;
    }

    if (final_cycle) {
      if (auto st = verify(); !st.ok()) {
        KillHard(&*server);
        return Fail(st);
      }
      auto status = StopSoft(&*server);
      if (!status.ok()) return Fail(status.status());
      if (!WIFEXITED(status.ValueOrDie()) ||
          WEXITSTATUS(status.ValueOrDie()) != 0) {
        return Fail(Status::Internal(
            "SIGTERM did not produce a clean exit (wait status ",
            status.ValueOrDie(), ")"));
      }
    } else {
      if (cursor < work.size() && rng.Bernoulli(0.5)) {
        // In-flight write: sent but never acknowledged. It may or may not
        // survive the kill; either way it stays in the work list and is
        // retried (assign is idempotent).
        (void)conn.SendLine("assign " +
                            dataset->blocks[work[cursor].first].query + " " +
                            std::to_string(work[cursor].second));
        ++inflight_kills;
      }
      KillHard(&*server);
      ++kills;
    }
  }

  std::cout << "crashtest ok: " << kills << " SIGKILLs ("
            << inflight_kills << " with a request in flight), "
            << acked.size() << "/" << work.size()
            << " documents acked and recovered, graceful SIGTERM exit 0\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }

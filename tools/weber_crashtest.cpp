// weber_crashtest: crash-recovery harness for weber_serve's durable shards.
//
//   weber_crashtest --dataset=D --gazetteer=G --serve_bin=./weber_serve
//       --data_dir=/tmp/weber-crash --cycles=20 --seed=7
//
// Each cycle forks a child `weber_serve --nostdio --port=0 --data-dir=...
// --fsync=always`, fires assigns at it over TCP in a seeded random order,
// and SIGKILLs it at a seeded random point — sometimes with a final request
// in flight whose response is never read, so the kill lands while the write
// may or may not have reached the WAL. The next cycle's startup recovers
// from the newest snapshot plus WAL replay; before resuming the storm the
// harness compacts every shard, dumps the recovered partitions and asserts:
//
//   (a) zero acked-write loss — every (block, doc) whose `assign` was
//       answered "ok" before the kill is present in the recovered shard;
//   (b) partition correctness — each recovered, compacted shard equals a
//       single-threaded in-process reference that re-assigns exactly the
//       recovered documents. Batch re-resolution is arrival-order
//       invariant, so any crash/recovery interleaving must land on the
//       same partition.
//
// The final cycle finishes all remaining work, verifies once more, then
// stops the child with SIGTERM and asserts a graceful exit 0 (the
// shutdown-drain path). Exit status: 0 = every cycle passed.

#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/file_util.h"
#include "common/flags.h"
#include "common/random.h"
#include "common/string_util.h"
#include "corpus/dataset_io.h"
#include "graph/clustering.h"
#include "serve/resolution_service.h"
#include "serve/server.h"

using namespace weber;

namespace {

int Fail(const Status& status) {
  std::cerr << "error: " << status << "\n";
  return ExitCodeForStatus(status.code());
}

/// A running weber_serve child: pid, its stdout pipe, and the parsed port.
struct ServerProcess {
  pid_t pid = -1;
  int out_fd = -1;
  int port = -1;
};

void CloseProcess(ServerProcess* server) {
  if (server->out_fd >= 0) ::close(server->out_fd);
  server->out_fd = -1;
  server->pid = -1;
  server->port = -1;
}

/// SIGKILLs the child and reaps it. The whole point of the harness: the
/// process gets no chance to flush anything.
void KillHard(ServerProcess* server) {
  if (server->pid > 0) {
    ::kill(server->pid, SIGKILL);
    int status = 0;
    while (::waitpid(server->pid, &status, 0) < 0 && errno == EINTR) {
    }
  }
  CloseProcess(server);
}

/// SIGTERMs the child and returns its wait status (for the graceful-exit
/// assertion).
Result<int> StopSoft(ServerProcess* server) {
  if (server->pid <= 0) return Status::FailedPrecondition("no child");
  if (::kill(server->pid, SIGTERM) != 0) {
    return Status::IOError("kill(SIGTERM): ", std::strerror(errno));
  }
  int status = 0;
  while (::waitpid(server->pid, &status, 0) < 0 && errno == EINTR) {
  }
  CloseProcess(server);
  return status;
}

/// Reads the child's stdout until the "listening on 127.0.0.1:<port>"
/// announcement (or EOF / 30 s timeout, both of which mean startup failed).
Result<int> AwaitListeningPort(int fd) {
  std::string buffer;
  char chunk[512];
  const std::string needle = "listening on 127.0.0.1:";
  while (true) {
    size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      const size_t at = line.find(needle);
      if (at != std::string::npos) {
        return std::atoi(line.c_str() + at + needle.size());
      }
      continue;
    }
    pollfd pfd = {fd, POLLIN, 0};
    int rc = ::poll(&pfd, 1, 30000);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return Status::IOError("timed out waiting for the server");
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::IOError("server exited before announcing its port");
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
}

/// fork/execs `serve_bin` with the durable-serving flags, stdout piped back
/// so the ephemeral port announcement can be read.
Result<ServerProcess> SpawnServer(const std::string& serve_bin,
                                  const std::vector<std::string>& args) {
  int fds[2];
  if (::pipe(fds) != 0) {
    return Status::IOError("pipe(): ", std::strerror(errno));
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return Status::IOError("fork(): ", std::strerror(errno));
  }
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(serve_bin.c_str()));
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(serve_bin.c_str(), argv.data());
    std::fprintf(stderr, "execv(%s): %s\n", serve_bin.c_str(),
                 std::strerror(errno));
    _exit(127);
  }
  ::close(fds[1]);
  ServerProcess server;
  server.pid = pid;
  server.out_fd = fds[0];
  Result<int> port = AwaitListeningPort(fds[0]);
  if (!port.ok()) {
    KillHard(&server);
    return port.status();
  }
  server.port = port.ValueOrDie();
  return server;
}

/// Wipes the two-level data directory (shard dirs holding WAL + snapshots)
/// so every run starts from a cold store.
Status WipeDataDir(const std::string& dir) {
  if (!FileExists(dir)) return Status::OK();
  WEBER_ASSIGN_OR_RETURN(std::vector<std::string> entries,
                         ListDirectory(dir));
  for (const std::string& entry : entries) {
    const std::string sub = dir + "/" + entry;
    auto files = ListDirectory(sub);
    if (files.ok()) {
      for (const std::string& f : files.ValueOrDie()) {
        WEBER_RETURN_NOT_OK(RemoveFileIfExists(sub + "/" + f));
      }
      if (::rmdir(sub.c_str()) != 0) {
        return Status::IOError("rmdir(", sub, "): ", std::strerror(errno));
      }
    } else {
      WEBER_RETURN_NOT_OK(RemoveFileIfExists(sub));
    }
  }
  return Status::OK();
}

/// Parses a `dump` response ("ok <n> <doc>:<label> ...") into labels
/// (-1 = not yet in the shard).
Result<std::vector<int>> ParseDump(const std::string& response) {
  const std::vector<std::string> tokens = SplitWhitespace(response);
  if (tokens.size() < 2 || tokens[0] != "ok") {
    return Status::Corruption("bad dump response '", response, "'");
  }
  const int n = std::atoi(tokens[1].c_str());
  if (n < 0 || tokens.size() != static_cast<size_t>(n) + 2) {
    return Status::Corruption("dump token count mismatch");
  }
  std::vector<int> labels(static_cast<size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    const std::string& pair = tokens[static_cast<size_t>(i) + 2];
    const size_t colon = pair.find(':');
    if (colon == std::string::npos) {
      return Status::Corruption("bad dump pair '", pair, "'");
    }
    const int doc = std::atoi(pair.substr(0, colon).c_str());
    if (doc < 0 || doc >= n) {
      return Status::Corruption("dump doc out of range in '", pair, "'");
    }
    labels[static_cast<size_t>(doc)] = std::atoi(pair.c_str() + colon + 1);
  }
  return labels;
}

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("dataset", "", "path to a labeled WEBER dataset file");
  flags.AddString("gazetteer", "", "path to a WEBER gazetteer file");
  flags.AddString("serve_bin", "", "path to the weber_serve binary");
  flags.AddString("data_dir", "", "durable store handed to the child server");
  flags.AddInt("cycles", 20, "kill/recover cycles (the last one is graceful)");
  flags.AddInt("seed", 7, "randomizes assign order and kill points");
  flags.AddDouble("train_fraction", 0.10, "must match the server defaults");
  flags.AddInt("cal_seed", 0x5E21E, "calibration seed for child + reference");
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--help") {
      std::cout << flags.Usage(
          "weber_crashtest — SIGKILL/recover torture harness asserting "
          "zero acked-write loss for weber_serve --data-dir");
      return 0;
    }
  }
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);
  for (const char* required : {"dataset", "gazetteer", "serve_bin",
                               "data_dir"}) {
    if (flags.GetString(required).empty()) {
      return Fail(Status::InvalidArgument("--", required, " is required"));
    }
  }
  const std::string serve_bin = flags.GetString("serve_bin");
  const std::string data_dir = flags.GetString("data_dir");
  const int cycles = std::max(1, flags.GetInt("cycles"));
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));

  auto dataset = corpus::LoadDatasetFromFile(flags.GetString("dataset"));
  if (!dataset.ok()) return Fail(dataset.status());
  std::ifstream gz(flags.GetString("gazetteer"));
  if (!gz) {
    return Fail(Status::IOError("cannot read ", flags.GetString("gazetteer")));
  }
  auto gazetteer = corpus::LoadGazetteer(gz);
  if (!gazetteer.ok()) return Fail(gazetteer.status());

  if (auto st = WipeDataDir(data_dir); !st.ok()) return Fail(st);

  // The in-process reference. Assign() is idempotent, so after each crash
  // the reference simply absorbs whichever documents the recovered server
  // turns out to hold.
  serve::ServiceOptions ref_options;
  ref_options.train_fraction = flags.GetDouble("train_fraction");
  ref_options.calibration_seed =
      static_cast<uint64_t>(flags.GetInt("cal_seed"));
  auto reference =
      serve::ResolutionService::Create(*dataset, &*gazetteer, ref_options);
  if (!reference.ok()) return Fail(reference.status());

  // Work list: every (block, doc) once, in seeded random order.
  std::vector<std::pair<int, int>> work;
  for (size_t b = 0; b < dataset->blocks.size(); ++b) {
    for (size_t d = 0; d < dataset->blocks[b].documents.size(); ++d) {
      work.emplace_back(static_cast<int>(b), static_cast<int>(d));
    }
  }
  if (work.empty()) return Fail(Status::InvalidArgument("empty dataset"));
  for (size_t i = work.size(); i > 1; --i) {
    std::swap(work[i - 1], work[rng.UniformUint64(i)]);
  }

  const std::vector<std::string> server_args = {
      "--dataset=" + flags.GetString("dataset"),
      "--gazetteer=" + flags.GetString("gazetteer"),
      "--data-dir=" + data_dir,
      "--fsync=always",
      "--port=0",
      "--nostdio",
      "--max_delay_ms=0.5",
      "--train_fraction=" + FormatDouble(flags.GetDouble("train_fraction"), 6),
      "--seed=" + std::to_string(flags.GetInt("cal_seed")),
  };

  std::set<std::pair<int, int>> acked;  // answered "ok" at any point
  size_t cursor = 0;                    // next work item to attempt
  long long kills = 0;
  long long inflight_kills = 0;

  for (int cycle = 0; cycle < cycles; ++cycle) {
    const bool final_cycle = cycle == cycles - 1;
    auto server = SpawnServer(serve_bin, server_args);
    if (!server.ok()) return Fail(server.status());
    serve::LineConnection conn;
    if (auto st = conn.Connect("127.0.0.1", server->port); !st.ok()) {
      KillHard(&*server);
      return Fail(st);
    }

    // Verify recovery BEFORE resuming the storm: compact everything, then
    // check the dumped partitions against acked history and the reference.
    auto verify = [&]() -> Status {
      WEBER_ASSIGN_OR_RETURN(std::string compacted, conn.Call("compact"));
      if (compacted.rfind("ok", 0) != 0) {
        return Status::Internal("compact failed: ", compacted);
      }
      for (size_t b = 0; b < dataset->blocks.size(); ++b) {
        const corpus::Block& block = dataset->blocks[b];
        WEBER_ASSIGN_OR_RETURN(std::string response,
                               conn.Call("dump " + block.query));
        WEBER_ASSIGN_OR_RETURN(std::vector<int> served,
                               ParseDump(response));
        // (a) Zero acked-write loss.
        for (size_t d = 0; d < block.documents.size(); ++d) {
          const auto key = std::make_pair(static_cast<int>(b),
                                          static_cast<int>(d));
          if (acked.count(key) != 0 && served[d] < 0) {
            return Status::Corruption("acked write lost: block '",
                                      block.query, "' doc ", d, " after ",
                                      kills, " kills");
          }
        }
        // (b) The recovered partition equals the reference over exactly
        // the recovered documents.
        for (size_t d = 0; d < served.size(); ++d) {
          if (served[d] >= 0) {
            WEBER_RETURN_NOT_OK(
                (*reference)
                    ->Assign(block.query, static_cast<int>(d))
                    .status());
          }
        }
        WEBER_RETURN_NOT_OK((*reference)->CompactAll());
        WEBER_ASSIGN_OR_RETURN(std::vector<int> expected,
                               (*reference)->DumpPartition(block.query));
        for (size_t d = 0; d < served.size(); ++d) {
          // The reference may hold docs whose ack never reached us; the
          // comparison is over the documents the server recovered.
          if (served[d] < 0) expected[d] = -1;
        }
        if (graph::Clustering::FromLabels(served) !=
            graph::Clustering::FromLabels(expected)) {
          return Status::Corruption("recovered partition for block '",
                                    block.query,
                                    "' diverges from the reference");
        }
      }
      return Status::OK();
    };
    if (auto st = verify(); !st.ok()) {
      KillHard(&*server);
      return Fail(st);
    }

    // Resume the storm from the cursor. Non-final cycles stop after a
    // seeded number of acks and SIGKILL; half the time a final request is
    // left in flight (sent, response unread) when the kill lands.
    const size_t remaining = work.size() - cursor;
    const size_t quota =
        final_cycle ? remaining
                    : std::min(remaining,
                               1 + rng.UniformUint64(std::max<size_t>(
                                       1, remaining / 2)));
    size_t done = 0;
    while (done < quota && cursor < work.size()) {
      const auto [b, d] = work[cursor];
      const std::string request = "assign " + dataset->blocks[b].query +
                                  " " + std::to_string(d);
      auto response = conn.Call(request);
      if (!response.ok()) {
        KillHard(&*server);
        return Fail(response.status());
      }
      if (response->rfind("ok", 0) != 0) {
        KillHard(&*server);
        return Fail(Status::Internal("assign rejected: ", *response));
      }
      acked.insert(work[cursor]);
      ++cursor;
      ++done;
    }

    if (final_cycle) {
      if (auto st = verify(); !st.ok()) {
        KillHard(&*server);
        return Fail(st);
      }
      auto status = StopSoft(&*server);
      if (!status.ok()) return Fail(status.status());
      if (!WIFEXITED(status.ValueOrDie()) ||
          WEXITSTATUS(status.ValueOrDie()) != 0) {
        return Fail(Status::Internal(
            "SIGTERM did not produce a clean exit (wait status ",
            status.ValueOrDie(), ")"));
      }
    } else {
      if (cursor < work.size() && rng.Bernoulli(0.5)) {
        // In-flight write: sent but never acknowledged. It may or may not
        // survive the kill; either way it stays in the work list and is
        // retried (assign is idempotent).
        (void)conn.SendLine("assign " +
                            dataset->blocks[work[cursor].first].query + " " +
                            std::to_string(work[cursor].second));
        ++inflight_kills;
      }
      KillHard(&*server);
      ++kills;
    }
  }

  std::cout << "crashtest ok: " << kills << " SIGKILLs ("
            << inflight_kills << " with a request in flight), "
            << acked.size() << "/" << work.size()
            << " documents acked and recovered, graceful SIGTERM exit 0\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }

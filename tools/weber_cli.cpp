// weber: command-line driver for the WEBER entity resolution library.
//
//   weber generate  --preset=www05 --out=/tmp/corpus        # build a corpus
//   weber stats     --dataset=/tmp/corpus/dataset.txt       # describe it
//   weber resolve   --dataset=... --gazetteer=... --out=... # run Algorithm 1
//   weber evaluate  --dataset=... --resolution=...          # score a run
//
// `resolve` also prints metrics directly when the dataset carries ground
// truth, so the resolve/evaluate split is optional.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <system_error>

#include "common/fault_injection.h"
#include "common/flags.h"
#include "core/weber.h"
#include "corpus/resolution_io.h"
#include "corpus/stats.h"
#include "match/race.h"

using namespace weber;

namespace {

/// Failures exit with a per-StatusCode code (2=InvalidArgument, 3=IOError,
/// 4=Corruption, ...; see ExitCodeForStatus) so scripts can branch on the
/// failure class.
int Fail(const Status& status) {
  std::cerr << "error: " << status << "\n";
  return ExitCodeForStatus(status.code());
}

/// Shared dataset-loading flags (lenient mode + transient-error retries).
void AddLoadFlags(FlagParser* flags) {
  flags->AddBool("lenient", false,
                 "skip corrupt dataset blocks instead of failing the file");
  flags->AddInt("load_retries", 0,
                "retries for transient dataset I/O errors");
}

Result<corpus::Dataset> LoadDatasetWithFlags(const FlagParser& flags) {
  corpus::LoadOptions options;
  options.lenient = flags.GetBool("lenient");
  options.max_retries = flags.GetInt("load_retries");
  corpus::LoadReport report;
  auto dataset = corpus::LoadDatasetFromFile(flags.GetString("dataset"),
                                             options, &report);
  if (report.retries > 0) {
    std::cerr << "warning: dataset load needed " << report.retries
              << " retr" << (report.retries == 1 ? "y" : "ies") << "\n";
  }
  for (const corpus::BlockLoadError& e : report.block_errors) {
    std::cerr << "warning: skipped block '" << e.query << "' (line "
              << e.line_no << "): " << e.status << "\n";
  }
  return dataset;
}

/// Arms fault points from --faults / WEBER_FAULTS (chaos testing).
Status ArmFaultsFromFlags(const FlagParser& flags) {
  faults::FaultInjector& injector = faults::FaultInjector::Instance();
  if (flags.WasSet("fault_seed")) {
    injector.Seed(static_cast<uint64_t>(flags.GetInt("fault_seed")));
  }
  std::string spec = flags.GetString("faults");
  if (spec.empty()) {
    if (const char* env = std::getenv("WEBER_FAULTS")) spec = env;
  }
  if (spec.empty()) return Status::OK();
  WEBER_RETURN_NOT_OK(injector.ArmFromSpec(spec));
  std::cerr << "fault injection armed: " << spec << "\n";
  return Status::OK();
}

void AddFaultFlags(FlagParser* flags) {
  flags->AddString("faults", "",
                   "fault spec point=kind[:prob[:param[:max]]];... "
                   "(or WEBER_FAULTS env)");
  flags->AddInt("fault_seed", 0, "seed for fault trigger streams");
}

Result<corpus::GeneratorConfig> PresetByName(const std::string& preset) {
  if (preset == "www05") return corpus::Www05Config();
  if (preset == "weps") return corpus::WepsConfig();
  if (preset == "tiny") return corpus::TinyConfig();
  return Status::InvalidArgument("unknown preset '", preset,
                                 "' (use www05 | weps | tiny)");
}

int CmdGenerate(int argc, const char* const* argv) {
  FlagParser flags;
  flags.AddString("preset", "www05", "corpus preset: www05 | weps | tiny");
  flags.AddInt("seed", 0, "generator seed (preset default when unset)");
  flags.AddString("out", ".", "output directory");
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);

  auto config = PresetByName(flags.GetString("preset"));
  if (!config.ok()) return Fail(config.status());
  if (flags.WasSet("seed")) {
    config->seed = static_cast<uint64_t>(flags.GetInt("seed"));
  }

  auto data = corpus::SyntheticWebGenerator(*config).Generate();
  if (!data.ok()) return Fail(data.status());

  const std::string dir = flags.GetString("out");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Fail(Status::IOError("cannot create directory ", dir, ": ",
                                ec.message()));
  }
  const std::string dataset_path = dir + "/dataset.txt";
  const std::string gazetteer_path = dir + "/gazetteer.txt";
  if (auto st = corpus::SaveDatasetToFile(data->dataset, dataset_path);
      !st.ok()) {
    return Fail(st);
  }
  std::ofstream gz(gazetteer_path);
  if (!gz) return Fail(Status::IOError("cannot write ", gazetteer_path));
  if (auto st = corpus::SaveGazetteer(data->gazetteer, gz); !st.ok()) {
    return Fail(st);
  }
  std::cout << "wrote " << data->dataset.TotalDocuments() << " documents to "
            << dataset_path << "\nwrote " << data->gazetteer.size()
            << " gazetteer entries to " << gazetteer_path << "\n";
  return 0;
}

int CmdStats(int argc, const char* const* argv) {
  FlagParser flags;
  flags.AddString("dataset", "", "path to a WEBER dataset file");
  AddLoadFlags(&flags);
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);
  auto dataset = LoadDatasetWithFlags(flags);
  if (!dataset.ok()) return Fail(dataset.status());
  corpus::PrintDatasetStats(corpus::ComputeDatasetStats(*dataset), std::cout);
  return 0;
}

Result<core::ResolverOptions> OptionsFromFlags(const FlagParser& flags) {
  core::ResolverOptions options;
  const std::string functions = flags.GetString("functions");
  if (!functions.empty()) {
    options.function_names.clear();
    for (auto& name : Split(functions, ',')) {
      options.function_names.push_back(std::string(TrimWhitespace(name)));
    }
  }
  options.use_region_criteria = flags.GetBool("regions");
  options.compiled_path = !flags.GetBool("no-compiled-path");
  const std::string combo = flags.GetString("combination");
  if (combo == "best") {
    options.combination = core::CombinationStrategy::kBestGraph;
  } else if (combo == "weighted") {
    options.combination = core::CombinationStrategy::kWeightedAverage;
  } else if (combo == "majority") {
    options.combination = core::CombinationStrategy::kMajorityVote;
  } else {
    return Status::InvalidArgument("unknown --combination '", combo,
                                   "' (best | weighted | majority)");
  }
  const std::string clustering = flags.GetString("clustering");
  if (clustering == "closure") {
    options.clustering = core::ClusteringAlgorithm::kTransitiveClosure;
  } else if (clustering == "correlation") {
    options.clustering = core::ClusteringAlgorithm::kCorrelationClustering;
  } else if (clustering == "agglomerative") {
    options.clustering = core::ClusteringAlgorithm::kAgglomerative;
  } else {
    return Status::InvalidArgument(
        "unknown --clustering '", clustering,
        "' (closure | correlation | agglomerative)");
  }
  options.train_fraction = flags.GetDouble("train_fraction");
  options.min_pair_informativeness = flags.GetDouble("min_informativeness");
  options.deadline_ms = flags.GetDouble("deadline_ms");
  options.max_pair_budget = flags.GetInt("max_pairs");
  return options;
}

int CmdResolve(int argc, const char* const* argv) {
  FlagParser flags;
  flags.AddString("dataset", "", "path to a WEBER dataset file");
  flags.AddString("gazetteer", "", "path to a WEBER gazetteer file");
  flags.AddString("out", "", "write resolutions here (optional)");
  flags.AddString("functions", "", "comma list, e.g. F3,F7,F8 (default all)");
  flags.AddBool("regions", true, "use region-accuracy decision criteria");
  flags.AddBool("no-compiled-path", false,
                "score through the interpreted per-pair walk instead of the "
                "compiled batch kernels (bit-identical; debugging escape "
                "hatch)");
  flags.AddString("combination", "best", "best | weighted | majority");
  flags.AddString("clustering", "closure",
                  "closure | correlation | agglomerative");
  flags.AddDouble("train_fraction", 0.10, "labeled training pair fraction");
  flags.AddDouble("min_informativeness", 0.0,
                  "entropy gate threshold (0 disables)");
  flags.AddDouble("deadline_ms", 0.0,
                  "per-block resolution deadline in ms (0 disables)");
  flags.AddInt("max_pairs", 0,
               "per-block pairwise-similarity budget (0 disables)");
  flags.AddInt("seed", 1, "random seed");
  AddLoadFlags(&flags);
  AddFaultFlags(&flags);
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);
  if (auto st = ArmFaultsFromFlags(flags); !st.ok()) return Fail(st);

  auto dataset = LoadDatasetWithFlags(flags);
  if (!dataset.ok()) return Fail(dataset.status());
  std::ifstream gz(flags.GetString("gazetteer"));
  if (!gz) {
    return Fail(Status::IOError("cannot read ", flags.GetString("gazetteer")));
  }
  auto gazetteer = corpus::LoadGazetteer(gz);
  if (!gazetteer.ok()) return Fail(gazetteer.status());

  auto options = OptionsFromFlags(flags);
  if (!options.ok()) return Fail(options.status());
  auto resolver = core::EntityResolver::Create(&*gazetteer, *options);
  if (!resolver.ok()) return Fail(resolver.status());

  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  std::vector<corpus::BlockResolutionRecord> records;
  std::vector<eval::MetricReport> reports;
  core::RunHealth health;
  bool have_truth = true;
  for (const corpus::Block& block : dataset->blocks) {
    auto resolution = resolver->ResolveBlock(block, &rng);
    if (!resolution.ok()) return Fail(resolution.status());
    health.Merge(resolution->health);
    corpus::BlockResolutionRecord record;
    record.query = block.query;
    for (const corpus::Document& d : block.documents) {
      record.document_ids.push_back(d.id);
    }
    record.clustering = resolution->clustering;
    std::cout << block.query << ": " << resolution->clustering.num_clusters()
              << " clusters (chose " << resolution->chosen_source << ")";
    if (resolution->health.degraded_blocks > 0) std::cout << " [degraded]";
    for (int label : block.entity_labels) {
      if (label < 0) have_truth = false;
    }
    if (have_truth) {
      auto report = eval::Evaluate(block.GroundTruth(), resolution->clustering);
      if (!report.ok()) return Fail(report.status());
      std::cout << "  Fp=" << FormatDouble(report->fp_measure, 4);
      reports.push_back(*report);
    }
    std::cout << "\n";
    records.push_back(std::move(record));
  }
  if (have_truth && !reports.empty()) {
    auto mean = eval::MeanReport(reports);
    if (mean.ok()) {
      std::cout << "MEAN  Fp=" << FormatDouble(mean->fp_measure, 4)
                << "  F=" << FormatDouble(mean->f_measure, 4)
                << "  Rand=" << FormatDouble(mean->rand_index, 4) << "\n";
    }
  }
  if (health.AnyDegradation()) {
    std::cerr << "health: " << health.TotalViolations()
              << " value violations, " << health.quarantined_functions
              << " quarantined functions, " << health.skipped_criteria
              << " skipped criteria, " << health.degraded_blocks
              << " degraded blocks\n";
  }
  const std::string out = flags.GetString("out");
  if (!out.empty()) {
    if (auto st = corpus::SaveResolutionsToFile(records, out); !st.ok()) {
      return Fail(st);
    }
    std::cout << "wrote resolutions to " << out << "\n";
  }
  return 0;
}

int CmdEvaluate(int argc, const char* const* argv) {
  FlagParser flags;
  flags.AddString("dataset", "", "path to the labeled dataset");
  flags.AddString("resolution", "", "path to a resolution file");
  AddLoadFlags(&flags);
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);

  auto dataset = LoadDatasetWithFlags(flags);
  if (!dataset.ok()) return Fail(dataset.status());
  auto resolutions =
      corpus::LoadResolutionsFromFile(flags.GetString("resolution"));
  if (!resolutions.ok()) return Fail(resolutions.status());

  TablePrinter table;
  table.SetHeader({"name", "Fp", "F", "Rand", "B-cubed F"});
  std::vector<eval::MetricReport> reports;
  for (const corpus::Block& block : dataset->blocks) {
    const corpus::BlockResolutionRecord* record = nullptr;
    for (const auto& r : *resolutions) {
      if (r.query == block.query) record = &r;
    }
    if (record == nullptr) {
      return Fail(Status::NotFound("no resolution for block '", block.query,
                                   "'"));
    }
    auto aligned = corpus::AlignResolution(block, *record);
    if (!aligned.ok()) return Fail(aligned.status());
    auto report = eval::Evaluate(block.GroundTruth(), *aligned);
    if (!report.ok()) return Fail(report.status());
    table.AddRow({block.query, FormatDouble(report->fp_measure, 4),
                  FormatDouble(report->f_measure, 4),
                  FormatDouble(report->rand_index, 4),
                  FormatDouble(report->bcubed_f, 4)});
    reports.push_back(*report);
  }
  auto mean = eval::MeanReport(reports);
  if (!mean.ok()) return Fail(mean.status());
  table.AddSeparator();
  table.AddRow({"MEAN", FormatDouble(mean->fp_measure, 4),
                FormatDouble(mean->f_measure, 4),
                FormatDouble(mean->rand_index, 4),
                FormatDouble(mean->bcubed_f, 4)});
  table.Print(std::cout);
  return 0;
}

int CmdExperiment(int argc, const char* const* argv) {
  FlagParser flags;
  flags.AddString("dataset", "", "path to a labeled WEBER dataset file");
  flags.AddString("gazetteer", "", "path to a WEBER gazetteer file");
  flags.AddInt("runs", 5, "randomized runs to average");
  flags.AddInt("threads", 4, "worker threads across configurations");
  flags.AddDouble("train_fraction", 0.10, "labeled training pair fraction");
  flags.AddString("json", "", "also write results as JSON to this path");
  flags.AddInt("seed", 0x717, "experiment seed");
  AddLoadFlags(&flags);
  AddFaultFlags(&flags);
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);
  if (auto st = ArmFaultsFromFlags(flags); !st.ok()) return Fail(st);

  auto dataset = LoadDatasetWithFlags(flags);
  if (!dataset.ok()) return Fail(dataset.status());
  std::ifstream gz(flags.GetString("gazetteer"));
  if (!gz) {
    return Fail(Status::IOError("cannot read ", flags.GetString("gazetteer")));
  }
  auto gazetteer = corpus::LoadGazetteer(gz);
  if (!gazetteer.ok()) return Fail(gazetteer.status());

  core::ExperimentRunner runner(&*dataset, &*gazetteer, flags.GetInt("runs"),
                                static_cast<uint64_t>(flags.GetInt("seed")));
  if (auto st = runner.Prepare({}, flags.GetDouble("train_fraction"));
      !st.ok()) {
    return Fail(st);
  }

  // The paper's Table II columns.
  std::vector<core::ExperimentConfig> configs;
  auto add = [&](const std::string& label,
                 const std::vector<std::string>& fns, bool regions,
                 core::CombinationStrategy combo) {
    core::ExperimentConfig config;
    config.label = label;
    config.options.function_names = fns;
    config.options.use_region_criteria = regions;
    config.options.combination = combo;
    configs.push_back(std::move(config));
  };
  using CS = core::CombinationStrategy;
  add("I4", core::kSubsetI4, false, CS::kBestGraph);
  add("I7", core::kSubsetI7, false, CS::kBestGraph);
  add("I10", core::kSubsetI10, false, CS::kBestGraph);
  add("C4", core::kSubsetI4, true, CS::kBestGraph);
  add("C7", core::kSubsetI7, true, CS::kBestGraph);
  add("C10", core::kSubsetI10, true, CS::kBestGraph);
  add("W", core::kSubsetI10, true, CS::kWeightedAverage);

  auto results = runner.RunAllParallel(configs, flags.GetInt("threads"));
  if (!results.ok()) return Fail(results.status());

  TablePrinter table;
  table.SetHeader({"config", "Fp", "F", "Rand", "B-cubed F"});
  for (const auto& r : *results) {
    table.AddRow({r.label, FormatDouble(r.overall.fp_measure, 4),
                  FormatDouble(r.overall.f_measure, 4),
                  FormatDouble(r.overall.rand_index, 4),
                  FormatDouble(r.overall.bcubed_f, 4)});
  }
  table.Print(std::cout);
  for (const auto& r : *results) {
    if (r.health.AnyDegradation()) {
      std::cerr << "health[" << r.label << "]: "
                << r.health.TotalViolations() << " violations, "
                << r.health.quarantined_functions << " quarantined, "
                << r.health.skipped_criteria << " skipped criteria, "
                << r.health.degraded_blocks << " degraded blocks\n";
    }
  }

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) return Fail(Status::IOError("cannot write ", json_path));
    if (auto st = core::WriteExperimentJson(*dataset, flags.GetInt("runs"),
                                            *results, out);
        !st.ok()) {
      return Fail(st);
    }
    std::cout << "wrote JSON results to " << json_path << "\n";
  }
  return 0;
}

/// Races the clean-clean matchers (threshold / greedy / greedy+sbm /
/// optimal) over a generated two-collection corpus and prints a
/// per-matcher P/R/F1 table. The corpus, its ground-truth mapping, and the
/// fitted decision threshold are all derived from --preset and --seed, so
/// a given flag set reproduces the same table on every run.
int CmdMatchRace(int argc, const char* const* argv) {
  FlagParser flags;
  flags.AddString("preset", "www05", "corpus preset: www05 | weps | tiny");
  flags.AddInt("seed", 0, "generator seed (preset default when unset)");
  flags.AddDouble("overlap", 0.6,
                  "fraction of each block's entities shared by both "
                  "collections (0,1]");
  flags.AddInt("negatives", 3,
               "sampled negative pairs per truth pair when fitting the "
               "decision threshold");
  flags.AddInt("optimal_cutoff", 512,
               "largest matrix side the optimal matcher solves exactly "
               "before falling back to greedy");
  flags.AddString("json", "", "also write results as JSON to this path");
  if (auto st = flags.Parse(argc, argv); !st.ok()) return Fail(st);

  auto config = PresetByName(flags.GetString("preset"));
  if (!config.ok()) return Fail(config.status());
  if (flags.WasSet("seed")) {
    config->seed = static_cast<uint64_t>(flags.GetInt("seed"));
  }

  match::RaceConfig race;
  race.corpus = *config;
  race.overlap_fraction = flags.GetDouble("overlap");
  race.negatives_per_positive = flags.GetInt("negatives");
  race.optimal_size_cutoff = flags.GetInt("optimal_cutoff");

  auto result = match::RaceMatchers(race);
  if (!result.ok()) return Fail(result.status());

  std::cout << "clean-clean race: " << result->blocks << " blocks, "
            << result->left_documents << " left + " << result->right_documents
            << " right documents, " << result->truth_pairs
            << " truth pairs, threshold "
            << FormatDouble(result->threshold, 4) << " (train acc "
            << FormatDouble(result->train_accuracy, 4) << ")\n";
  TablePrinter table;
  table.SetHeader({"matcher", "precision", "recall", "F1", "match ms"});
  for (const match::RaceEntry& entry : result->entries) {
    table.AddRow({entry.matcher, FormatDouble(entry.report.precision, 4),
                  FormatDouble(entry.report.recall, 4),
                  FormatDouble(entry.report.f1, 4),
                  FormatDouble(entry.match_ms, 2)});
  }
  table.Print(std::cout);

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) return Fail(Status::IOError("cannot write ", json_path));
    match::WriteRaceJson(*result, out);
    std::cout << "wrote JSON results to " << json_path << "\n";
  }
  return 0;
}

void PrintUsage() {
  std::cout <<
      "weber — entity resolution for Web document collections\n\n"
      "subcommands:\n"
      "  generate    build a synthetic labeled corpus (www05 | weps | tiny)\n"
      "  stats       describe a dataset file\n"
      "  resolve     run the resolution pipeline over a dataset\n"
      "  evaluate    score a saved resolution against ground truth\n"
      "  experiment  run the paper's Table-II comparison (+ optional JSON)\n"
      "  matchrace   race clean-clean matchers on a generated two-collection "
      "corpus\n\n"
      "run `weber <subcommand> --help` equivalent by passing no flags.\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  std::string command = argv[1];
  // Shift argv so subcommand flags parse from index 1.
  int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  if (command == "generate") return CmdGenerate(sub_argc, sub_argv);
  if (command == "stats") return CmdStats(sub_argc, sub_argv);
  if (command == "resolve") return CmdResolve(sub_argc, sub_argv);
  if (command == "evaluate") return CmdEvaluate(sub_argc, sub_argv);
  if (command == "experiment") return CmdExperiment(sub_argc, sub_argv);
  if (command == "matchrace") return CmdMatchRace(sub_argc, sub_argv);
  PrintUsage();
  return 2;
}
